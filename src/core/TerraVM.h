//===- TerraVM.h - Tier-0 register bytecode interpreter ---------*- C++ -*-===//
//
// Executes bytecode::Function programs (TerraBytecode.h) with a
// computed-goto dispatch loop. This is the tier-0 engine of the tiered
// execution pipeline: it runs immediately after codegen with no C compiler
// on the critical path, while profile counters (call counts here at the
// dispatcher, back edges accumulated in ExecEnv) drive background promotion
// to native code.
//
// Semantics are the tree-walking evaluator's, bit for bit: same canonical
// widening, same trap messages ("terra interpreter: ..." diagnostics), same
// extern registry (TerraExternDispatch), same depth limit. The differential
// tests in test_backends/test_fuzz pin this equivalence.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAVM_H
#define TERRACPP_CORE_TERRAVM_H

#include "core/TerraBytecode.h"

#include <cstdint>

namespace terracpp {

class TerraContext;
class TerraCompiler;

namespace vm {

/// Per-invocation execution context. One ExecEnv spans an outermost entry
/// and all bytecode-to-bytecode recursion under it; calls that leave the VM
/// (externs, host closures, Entry thunks) get fresh state on re-entry, as
/// the tree-walker's nested TEval instances do. Call depth is deliberately
/// NOT part of this state: it lives in a per-thread counter (callDepth())
/// so recursion that crosses dispatcher-thunk boundaries — where each hop
/// constructs a fresh ExecEnv — still runs into the depth limit instead of
/// growing the native stack without bound.
struct ExecEnv {
  ExecEnv(TerraContext &Ctx, TerraCompiler &Comp) : Ctx(Ctx), Comp(Comp) {}

  TerraContext &Ctx;
  TerraCompiler &Comp;
  /// Loop latch executions observed during this invocation; the caller
  /// flushes them into the function's TierState / telemetry.
  uint64_t BackEdges = 0;
  /// Set once a trap or callee failure aborted execution (the diagnostic,
  /// if any, has already been reported).
  bool Failed = false;
};

/// Depth budget shared by the interpreter tiers (VM and baseline JIT).
/// Ordinary activations cost one unit; baseline activations whose emitted
/// frame lives on the native stack are charged proportionally to its size
/// (BaselineJIT::depthUnits) so a full budget always fits a default-sized
/// thread stack.
constexpr unsigned MaxCallDepth = 400;

/// The current thread's guest call depth, in units. Shared across ExecEnv
/// instances (see above); manipulate it through CallDepthScope only.
unsigned &callDepth();

/// RAII charge of one guest activation against the thread's depth budget.
/// Construct, then test exceeded() before doing any real work: past the
/// limit the caller must report failStackOverflow() and unwind.
class CallDepthScope {
public:
  explicit CallDepthScope(unsigned Units = 1) : Units(Units) {
    callDepth() += Units;
  }
  ~CallDepthScope() { callDepth() -= Units; }
  CallDepthScope(const CallDepthScope &) = delete;
  CallDepthScope &operator=(const CallDepthScope &) = delete;
  bool exceeded() const { return callDepth() > MaxCallDepth; }

private:
  unsigned Units;
};

/// Reports the tier-invariant "terra call stack overflow" diagnostic, sets
/// Env.Failed, and returns false.
bool failStackOverflow(ExecEnv &Env);

/// Runs \p F over FFI-convention arguments: Args[i] points at the i-th
/// value with C layout, Ret at the result buffer (null for void). Returns
/// false when execution aborted (Env.Failed set; at most one "terra
/// interpreter: ..." diagnostic reported).
bool run(const bytecode::Function &F, void **Args, void *Ret, ExecEnv &Env);

// Out-of-line services for the baseline JIT (TerraBaselineJIT.cpp). The
// emitted machine code calls these for everything that is not straight-line
// arithmetic, so call dispatch, trap messages, and function-literal
// semantics stay byte-identical across the VM and baseline tiers.

/// Executes call site \p Idx of \p F over the register file / frame of a
/// running activation. False when the callee failed (Env.Failed set).
bool execCallSite(const bytecode::Function &F, uint64_t Idx,
                  bytecode::Slot *R, uint8_t *Frame, ExecEnv &Env);

/// Reports trap \p Idx of \p F (diagnostic with its source location).
void execTrap(const bytecode::Function &F, uint64_t Idx, ExecEnv &Env);

/// Materializes the value of function \p Fn into \p Dst (machine address
/// under tiered execution, the TerraFunction otherwise). False on failure.
bool execFnLit(TerraFunction *Fn, bytecode::Slot &Dst, ExecEnv &Env);

/// Canonicalizes a staged call result into a register slot (VM loadRet).
void loadCallResult(bytecode::Slot &Dst, bytecode::RetKind K,
                    const void *Src);

} // namespace vm
} // namespace terracpp

#endif // TERRACPP_CORE_TERRAVM_H
