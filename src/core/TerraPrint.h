//===- TerraPrint.h - Pretty-printing for Terra trees -----------*- C++ -*-===//
//
// Renders specialized (and typed) Terra ASTs back to readable Terra-like
// source — the equivalent of the original implementation's printpretty.
// Used for debugging staged generators (inspecting what a quote actually
// expanded to) and by tests that assert on the structure of specialization
// output.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAPRINT_H
#define TERRACPP_CORE_TERRAPRINT_H

#include "core/TerraAST.h"

#include <string>

namespace terracpp {

/// Renders one expression (no trailing newline).
std::string printExpr(const TerraExpr *E);

/// Renders a statement (possibly multi-line, trailing newline included).
std::string printStmt(const TerraStmt *S, unsigned Indent = 0);

/// Renders a whole function definition.
std::string printFunction(const TerraFunction *F);

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAPRINT_H
