//===- TerraTypecheck.h - Lazy Terra typechecking ---------------*- C++ -*-===//
//
// Typechecking is lazy (paper §4.1): it runs the first time a function is
// called or referenced by a function being called, and the whole connected
// component of referenced functions is checked together (paper Fig. 4).
// Results are cached and monotonic — a function that typechecked once can
// never stop typechecking, because struct layouts freeze on first use and
// functions cannot be redefined.
//
// The checker annotates the specialized AST in place: every TerraExpr gets
// its Ty and IsLValue filled in, implicit conversions become explicit
// CastExpr nodes, and method calls are desugared into plain applications of
// the function stored in T.methods (paper §4.1). Metamethod hooks
// (__finalizelayout, __cast) call back into the host interpreter.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRATYPECHECK_H
#define TERRACPP_CORE_TERRATYPECHECK_H

#include "core/TerraAST.h"

namespace terracpp {

class StructType;

namespace lua {
class Interp;
}

class Typechecker {
public:
  Typechecker(TerraContext &Ctx, lua::Interp &I);

  /// Typechecks \p F and every function in its connected component.
  /// Idempotent; false on failure (sticky: the function enters SK_Error).
  bool check(TerraFunction *F);

  /// Finalizes a struct's layout (running __finalizelayout first).
  /// Idempotent; false on failure.
  bool completeStruct(StructType *ST, SourceLoc Loc);

  /// The conversion test used for arguments/assignments; exposed for the
  /// FFI. Returns true if \p From can convert implicitly to \p To.
  static bool isImplicitlyConvertible(Type *From, Type *To);

private:
  class Impl;
  TerraContext &Ctx;
  lua::Interp &I;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRATYPECHECK_H
