#include "core/LuaStdlib.h"

#include "core/LuaInterp.h"
#include "core/TerraCompiler.h"
#include "core/TerraType.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace terracpp;
using namespace terracpp::lua;

namespace {

void defineGlobal(Interp &I, const char *Name, Value V) {
  I.globalEnv()->define(I.terraCtx().intern(Name), std::move(V));
}

Value builtin(const char *Name, BuiltinImpl Impl) {
  return Value::builtin(Name, std::move(Impl));
}

bool argError(Interp &I, SourceLoc Loc, const char *Fn, const char *What) {
  return I.fail(Loc, std::string("bad argument to '") + Fn + "': " + What);
}

//===----------------------------------------------------------------------===//
// Core library
//===----------------------------------------------------------------------===//

void installCore(Interp &I) {
  defineGlobal(I, "print",
               builtin("print", [](Interp &In, std::vector<Value> &Args,
                                   std::vector<Value> &, SourceLoc) {
                 std::string Line;
                 for (size_t K = 0; K != Args.size(); ++K) {
                   if (K)
                     Line += "\t";
                   Line += toDisplayString(Args[K]);
                 }
                 printf("%s\n", Line.c_str());
                 return true;
               }));
  defineGlobal(I, "type",
               builtin("type", [](Interp &In, std::vector<Value> &Args,
                                  std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty())
                   return argError(In, L, "type", "expected a value");
                 Res.push_back(Value::string(Args[0].typeName()));
                 return true;
               }));
  defineGlobal(I, "tostring",
               builtin("tostring", [](Interp &In, std::vector<Value> &Args,
                                      std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty())
                   return argError(In, L, "tostring", "expected a value");
                 if (Args[0].isTable()) {
                   if (std::shared_ptr<Table> Meta = Args[0].asTable()->meta()) {
                     Value H = Meta->getStr("__tostring");
                     if (!H.isNil())
                       return In.call(H, {Args[0]}, Res, L);
                   }
                 }
                 Res.push_back(Value::string(toDisplayString(Args[0])));
                 return true;
               }));
  defineGlobal(I, "tonumber",
               builtin("tonumber", [](Interp &, std::vector<Value> &Args,
                                      std::vector<Value> &Res, SourceLoc) {
                 if (!Args.empty() && Args[0].isNumber()) {
                   Res.push_back(Args[0]);
                   return true;
                 }
                 if (!Args.empty() && Args[0].isString()) {
                   char *End = nullptr;
                   double V = strtod(Args[0].asString().c_str(), &End);
                   if (End && *End == '\0') {
                     Res.push_back(Value::number(V));
                     return true;
                   }
                 }
                 Res.push_back(Value::nil());
                 return true;
               }));
  defineGlobal(I, "error",
               builtin("error", [](Interp &In, std::vector<Value> &Args,
                                   std::vector<Value> &, SourceLoc L) {
                 std::string Msg = Args.empty() ? "error"
                                                : toDisplayString(Args[0]);
                 In.fail(L, Msg);
                 return false;
               }));
  defineGlobal(I, "assert",
               builtin("assert", [](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty() || !Args[0].isTruthy()) {
                   std::string Msg = Args.size() > 1
                                         ? toDisplayString(Args[1])
                                         : "assertion failed!";
                   In.fail(L, Msg);
                   return false;
                 }
                 Res = Args;
                 return true;
               }));
  defineGlobal(I, "pairs",
               builtin("pairs", [](Interp &In, std::vector<Value> &Args,
                                   std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty() || !Args[0].isTable())
                   return argError(In, L, "pairs", "expected a table");
                 auto Snapshot = std::make_shared<
                     std::vector<std::pair<Value, Value>>>(
                     Args[0].asTable()->entries());
                 auto Pos = std::make_shared<size_t>(0);
                 Res.push_back(builtin(
                     "pairs.iter",
                     [Snapshot, Pos](Interp &, std::vector<Value> &,
                                     std::vector<Value> &R2, SourceLoc) {
                       if (*Pos >= Snapshot->size()) {
                         R2.push_back(Value::nil());
                         return true;
                       }
                       R2.push_back((*Snapshot)[*Pos].first);
                       R2.push_back((*Snapshot)[*Pos].second);
                       ++*Pos;
                       return true;
                     }));
                 Res.push_back(Args[0]);
                 Res.push_back(Value::nil());
                 return true;
               }));
  defineGlobal(I, "ipairs",
               builtin("ipairs", [](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty() || !Args[0].isTable())
                   return argError(In, L, "ipairs", "expected a table");
                 auto Tbl = Args[0].tablePtr();
                 auto Pos = std::make_shared<int64_t>(0);
                 Res.push_back(builtin(
                     "ipairs.iter",
                     [Tbl, Pos](Interp &, std::vector<Value> &,
                                std::vector<Value> &R2, SourceLoc) {
                       ++*Pos;
                       Value V = Tbl->getInt(*Pos);
                       if (V.isNil()) {
                         R2.push_back(Value::nil());
                         return true;
                       }
                       R2.push_back(Value::number(
                           static_cast<double>(*Pos)));
                       R2.push_back(V);
                       return true;
                     }));
                 Res.push_back(Args[0]);
                 Res.push_back(Value::nil());
                 return true;
               }));
  defineGlobal(I, "unpack",
               builtin("unpack", [](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
                 if (Args.empty() || !Args[0].isTable())
                   return argError(In, L, "unpack", "expected a table");
                 Table *T = Args[0].asTable();
                 int64_t N = T->arrayLength();
                 for (int64_t K = 1; K <= N; ++K)
                   Res.push_back(T->getInt(K));
                 return true;
               }));
  defineGlobal(I, "setmetatable",
               builtin("setmetatable", [](Interp &In, std::vector<Value> &Args,
                                          std::vector<Value> &Res,
                                          SourceLoc L) {
                 if (Args.size() < 2 || !Args[0].isTable())
                   return argError(In, L, "setmetatable", "expected a table");
                 if (Args[1].isNil())
                   Args[0].asTable()->setMeta(nullptr);
                 else if (Args[1].isTable())
                   Args[0].asTable()->setMeta(Args[1].tablePtr());
                 else
                   return argError(In, L, "setmetatable",
                                   "metatable must be a table or nil");
                 Res.push_back(Args[0]);
                 return true;
               }));
  defineGlobal(I, "getmetatable",
               builtin("getmetatable", [](Interp &In, std::vector<Value> &Args,
                                          std::vector<Value> &Res,
                                          SourceLoc L) {
                 if (Args.empty() || !Args[0].isTable())
                   return argError(In, L, "getmetatable", "expected a table");
                 std::shared_ptr<Table> M = Args[0].asTable()->meta();
                 Res.push_back(M ? Value::table(M) : Value::nil());
                 return true;
               }));
}

//===----------------------------------------------------------------------===//
// math / string / table / os / io
//===----------------------------------------------------------------------===//

Value numFn1(const char *Name, double (*Fn)(double)) {
  return builtin(Name, [Name, Fn](Interp &In, std::vector<Value> &Args,
                                  std::vector<Value> &Res, SourceLoc L) {
    if (Args.empty() || !Args[0].isNumber())
      return argError(In, L, Name, "expected a number");
    Res.push_back(Value::number(Fn(Args[0].asNumber())));
    return true;
  });
}

void installMath(Interp &I) {
  auto M = std::make_shared<Table>();
  M->setStr("floor", numFn1("floor", [](double X) { return std::floor(X); }));
  M->setStr("ceil", numFn1("ceil", [](double X) { return std::ceil(X); }));
  M->setStr("sqrt", numFn1("sqrt", [](double X) { return std::sqrt(X); }));
  M->setStr("abs", numFn1("abs", [](double X) { return std::fabs(X); }));
  M->setStr("exp", numFn1("exp", [](double X) { return std::exp(X); }));
  M->setStr("log", numFn1("log", [](double X) { return std::log(X); }));
  M->setStr("sin", numFn1("sin", [](double X) { return std::sin(X); }));
  M->setStr("cos", numFn1("cos", [](double X) { return std::cos(X); }));
  M->setStr("huge", Value::number(HUGE_VAL));
  M->setStr("pi", Value::number(M_PI));
  M->setStr("max", builtin("max", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty())
                return argError(In, L, "max", "expected numbers");
              double Best = -HUGE_VAL;
              for (const Value &V : Args) {
                if (!V.isNumber())
                  return argError(In, L, "max", "expected numbers");
                Best = std::max(Best, V.asNumber());
              }
              Res.push_back(Value::number(Best));
              return true;
            }));
  M->setStr("min", builtin("min", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty())
                return argError(In, L, "min", "expected numbers");
              double Best = HUGE_VAL;
              for (const Value &V : Args) {
                if (!V.isNumber())
                  return argError(In, L, "min", "expected numbers");
                Best = std::min(Best, V.asNumber());
              }
              Res.push_back(Value::number(Best));
              return true;
            }));
  M->setStr("pow", builtin("pow", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.size() < 2 || !Args[0].isNumber() || !Args[1].isNumber())
                return argError(In, L, "pow", "expected two numbers");
              Res.push_back(
                  Value::number(std::pow(Args[0].asNumber(),
                                         Args[1].asNumber())));
              return true;
            }));
  M->setStr("fmod", builtin("fmod", [](Interp &In, std::vector<Value> &Args,
                                       std::vector<Value> &Res, SourceLoc L) {
              if (Args.size() < 2 || !Args[0].isNumber() || !Args[1].isNumber())
                return argError(In, L, "fmod", "expected two numbers");
              Res.push_back(
                  Value::number(std::fmod(Args[0].asNumber(),
                                          Args[1].asNumber())));
              return true;
            }));
  // Deterministic LCG so benchmarks and tests are reproducible.
  auto Seed = std::make_shared<uint64_t>(0x2545F4914F6CDD1Dull);
  M->setStr("randomseed",
            builtin("randomseed", [Seed](Interp &, std::vector<Value> &Args,
                                         std::vector<Value> &, SourceLoc) {
              if (!Args.empty() && Args[0].isNumber())
                *Seed = static_cast<uint64_t>(Args[0].asNumber()) * 2654435761u +
                        1;
              return true;
            }));
  M->setStr("random",
            builtin("random", [Seed](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              *Seed = *Seed * 6364136223846793005ull + 1442695040888963407ull;
              double U = static_cast<double>((*Seed >> 11) & ((1ull << 53) - 1)) /
                         static_cast<double>(1ull << 53);
              if (Args.empty()) {
                Res.push_back(Value::number(U));
                return true;
              }
              if (Args.size() == 1 && Args[0].isNumber()) {
                double N = Args[0].asNumber();
                Res.push_back(Value::number(1 + std::floor(U * N)));
                return true;
              }
              if (Args.size() >= 2 && Args[0].isNumber() && Args[1].isNumber()) {
                double Lo = Args[0].asNumber(), Hi = Args[1].asNumber();
                Res.push_back(Value::number(Lo + std::floor(U * (Hi - Lo + 1))));
                return true;
              }
              return argError(In, L, "random", "expected numeric bounds");
            }));
  defineGlobal(I, "math", Value::table(M));
}

void installString(Interp &I) {
  auto S = std::make_shared<Table>();
  S->setStr("len", builtin("len", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isString())
                return argError(In, L, "len", "expected a string");
              Res.push_back(Value::number(
                  static_cast<double>(Args[0].asString().size())));
              return true;
            }));
  S->setStr("rep", builtin("rep", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.size() < 2 || !Args[0].isString() || !Args[1].isNumber())
                return argError(In, L, "rep", "expected string, count");
              std::string Out;
              for (int K = 0; K < Args[1].asNumber(); ++K)
                Out += Args[0].asString();
              Res.push_back(Value::string(Out));
              return true;
            }));
  S->setStr("sub", builtin("sub", [](Interp &In, std::vector<Value> &Args,
                                     std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isString())
                return argError(In, L, "sub", "expected a string");
              const std::string &Str = Args[0].asString();
              int64_t Lo = Args.size() > 1 && Args[1].isNumber()
                               ? static_cast<int64_t>(Args[1].asNumber())
                               : 1;
              int64_t Hi = Args.size() > 2 && Args[2].isNumber()
                               ? static_cast<int64_t>(Args[2].asNumber())
                               : -1;
              int64_t N = static_cast<int64_t>(Str.size());
              if (Lo < 0)
                Lo = std::max<int64_t>(N + Lo + 1, 1);
              if (Lo < 1)
                Lo = 1;
              if (Hi < 0)
                Hi = N + Hi + 1;
              if (Hi > N)
                Hi = N;
              Res.push_back(Value::string(
                  Lo > Hi ? "" : Str.substr(Lo - 1, Hi - Lo + 1)));
              return true;
            }));
  S->setStr("upper", builtin("upper", [](Interp &In, std::vector<Value> &Args,
                                         std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isString())
                return argError(In, L, "upper", "expected a string");
              std::string Out = Args[0].asString();
              for (char &C : Out)
                C = toupper(static_cast<unsigned char>(C));
              Res.push_back(Value::string(Out));
              return true;
            }));
  S->setStr("format",
            builtin("format", [](Interp &In, std::vector<Value> &Args,
                                 std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isString())
                return argError(In, L, "format", "expected a format string");
              const std::string &Fmt = Args[0].asString();
              std::string Out;
              size_t ArgI = 1;
              for (size_t K = 0; K < Fmt.size(); ++K) {
                if (Fmt[K] != '%') {
                  Out += Fmt[K];
                  continue;
                }
                size_t Start = K++;
                if (K < Fmt.size() && Fmt[K] == '%') {
                  Out += '%';
                  continue;
                }
                while (K < Fmt.size() &&
                       !strchr("diufgexXsc", Fmt[K]))
                  ++K;
                if (K >= Fmt.size())
                  break;
                std::string Spec = Fmt.substr(Start, K - Start + 1);
                char Buf[256];
                if (ArgI >= Args.size())
                  return argError(In, L, "format", "missing argument");
                const Value &A = Args[ArgI++];
                switch (Fmt[K]) {
                case 'd':
                case 'i':
                case 'u':
                case 'x':
                case 'X': {
                  if (!A.isNumber())
                    return argError(In, L, "format", "expected a number");
                  std::string S2 = Spec.substr(0, Spec.size() - 1) + "lld";
                  if (Fmt[K] == 'x' || Fmt[K] == 'X')
                    S2 = Spec.substr(0, Spec.size() - 1) +
                         (Fmt[K] == 'x' ? "llx" : "llX");
                  snprintf(Buf, sizeof(Buf), S2.c_str(),
                           static_cast<long long>(A.asNumber()));
                  Out += Buf;
                  break;
                }
                case 'f':
                case 'g':
                case 'e': {
                  if (!A.isNumber())
                    return argError(In, L, "format", "expected a number");
                  snprintf(Buf, sizeof(Buf), Spec.c_str(), A.asNumber());
                  Out += Buf;
                  break;
                }
                case 's':
                  Out += toDisplayString(A);
                  break;
                case 'c':
                  if (A.isNumber())
                    Out += static_cast<char>(A.asNumber());
                  break;
                }
              }
              Res.push_back(Value::string(Out));
              return true;
            }));
  defineGlobal(I, "string", Value::table(S));
}

void installTableLib(Interp &I) {
  auto T = std::make_shared<Table>();
  T->setStr("insert",
            builtin("insert", [](Interp &In, std::vector<Value> &Args,
                                 std::vector<Value> &, SourceLoc L) {
              if (Args.empty() || !Args[0].isTable())
                return argError(In, L, "insert", "expected a table");
              Table *Tbl = Args[0].asTable();
              if (Args.size() == 2) {
                Tbl->append(Args[1]);
                return true;
              }
              if (Args.size() >= 3 && Args[1].isNumber()) {
                int64_t Pos = static_cast<int64_t>(Args[1].asNumber());
                int64_t N = Tbl->arrayLength();
                for (int64_t K = N; K >= Pos; --K)
                  Tbl->setInt(K + 1, Tbl->getInt(K));
                Tbl->setInt(Pos, Args[2]);
                return true;
              }
              return argError(In, L, "insert", "invalid arguments");
            }));
  T->setStr("remove",
            builtin("remove", [](Interp &In, std::vector<Value> &Args,
                                 std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isTable())
                return argError(In, L, "remove", "expected a table");
              Table *Tbl = Args[0].asTable();
              int64_t N = Tbl->arrayLength();
              if (N == 0) {
                Res.push_back(Value::nil());
                return true;
              }
              int64_t Pos = Args.size() > 1 && Args[1].isNumber()
                                ? static_cast<int64_t>(Args[1].asNumber())
                                : N;
              Value Removed = Tbl->getInt(Pos);
              for (int64_t K = Pos; K < N; ++K)
                Tbl->setInt(K, Tbl->getInt(K + 1));
              Tbl->setInt(N, Value::nil());
              Res.push_back(Removed);
              return true;
            }));
  T->setStr("concat",
            builtin("concat", [](Interp &In, std::vector<Value> &Args,
                                 std::vector<Value> &Res, SourceLoc L) {
              if (Args.empty() || !Args[0].isTable())
                return argError(In, L, "concat", "expected a table");
              std::string Sep = Args.size() > 1 && Args[1].isString()
                                    ? Args[1].asString()
                                    : "";
              Table *Tbl = Args[0].asTable();
              int64_t N = Tbl->arrayLength();
              std::string Out;
              for (int64_t K = 1; K <= N; ++K) {
                if (K > 1)
                  Out += Sep;
                Out += toDisplayString(Tbl->getInt(K));
              }
              Res.push_back(Value::string(Out));
              return true;
            }));
  T->setStr("sort",
            builtin("sort", [](Interp &In, std::vector<Value> &Args,
                               std::vector<Value> &, SourceLoc L) {
              if (Args.empty() || !Args[0].isTable())
                return argError(In, L, "sort", "expected a table");
              Table *Tbl = Args[0].asTable();
              int64_t N = Tbl->arrayLength();
              std::vector<Value> Items;
              for (int64_t K = 1; K <= N; ++K)
                Items.push_back(Tbl->getInt(K));
              bool OK = true;
              std::stable_sort(Items.begin(), Items.end(),
                               [&](const Value &A, const Value &B) {
                                 if (A.isNumber() && B.isNumber())
                                   return A.asNumber() < B.asNumber();
                                 if (A.isString() && B.isString())
                                   return A.asString() < B.asString();
                                 OK = false;
                                 return false;
                               });
              if (!OK)
                return argError(In, L, "sort", "unsortable values");
              for (int64_t K = 1; K <= N; ++K)
                Tbl->setInt(K, Items[K - 1]);
              return true;
            }));
  defineGlobal(I, "table", Value::table(T));
}

void installOsIo(Interp &I) {
  auto Os = std::make_shared<Table>();
  Os->setStr("clock", builtin("clock", [](Interp &, std::vector<Value> &,
                                          std::vector<Value> &Res, SourceLoc) {
                static Timer T;
                Res.push_back(Value::number(T.seconds()));
                return true;
              }));
  defineGlobal(I, "os", Value::table(Os));

  auto Io = std::make_shared<Table>();
  Io->setStr("write", builtin("write", [](Interp &, std::vector<Value> &Args,
                                          std::vector<Value> &, SourceLoc) {
                for (const Value &V : Args)
                  fputs(toDisplayString(V).c_str(), stdout);
                return true;
              }));
  defineGlobal(I, "io", Value::table(Io));
}

//===----------------------------------------------------------------------===//
// Terra surface: types, symbol, global, vector, ->, &
//===----------------------------------------------------------------------===//

void installTerraTypes(Interp &I, TerraCompiler &Comp) {
  TypeContext &TC = I.terraCtx().types();
  defineGlobal(I, "bool", Value::type(TC.boolType()));
  defineGlobal(I, "int8", Value::type(TC.int8()));
  defineGlobal(I, "int16", Value::type(TC.int16()));
  defineGlobal(I, "int32", Value::type(TC.int32()));
  defineGlobal(I, "int64", Value::type(TC.int64()));
  defineGlobal(I, "uint8", Value::type(TC.uint8()));
  defineGlobal(I, "uint16", Value::type(TC.uint16()));
  defineGlobal(I, "uint32", Value::type(TC.uint32()));
  defineGlobal(I, "uint64", Value::type(TC.uint64()));
  defineGlobal(I, "int", Value::type(TC.int32()));
  defineGlobal(I, "uint", Value::type(TC.uint32()));
  defineGlobal(I, "long", Value::type(TC.int64()));
  defineGlobal(I, "float", Value::type(TC.float32()));
  defineGlobal(I, "double", Value::type(TC.float64()));
  defineGlobal(I, "rawstring", Value::type(TC.rawstring()));
  defineGlobal(I, "opaque", Value::type(TC.uint8()));

  defineGlobal(I, "vector",
               builtin("vector", [](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
                 if (Args.size() != 2 || !Args[0].isType() ||
                     !Args[1].isNumber())
                   return argError(In, L, "vector", "expected (type, length)");
                 Type *E = Args[0].asType();
                 auto N = static_cast<uint64_t>(Args[1].asNumber());
                 if (!E->isArithmetic() && !E->isBool())
                   return argError(In, L, "vector",
                                   "element must be an arithmetic type");
                 if (N == 0 || (N & (N - 1)) != 0)
                   return argError(In, L, "vector",
                                   "length must be a power of two");
                 Res.push_back(Value::type(In.terraCtx().types().vector(E, N)));
                 return true;
               }));

  defineGlobal(I, "__pointer",
               builtin("__pointer", [](Interp &In, std::vector<Value> &Args,
                                       std::vector<Value> &Res, SourceLoc L) {
                 if (Args.size() != 1)
                   return argError(In, L, "&", "expected a type");
                 Type *T = Args[0].isType() ? Args[0].asType()
                                            : In.valueAsType(Args[0]);
                 if (!T)
                   return argError(In, L, "&", "operand is not a terra type");
                 Res.push_back(Value::type(In.terraCtx().types().pointer(T)));
                 return true;
               }));

  defineGlobal(
      I, "__arrow",
      builtin("__arrow", [](Interp &In, std::vector<Value> &Args,
                            std::vector<Value> &Res, SourceLoc L) {
        if (Args.size() != 2)
          return argError(In, L, "->", "expected parameter and return types");
        std::vector<Type *> Params;
        if (Args[0].isType()) {
          Params.push_back(Args[0].asType());
        } else if (Args[0].isTable()) {
          Table *T = Args[0].asTable();
          int64_t N = T->arrayLength();
          for (int64_t K = 1; K <= N; ++K) {
            Value V = T->getInt(K);
            if (!V.isType())
              return argError(In, L, "->", "parameter list contains a "
                                           "non-type");
            Params.push_back(V.asType());
          }
        } else {
          return argError(In, L, "->", "invalid parameter list");
        }
        Type *R = In.valueAsType(Args[1]);
        if (!R)
          return argError(In, L, "->", "invalid return type");
        Res.push_back(Value::type(
            In.terraCtx().types().function(std::move(Params), R)));
        return true;
      }));

  defineGlobal(I, "symbol",
               builtin("symbol", [](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
                 Type *T = nullptr;
                 const std::string *Name = nullptr;
                 for (const Value &A : Args) {
                   if (A.isType())
                     T = A.asType();
                   else if (A.isString())
                     Name = In.terraCtx().intern(A.asString());
                   else
                     return argError(In, L, "symbol",
                                     "expected optional type and name");
                 }
                 if (!Name)
                   Name = In.terraCtx().intern("sym");
                 Res.push_back(
                     Value::symbol(In.terraCtx().freshSymbol(Name, T)));
                 return true;
               }));

  TerraCompiler *CompP = &Comp;
  defineGlobal(I, "global",
               builtin("global", [CompP](Interp &In, std::vector<Value> &Args,
                                         std::vector<Value> &Res,
                                         SourceLoc L) {
                 if (Args.empty() || !Args[0].isType())
                   return argError(In, L, "global", "expected (type [, init])");
                 Type *T = Args[0].asType();
                 if (auto *ST = dyn_cast<StructType>(T))
                   if (!CompP->typechecker().completeStruct(ST, L))
                     return false;
                 TerraGlobal *G =
                     In.terraCtx().createGlobal("global", T);
                 if (Args.size() > 1 &&
                     !CompP->marshalValue(Args[1], T, G->Storage, L))
                   return false;
                 Res.push_back(Value::global(G));
                 return true;
               }));

  // Terra intrinsics surfaced as host builtins; the specializer intercepts
  // them in call position inside terra code. Called from host code, sizeof
  // returns the byte size; prefetch is an error.
  defineGlobal(I, "sizeof",
               builtin("sizeof", [CompP](Interp &In, std::vector<Value> &Args,
                                         std::vector<Value> &Res,
                                         SourceLoc L) {
                 if (Args.size() != 1 || !Args[0].isType())
                   return argError(In, L, "sizeof", "expected a terra type");
                 Type *T = Args[0].asType();
                 if (auto *ST = dyn_cast<StructType>(T))
                   if (!CompP->typechecker().completeStruct(ST, L))
                     return false;
                 Res.push_back(Value::number(static_cast<double>(T->size())));
                 return true;
               }));
  defineGlobal(I, "prefetch",
               builtin("prefetch", [](Interp &In, std::vector<Value> &,
                                      std::vector<Value> &, SourceLoc L) {
                 return In.fail(L, "prefetch is only usable inside terra "
                                   "code");
               }));
}

//===----------------------------------------------------------------------===//
// terralib
//===----------------------------------------------------------------------===//

/// Curated libc registry standing in for Clang-based includec (DESIGN.md §4).
struct ExternSpec {
  const char *Name;
  const char *Ret;
  std::vector<const char *> Params;
  bool VarArg = false;
};

Type *namedType(TypeContext &TC, const std::string &N) {
  if (N == "void")
    return TC.voidType();
  if (N == "int")
    return TC.int32();
  if (N == "i64")
    return TC.int64();
  if (N == "u64")
    return TC.uint64();
  if (N == "f32")
    return TC.float32();
  if (N == "f64")
    return TC.float64();
  if (N == "ptr")
    return TC.opaquePtr();
  if (N == "str")
    return TC.rawstring();
  return nullptr;
}

const std::map<std::string, std::vector<ExternSpec>> &externRegistry() {
  static const std::map<std::string, std::vector<ExternSpec>> Registry = {
      {"stdlib.h",
       {{"malloc", "ptr", {"i64"}},
        {"calloc", "ptr", {"i64", "i64"}},
        {"realloc", "ptr", {"ptr", "i64"}},
        {"free", "void", {"ptr"}},
        {"abort", "void", {}},
        {"exit", "void", {"int"}}}},
      {"stdio.h",
       {{"printf", "int", {"str"}, /*VarArg=*/true},
        {"puts", "int", {"str"}},
        {"putchar", "int", {"int"}}}},
      {"string.h",
       {{"memcpy", "ptr", {"ptr", "ptr", "i64"}},
        {"memset", "ptr", {"ptr", "int", "i64"}},
        {"memmove", "ptr", {"ptr", "ptr", "i64"}},
        {"strlen", "i64", {"str"}},
        {"strcmp", "int", {"str", "str"}}}},
      {"math.h",
       {{"sqrt", "f64", {"f64"}},
        {"sqrtf", "f32", {"f32"}},
        {"sin", "f64", {"f64"}},
        {"cos", "f64", {"f64"}},
        {"exp", "f64", {"f64"}},
        {"log", "f64", {"f64"}},
        {"pow", "f64", {"f64", "f64"}},
        {"fabs", "f64", {"f64"}},
        {"fabsf", "f32", {"f32"}},
        {"floor", "f64", {"f64"}},
        {"ceil", "f64", {"f64"}},
        {"fmod", "f64", {"f64", "f64"}}}},
  };
  return Registry;
}

void installTerralib(Interp &I, TerraCompiler &Comp) {
  auto TL = std::make_shared<Table>();
  TerraCompiler *CompP = &Comp;

  TL->setStr(
      "includec",
      builtin("includec", [CompP](Interp &In, std::vector<Value> &Args,
                                  std::vector<Value> &Res, SourceLoc L) {
        if (Args.empty() || !Args[0].isString())
          return argError(In, L, "includec", "expected a header name");
        const std::string &Header = Args[0].asString();
        const auto &Registry = externRegistry();
        auto It = Registry.find(Header);
        if (It == Registry.end())
          return In.fail(L, "includec: header '" + Header +
                                "' is not in the offline registry (available: "
                                "stdlib.h, stdio.h, string.h, math.h)");
        TypeContext &TC = In.terraCtx().types();
        auto Out = std::make_shared<Table>();
        for (const ExternSpec &Spec : It->second) {
          std::vector<Type *> Params;
          for (const char *P : Spec.Params)
            Params.push_back(namedType(TC, P));
          FunctionType *FnTy =
              TC.function(std::move(Params), namedType(TC, Spec.Ret));
          TerraFunction *F =
              CompP->createExtern(Spec.Name, FnTy, Header, nullptr);
          F->IsVarArg = Spec.VarArg;
          Out->setStr(Spec.Name, Value::terraFn(F));
        }
        Res.push_back(Value::table(std::move(Out)));
        return true;
      }));

  TL->setStr(
      "cast",
      builtin("cast", [CompP](Interp &In, std::vector<Value> &Args,
                              std::vector<Value> &Res, SourceLoc L) {
        if (Args.size() != 2 || !Args[0].isType())
          return argError(In, L, "terralib.cast", "expected (type, value)");
        auto *FnTy = dyn_cast<FunctionType>(Args[0].asType());
        if (FnTy && Args[1].isClosure()) {
          // Wrap a Lua function as a Terra function (paper §4.2).
          TerraFunction *F = CompP->wrapHostClosure(
              Args[1].closurePtr(), FnTy,
              Args[1].asClosure()->Name.empty() ? "luafn"
                                                : Args[1].asClosure()->Name);
          Res.push_back(Value::terraFn(F));
          return true;
        }
        // Value cast: marshal through the FFI into a typed cdata.
        Type *T = Args[0].asType();
        auto CD = std::make_shared<CData>();
        CD->Ty = T;
        CD->Bytes.assign(T->size(), 0);
        if (!CompP->marshalValue(Args[1], T, CD->Bytes.data(), L))
          return false;
        Res.push_back(Value::cdata(std::move(CD)));
        return true;
      }));

  TL->setStr("new",
             builtin("new", [CompP](Interp &In, std::vector<Value> &Args,
                                    std::vector<Value> &Res, SourceLoc L) {
               if (Args.empty() || !Args[0].isType())
                 return argError(In, L, "terralib.new",
                                 "expected (type [, init])");
               Type *T = Args[0].asType();
               if (auto *ST = dyn_cast<StructType>(T))
                 if (!CompP->typechecker().completeStruct(ST, L))
                   return false;
               auto CD = std::make_shared<CData>();
               CD->Ty = T;
               CD->Bytes.assign(T->size(), 0);
               if (Args.size() > 1 &&
                   !CompP->marshalValue(Args[1], T, CD->Bytes.data(), L))
                 return false;
               Res.push_back(Value::cdata(std::move(CD)));
               return true;
             }));

  TL->setStr("typeof",
             builtin("typeof", [](Interp &In, std::vector<Value> &Args,
                                  std::vector<Value> &Res, SourceLoc L) {
               if (Args.empty() || !Args[0].isCData())
                 return argError(In, L, "terralib.typeof",
                                 "expected a cdata value");
               Res.push_back(Value::type(Args[0].asCData()->Ty));
               return true;
             }));

  TL->setStr(
      "saveobj",
      builtin("saveobj", [CompP](Interp &In, std::vector<Value> &Args,
                                 std::vector<Value> &, SourceLoc L) {
        if (Args.size() < 2 || !Args[0].isString() || !Args[1].isTable())
          return argError(In, L, "terralib.saveobj",
                          "expected (path, { name = terrafn, ... })");
        std::vector<std::pair<std::string, TerraFunction *>> Exports;
        for (const auto &KV : Args[1].asTable()->entries()) {
          if (!KV.first.isString() || !KV.second.isTerraFn())
            return argError(In, L, "terralib.saveobj",
                            "export table must map names to terra functions");
          Exports.emplace_back(KV.first.asString(), KV.second.asTerraFn());
        }
        return CompP->saveObject(Args[0].asString(), Exports);
      }));

  TL->setStr("compile",
             builtin("compile", [CompP](Interp &In, std::vector<Value> &Args,
                                        std::vector<Value> &, SourceLoc L) {
               if (Args.empty() || !Args[0].isTerraFn())
                 return argError(In, L, "terralib.compile",
                                 "expected a terra function");
               return CompP->ensureCompiled(Args[0].asTerraFn());
             }));

  TL->setStr("declare",
             builtin("declare", [](Interp &In, std::vector<Value> &Args,
                                   std::vector<Value> &Res, SourceLoc) {
               // The paper's tdecl: an undefined function that a later
               // `terra name(...) ... end` fills in (mutual recursion).
               std::string Name = !Args.empty() && Args[0].isString()
                                      ? Args[0].asString()
                                      : "decl";
               Res.push_back(Value::terraFn(
                   In.terraCtx().createFunction(std::move(Name))));
               return true;
             }));

  TL->setStr("newlist",
             builtin("newlist", [](Interp &, std::vector<Value> &Args,
                                   std::vector<Value> &Res, SourceLoc) {
               Value T = Value::newTable();
               for (size_t K = 0; K != Args.size(); ++K)
                 T.asTable()->setInt(static_cast<int64_t>(K + 1), Args[K]);
               Res.push_back(T);
               return true;
             }));

  TL->setStr("offsetof",
             builtin("offsetof", [CompP](Interp &In, std::vector<Value> &Args,
                                         std::vector<Value> &Res,
                                         SourceLoc L) {
               if (Args.size() != 2 || !Args[0].isType() ||
                   !Args[1].isString())
                 return argError(In, L, "terralib.offsetof",
                                 "expected (structtype, fieldname)");
               auto *ST = dyn_cast<StructType>(Args[0].asType());
               if (!ST)
                 return argError(In, L, "terralib.offsetof",
                                 "expected a struct type");
               if (!CompP->typechecker().completeStruct(ST, L))
                 return false;
               int Idx = ST->fieldIndex(Args[1].asString());
               if (Idx < 0)
                 return In.fail(L, "no field '" + Args[1].asString() +
                                       "' in struct " + ST->name());
               Res.push_back(Value::number(
                   static_cast<double>(ST->fields()[Idx].Offset)));
               return true;
             }));

  defineGlobal(I, "terralib", Value::table(TL));
}

} // namespace

void terracpp::installStdlib(Interp &I, TerraCompiler &Comp) {
  installCore(I);
  installMath(I);
  installString(I);
  installTableLib(I);
  installOsIo(I);
  installTerraTypes(I, Comp);
  installTerralib(I, Comp);
}
