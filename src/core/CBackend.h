//===- CBackend.h - Emit C from typed Terra trees ---------------*- C++ -*-===//
//
// The native backend. The original system JIT-compiles Terra through LLVM;
// offline we substitute a C code generator whose output is compiled by the
// system C compiler and loaded with dlopen (see DESIGN.md §4). SIMD vector
// types map to GCC vector extensions and `prefetch` to __builtin_prefetch,
// so staged kernels become real vectorized native code.
//
// Cross-module references (functions compiled earlier, Terra globals, and
// the host-callback trampoline) are emitted as pointer literals baked into
// the source, which keeps every generated module self-contained — the same
// strategy a JIT uses when patching absolute addresses.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_CBACKEND_H
#define TERRACPP_CORE_CBACKEND_H

#include "core/TerraAST.h"

#include <map>
#include <string>
#include <vector>

namespace terracpp {

class CBackend {
public:
  explicit CBackend(TerraContext &Ctx) : Ctx(Ctx) {}

  /// Emits a complete C translation unit defining every function in \p Fns
  /// (which must be typechecked, with midend passes run), plus an
  /// `<name>_entry(void**, void*)` thunk per function for FFI calls.
  /// Returns an empty string after reporting a diagnostic on failure.
  ///
  /// In standalone mode (saveobj) no in-process addresses may be baked into
  /// the output: every referenced function must be part of \p Fns, host
  /// closures are rejected, and Terra globals become module-local
  /// definitions (zero-initialized). \p Exports adds alias symbols with
  /// unmangled names.
  std::string
  emitModule(const std::vector<TerraFunction *> &Fns,
             void *HostCallCtx = nullptr, bool Standalone = false,
             const std::map<const TerraFunction *, std::string> *Exports =
                 nullptr);

  /// True when the most recent emitModule baked a process-local absolute
  /// address (compiled callee, global storage, host trampoline, pointer
  /// literal) into the source. Such modules must not be served from the
  /// JIT's persistent cross-process cache.
  bool lastModuleBakedAddresses() const { return LastBakedAddrs; }

private:
  class Emitter;
  TerraContext &Ctx;
  bool LastBakedAddrs = false;
};

} // namespace terracpp

#endif // TERRACPP_CORE_CBACKEND_H
