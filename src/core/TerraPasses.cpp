#include "core/TerraPasses.h"

#include "analysis/CFG.h"
#include "analysis/Interval.h"
#include "core/TerraType.h"

#include <cmath>

using namespace terracpp;

namespace {

bool isBoolLit(const TerraExpr *E, bool &Out) {
  const auto *L = dyn_cast<LitExpr>(E);
  if (!L || L->LK != LitExpr::LK_Bool)
    return false;
  Out = L->BoolVal;
  return true;
}

/// True when \p S contains a break that would bind to an enclosing loop
/// (does not descend into nested loops, whose breaks bind there).
bool containsLoopBreak(const TerraStmt *S) {
  if (!S)
    return false;
  switch (S->kind()) {
  case TerraNode::NK_Break:
    return true;
  case TerraNode::NK_Block: {
    const auto *B = cast<BlockStmt>(S);
    for (unsigned I = 0; I != B->NumStmts; ++I)
      if (containsLoopBreak(B->Stmts[I]))
        return true;
    return false;
  }
  case TerraNode::NK_If: {
    const auto *I = cast<IfStmt>(S);
    for (unsigned K = 0; K != I->NumClauses; ++K)
      if (containsLoopBreak(I->Blocks[K]))
        return true;
    return containsLoopBreak(I->ElseBlock);
  }
  default:
    return false;
  }
}

/// True when control cannot flow past \p S: a return/break, a block
/// containing one, an if whose every branch (including a required else)
/// terminates, or a `while true` with no break. Statements after a
/// terminating one are unreachable and dropped by the folder, which keeps
/// the verifier's unreachable-code check from firing on folded trees.
bool stmtTerminates(const TerraStmt *S) {
  switch (S->kind()) {
  case TerraNode::NK_Return:
  case TerraNode::NK_Break:
    return true;
  case TerraNode::NK_Block: {
    const auto *B = cast<BlockStmt>(S);
    for (unsigned I = 0; I != B->NumStmts; ++I)
      if (stmtTerminates(B->Stmts[I]))
        return true;
    return false;
  }
  case TerraNode::NK_If: {
    const auto *I = cast<IfStmt>(S);
    if (!I->ElseBlock)
      return false;
    for (unsigned K = 0; K != I->NumClauses; ++K)
      if (!stmtTerminates(I->Blocks[K]))
        return false;
    return stmtTerminates(I->ElseBlock);
  }
  case TerraNode::NK_While: {
    const auto *W = cast<WhileStmt>(S);
    bool C;
    return isBoolLit(W->Cond, C) && C && !containsLoopBreak(W->Body);
  }
  default:
    return false;
  }
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

bool isIntLit(const TerraExpr *E, int64_t &Out) {
  const auto *L = dyn_cast<LitExpr>(E);
  if (!L || L->LK != LitExpr::LK_Int)
    return false;
  Out = L->IntVal;
  return true;
}

bool isFloatLit(const TerraExpr *E, double &Out) {
  const auto *L = dyn_cast<LitExpr>(E);
  if (!L || L->LK != LitExpr::LK_Float)
    return false;
  Out = L->FloatVal;
  return true;
}

class Folder {
public:
  explicit Folder(TerraContext &Ctx) : Ctx(Ctx) {}

  void foldExpr(TerraExpr *&E);
  void foldStmt(TerraStmt *&S);
  void foldBlock(BlockStmt *B);

private:
  LitExpr *makeInt(int64_t V, Type *Ty, SourceLoc Loc) {
    auto *L = Ctx.make<LitExpr>(Loc);
    L->LK = LitExpr::LK_Int;
    L->IntVal = V;
    L->LitTy = Ty;
    L->Ty = Ty;
    return L;
  }
  LitExpr *makeFloat(double V, Type *Ty, SourceLoc Loc) {
    auto *L = Ctx.make<LitExpr>(Loc);
    L->LK = LitExpr::LK_Float;
    L->FloatVal = V;
    L->LitTy = Ty;
    L->Ty = Ty;
    return L;
  }
  LitExpr *makeBool(bool V, Type *Ty, SourceLoc Loc) {
    auto *L = Ctx.make<LitExpr>(Loc);
    L->LK = LitExpr::LK_Bool;
    L->BoolVal = V;
    L->LitTy = Ty;
    L->Ty = Ty;
    return L;
  }

  TerraContext &Ctx;
};

void Folder::foldExpr(TerraExpr *&E) {
  if (!E)
    return;
  switch (E->kind()) {
  case TerraNode::NK_BinOp: {
    auto *B = cast<BinOpExpr>(E);
    foldExpr(B->LHS);
    foldExpr(B->RHS);
    int64_t LI, RI;
    double LF, RF;
    Type *Ty = B->Ty;
    if (!Ty || Ty->isVector())
      return;
    if (isIntLit(B->LHS, LI) && isIntLit(B->RHS, RI)) {
      switch (B->Op) {
      case BinOpKind::Add:
        E = makeInt(LI + RI, Ty, E->loc());
        return;
      case BinOpKind::Sub:
        E = makeInt(LI - RI, Ty, E->loc());
        return;
      case BinOpKind::Mul:
        E = makeInt(LI * RI, Ty, E->loc());
        return;
      case BinOpKind::Div:
        if (RI != 0)
          E = makeInt(LI / RI, Ty, E->loc());
        return;
      case BinOpKind::Mod:
        if (RI != 0)
          E = makeInt(LI % RI, Ty, E->loc());
        return;
      case BinOpKind::Lt:
        E = makeBool(LI < RI, Ty, E->loc());
        return;
      case BinOpKind::Le:
        E = makeBool(LI <= RI, Ty, E->loc());
        return;
      case BinOpKind::Gt:
        E = makeBool(LI > RI, Ty, E->loc());
        return;
      case BinOpKind::Ge:
        E = makeBool(LI >= RI, Ty, E->loc());
        return;
      case BinOpKind::Eq:
        E = makeBool(LI == RI, Ty, E->loc());
        return;
      case BinOpKind::Ne:
        E = makeBool(LI != RI, Ty, E->loc());
        return;
      default:
        return;
      }
    }
    if (isFloatLit(B->LHS, LF) && isFloatLit(B->RHS, RF)) {
      switch (B->Op) {
      case BinOpKind::Add:
        E = makeFloat(LF + RF, Ty, E->loc());
        return;
      case BinOpKind::Sub:
        E = makeFloat(LF - RF, Ty, E->loc());
        return;
      case BinOpKind::Mul:
        E = makeFloat(LF * RF, Ty, E->loc());
        return;
      case BinOpKind::Div:
        E = makeFloat(LF / RF, Ty, E->loc());
        return;
      default:
        return;
      }
    }
    return;
  }
  case TerraNode::NK_UnOp: {
    auto *U = cast<UnOpExpr>(E);
    foldExpr(U->Operand);
    int64_t I;
    double F;
    if (U->Op == UnOpKind::Neg && U->Ty && !U->Ty->isVector()) {
      if (isIntLit(U->Operand, I)) {
        E = makeInt(-I, U->Ty, E->loc());
        return;
      }
      if (isFloatLit(U->Operand, F)) {
        E = makeFloat(-F, U->Ty, E->loc());
        return;
      }
    }
    if (U->Op == UnOpKind::Not) {
      if (const auto *L = dyn_cast<LitExpr>(U->Operand);
          L && L->LK == LitExpr::LK_Bool) {
        E = makeBool(!L->BoolVal, U->Ty, E->loc());
        return;
      }
    }
    return;
  }
  case TerraNode::NK_Cast: {
    auto *C = cast<CastExpr>(E);
    foldExpr(C->Operand);
    // Fold numeric casts of literals.
    Type *To = C->Ty;
    const auto *L = dyn_cast<LitExpr>(C->Operand);
    if (!L || !To || To->isVector() || To->isPointer())
      return;
    if (L->LK == LitExpr::LK_Int && To->isFloat()) {
      E = makeFloat(static_cast<double>(L->IntVal), To, E->loc());
      return;
    }
    if (L->LK == LitExpr::LK_Int && To->isIntegral()) {
      E = makeInt(L->IntVal, To, E->loc());
      return;
    }
    if (L->LK == LitExpr::LK_Float && To->isFloat()) {
      double V = L->FloatVal;
      if (To->size() == 4)
        V = static_cast<float>(V);
      E = makeFloat(V, To, E->loc());
      return;
    }
    return;
  }
  case TerraNode::NK_Apply: {
    auto *A = cast<ApplyExpr>(E);
    foldExpr(A->Callee);
    for (unsigned I = 0; I != A->NumArgs; ++I)
      foldExpr(A->Args[I]);
    return;
  }
  case TerraNode::NK_Index: {
    auto *X = cast<IndexExpr>(E);
    foldExpr(X->Base);
    foldExpr(X->Idx);
    return;
  }
  case TerraNode::NK_Select: {
    foldExpr(cast<SelectExpr>(E)->Base);
    return;
  }
  case TerraNode::NK_Constructor: {
    auto *C = cast<ConstructorExpr>(E);
    for (unsigned I = 0; I != C->NumInits; ++I)
      foldExpr(C->Inits[I]);
    return;
  }
  case TerraNode::NK_Intrinsic: {
    auto *N = cast<IntrinsicExpr>(E);
    for (unsigned I = 0; I != N->NumArgs; ++I)
      foldExpr(N->Args[I]);
    return;
  }
  default:
    return;
  }
}

void Folder::foldBlock(BlockStmt *B) {
  // Fold each statement, drop everything after a terminating statement, and
  // resolve constant conditionals.
  std::vector<TerraStmt *> Out;
  for (unsigned I = 0; I != B->NumStmts; ++I) {
    TerraStmt *S = B->Stmts[I];
    foldStmt(S);
    if (!S)
      continue;
    Out.push_back(S);
    if (stmtTerminates(S))
      break; // Unreachable code after terminator.
  }
  if (Out.size() != B->NumStmts) {
    B->Stmts = Ctx.copyArray(Out);
    B->NumStmts = Out.size();
  } else {
    for (unsigned I = 0; I != B->NumStmts; ++I)
      B->Stmts[I] = Out[I];
  }
}

void Folder::foldStmt(TerraStmt *&S) {
  switch (S->kind()) {
  case TerraNode::NK_Block:
    foldBlock(cast<BlockStmt>(S));
    return;
  case TerraNode::NK_VarDecl: {
    auto *D = cast<VarDeclStmt>(S);
    for (unsigned I = 0; I != D->NumInits; ++I)
      foldExpr(D->Inits[I]);
    return;
  }
  case TerraNode::NK_Assign: {
    auto *A = cast<AssignStmt>(S);
    for (unsigned I = 0; I != A->NumLHS; ++I)
      foldExpr(A->LHS[I]);
    for (unsigned I = 0; I != A->NumRHS; ++I)
      foldExpr(A->RHS[I]);
    return;
  }
  case TerraNode::NK_If: {
    auto *I2 = cast<IfStmt>(S);
    for (unsigned K = 0; K != I2->NumClauses; ++K) {
      foldExpr(I2->Conds[K]);
      foldBlock(I2->Blocks[K]);
    }
    if (I2->ElseBlock)
      foldBlock(I2->ElseBlock);
    // Dead-branch elimination for constant conditions (staging residue): a
    // false clause disappears, a true clause becomes the else of everything
    // before it. Nothing structurally unreachable survives, which the
    // verifier's CFG check relies on.
    std::vector<TerraExpr *> Conds;
    std::vector<BlockStmt *> Blocks;
    BlockStmt *Else = I2->ElseBlock;
    bool ChangedClauses = false;
    for (unsigned K = 0; K != I2->NumClauses; ++K) {
      bool C;
      if (!isBoolLit(I2->Conds[K], C)) {
        Conds.push_back(I2->Conds[K]);
        Blocks.push_back(I2->Blocks[K]);
        continue;
      }
      ChangedClauses = true;
      if (C) {
        Else = I2->Blocks[K]; // Later clauses and the old else are dead.
        break;
      }
      // False clause: drop it.
    }
    if (ChangedClauses) {
      if (Conds.empty()) {
        S = Else; // May be null: `if false then ... end` vanishes.
      } else {
        I2->Conds = Ctx.copyArray(Conds);
        I2->Blocks = Ctx.copyArray(Blocks);
        I2->NumClauses = (unsigned)Conds.size();
        I2->ElseBlock = Else;
      }
    }
    return;
  }
  case TerraNode::NK_While: {
    auto *W = cast<WhileStmt>(S);
    foldExpr(W->Cond);
    foldBlock(W->Body);
    // `while false` (staging residue) never runs.
    bool C;
    if (isBoolLit(W->Cond, C) && !C)
      S = nullptr;
    return;
  }
  case TerraNode::NK_ForNum: {
    auto *F = cast<ForNumStmt>(S);
    foldExpr(F->Lo);
    foldExpr(F->Hi);
    if (F->Step)
      foldExpr(F->Step);
    foldBlock(F->Body);
    return;
  }
  case TerraNode::NK_Return: {
    auto *R = cast<ReturnStmt>(S);
    if (R->Val)
      foldExpr(R->Val);
    return;
  }
  case TerraNode::NK_ExprStmt:
    foldExpr(cast<ExprStmt>(S)->E);
    return;
  default:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Verifier
//===----------------------------------------------------------------------===//

class Verifier {
public:
  Verifier(DiagnosticEngine &Diags) : Diags(Diags) {}
  bool OK = true;

  void require(bool Cond, SourceLoc Loc, const char *Msg) {
    if (Cond)
      return;
    Diags.error(Loc, std::string("verifier: ") + Msg);
    OK = false;
  }

  void visitExpr(const TerraExpr *E) {
    if (!E)
      return;
    require(E->Ty != nullptr, E->loc(), "expression has no type");
    require(!isa<EscapeExpr>(E), E->loc(), "escape survived specialization");
    require(!isa<MethodCallExpr>(E), E->loc(),
            "method call survived typechecking");
    switch (E->kind()) {
    case TerraNode::NK_Select:
      visitExpr(cast<SelectExpr>(E)->Base);
      require(cast<SelectExpr>(E)->FieldIndex >= 0, E->loc(),
              "unresolved field");
      break;
    case TerraNode::NK_Apply: {
      const auto *A = cast<ApplyExpr>(E);
      visitExpr(A->Callee);
      for (unsigned I = 0; I != A->NumArgs; ++I)
        visitExpr(A->Args[I]);
      break;
    }
    case TerraNode::NK_BinOp:
      visitExpr(cast<BinOpExpr>(E)->LHS);
      visitExpr(cast<BinOpExpr>(E)->RHS);
      break;
    case TerraNode::NK_UnOp:
      visitExpr(cast<UnOpExpr>(E)->Operand);
      break;
    case TerraNode::NK_Index:
      visitExpr(cast<IndexExpr>(E)->Base);
      visitExpr(cast<IndexExpr>(E)->Idx);
      break;
    case TerraNode::NK_Cast:
      visitExpr(cast<CastExpr>(E)->Operand);
      break;
    case TerraNode::NK_Constructor: {
      const auto *C = cast<ConstructorExpr>(E);
      for (unsigned I = 0; I != C->NumInits; ++I)
        visitExpr(C->Inits[I]);
      break;
    }
    case TerraNode::NK_Intrinsic: {
      const auto *N = cast<IntrinsicExpr>(E);
      for (unsigned I = 0; I != N->NumArgs; ++I)
        visitExpr(N->Args[I]);
      break;
    }
    default:
      break;
    }
  }

  void visitStmt(const TerraStmt *S) {
    switch (S->kind()) {
    case TerraNode::NK_Block: {
      const auto *B = cast<BlockStmt>(S);
      for (unsigned I = 0; I != B->NumStmts; ++I)
        visitStmt(B->Stmts[I]);
      break;
    }
    case TerraNode::NK_VarDecl: {
      const auto *D = cast<VarDeclStmt>(S);
      for (unsigned I = 0; I != D->NumNames; ++I) {
        require(D->Names[I].Sym != nullptr, S->loc(), "unbound declaration");
        require(D->Names[I].Sym->DeclaredType != nullptr, S->loc(),
                "declaration without a type");
      }
      for (unsigned I = 0; I != D->NumInits; ++I)
        visitExpr(D->Inits[I]);
      break;
    }
    case TerraNode::NK_Assign: {
      const auto *A = cast<AssignStmt>(S);
      for (unsigned I = 0; I != A->NumLHS; ++I)
        visitExpr(A->LHS[I]);
      for (unsigned I = 0; I != A->NumRHS; ++I)
        visitExpr(A->RHS[I]);
      break;
    }
    case TerraNode::NK_If: {
      const auto *I2 = cast<IfStmt>(S);
      for (unsigned K = 0; K != I2->NumClauses; ++K) {
        visitExpr(I2->Conds[K]);
        visitStmt(I2->Blocks[K]);
      }
      if (I2->ElseBlock)
        visitStmt(I2->ElseBlock);
      break;
    }
    case TerraNode::NK_While:
      visitExpr(cast<WhileStmt>(S)->Cond);
      visitStmt(cast<WhileStmt>(S)->Body);
      break;
    case TerraNode::NK_ForNum: {
      const auto *F = cast<ForNumStmt>(S);
      require(F->Var.Sym && F->Var.Sym->DeclaredType, S->loc(),
              "loop variable untyped");
      visitExpr(F->Lo);
      visitExpr(F->Hi);
      if (F->Step)
        visitExpr(F->Step);
      visitStmt(F->Body);
      break;
    }
    case TerraNode::NK_Return:
      if (cast<ReturnStmt>(S)->Val)
        visitExpr(cast<ReturnStmt>(S)->Val);
      break;
    case TerraNode::NK_Break:
      break;
    case TerraNode::NK_ExprStmt:
      visitExpr(cast<ExprStmt>(S)->E);
      break;
    case TerraNode::NK_EscapeStmt:
      require(false, S->loc(), "escape statement survived specialization");
      break;
    default:
      require(false, S->loc(), "unknown statement kind");
    }
  }

private:
  DiagnosticEngine &Diags;
};

} // namespace

namespace {

/// Replaces branch conditions the interval analysis proved constant
/// (TerraFunction::RangeFacts) with boolean literals, so the constant
/// folder prunes the dead branch like any other staging residue. Must run
/// before the Folder: the fact table is keyed on the pre-fold nodes. Only
/// pure conditions are entered into ConstCond, so dropping the evaluation
/// cannot change observable behavior on any tier.
class FactCondFolder {
public:
  FactCondFolder(TerraContext &Ctx, const analysis::FactTable &Facts)
      : Ctx(Ctx), Facts(Facts) {}

  void visitStmt(TerraStmt *S) {
    if (!S)
      return;
    switch (S->kind()) {
    case TerraNode::NK_Block: {
      auto *B = cast<BlockStmt>(S);
      for (unsigned I = 0; I != B->NumStmts; ++I)
        visitStmt(B->Stmts[I]);
      return;
    }
    case TerraNode::NK_If: {
      auto *I = cast<IfStmt>(S);
      for (unsigned K = 0; K != I->NumClauses; ++K) {
        rewrite(I->Conds[K]);
        visitStmt(I->Blocks[K]);
      }
      visitStmt(I->ElseBlock);
      return;
    }
    case TerraNode::NK_While: {
      auto *W = cast<WhileStmt>(S);
      rewrite(W->Cond);
      visitStmt(W->Body);
      return;
    }
    case TerraNode::NK_ForNum:
      visitStmt(cast<ForNumStmt>(S)->Body);
      return;
    default:
      return;
    }
  }

private:
  void rewrite(TerraExpr *&Cond) {
    auto It = Facts.ConstCond.find(Cond);
    if (It == Facts.ConstCond.end())
      return;
    auto *L = Ctx.make<LitExpr>(Cond->loc());
    L->LK = LitExpr::LK_Bool;
    L->BoolVal = It->second;
    L->LitTy = Ctx.types().boolType();
    L->Ty = L->LitTy;
    Cond = L;
  }

  TerraContext &Ctx;
  const analysis::FactTable &Facts;
};

} // namespace

void terracpp::runMidendPasses(TerraContext &Ctx, TerraFunction *F) {
  if (!F->Body)
    return;
  if (F->RangeFacts && !F->RangeFacts->ConstCond.empty()) {
    FactCondFolder FC(Ctx, *F->RangeFacts);
    FC.visitStmt(F->Body);
  }
  Folder Fo(Ctx);
  Fo.foldBlock(F->Body);
}

bool terracpp::verifyFunction(DiagnosticEngine &Diags, TerraFunction *F) {
  if (!F->Body)
    return true; // Extern / host wrapper.
  Verifier V(Diags);
  V.visitStmt(F->Body);

  // After midend cleanup no nonempty block may be unreachable: the folder
  // removes statements after terminators and resolves constant branches, so
  // anything left unreachable indicates a pass bug that would confuse the
  // backends (and the dataflow solver, which ignores dead blocks).
  if (V.OK) {
    if (std::unique_ptr<analysis::CFG> G = analysis::CFG::build(F)) {
      const std::vector<bool> &Reach = G->reachableFromEntry();
      for (const analysis::CFGBlock &B : G->blocks())
        if (!B.empty() && !Reach[B.Id])
          V.require(false, B.Elems.front().loc(),
                    "unreachable code survived midend cleanup");
    }
  }
  return V.OK;
}
