#include "core/TerraCompiler.h"

#include "analysis/Analysis.h"
#include "core/CBackend.h"
#include "core/LuaInterp.h"
#include "core/TerraBaselineJIT.h"
#include "core/TerraBytecode.h"
#include "core/TerraInterpBackend.h"
#include "core/TerraVM.h"
#include "core/TerraPasses.h"
#include "core/TerraType.h"
#include "support/Telemetry.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cstring>
#include <set>

using namespace terracpp;
using namespace terracpp::lua;

//===----------------------------------------------------------------------===//
// Trampoline for host-closure wrappers in generated code
//===----------------------------------------------------------------------===//

extern "C" void terracpp_hostcall_trampoline(void *Ctx, uint64_t ClosureId,
                                             void **Args, void *Ret) {
  auto *Compiler = static_cast<TerraCompiler *>(Ctx);
  if (!Compiler->invokeHostClosure(ClosureId, Args, Ret)) {
    fprintf(stderr, "terracpp: host callback %llu failed (see diagnostics); "
                    "returning zeroes\n",
            static_cast<unsigned long long>(ClosureId));
  }
}

//===----------------------------------------------------------------------===//
// TerraCompiler
//===----------------------------------------------------------------------===//

TerraCompiler::TerraCompiler(TerraContext &Ctx, Interp &I, BackendKind Backend,
                             TierPolicy Tier)
    : Ctx(Ctx), I(I), Backend(Backend), Tier(Tier), TC(Ctx, I),
      JIT(Ctx.diags()),
      AnalyzeLints(analysis::AnalyzeOptions::lintsEnabledFromEnv()) {
  if (Backend == BackendKind::Native && Tier == TierPolicy::Auto)
    Tiers = std::make_unique<TierManager>(JIT);
  if (Backend == BackendKind::Interp || Tiers)
    InterpBackend = std::make_unique<TerraInterpBackend>(Ctx, *this);
  // Baseline JIT (tier 0.5): on by default wherever bytecode runs, off when
  // the user forces a specific interpreter engine (TERRACPP_INTERP=vm/tree),
  // pins tier 0 (TERRACPP_JIT_TIER=0), or disables it outright.
  if (InterpBackend && BaselineJIT::supported() &&
      BaselineJIT::enabledFromEnv()) {
    const char *IM = std::getenv("TERRACPP_INTERP");
    const char *JT = std::getenv("TERRACPP_JIT_TIER");
    bool ForcedInterp =
        IM && *IM && (std::string(IM) == "vm" || std::string(IM) == "tree");
    bool PinnedTier0 = JT && std::string(JT) == "0";
    if (!ForcedInterp && !PinnedTier0)
      Baseline = std::make_unique<BaselineJIT>(JIT.metrics());
  }
}

bool TerraCompiler::analyzeComponent(
    const std::vector<TerraFunction *> &Component) {
  analysis::AnalyzeOptions Opts;
  Opts.Lints = AnalyzeLints;
  Opts.Werror = AnalyzeWerror;
  // The component is the transitive callee closure of the entry point, so
  // the interprocedural pass sees every summary it can use. Failing
  // functions are flipped to SK_Error inside.
  analysis::AnalysisReport R =
      analysis::analyzeComponent(Ctx.diags(), Component, Opts);
  return !R.Failed;
}

TerraCompiler::~TerraCompiler() = default;

void TerraCompiler::collectComponent(TerraFunction *F,
                                     std::vector<TerraFunction *> &Component) {
  // Under Auto, a tier-0 function (Entry installed, no native address yet)
  // must be re-emitted into dependent modules; only a real RawPtr can be
  // baked as a callee address.
  bool AlreadyUsable = Tiers ? F->RawPtr != nullptr : F->isCompiled();
  if (AlreadyUsable)
    return;
  if (std::find(Component.begin(), Component.end(), F) != Component.end())
    return;
  if (F->IsExtern)
    return; // Dispatched directly; never emitted.
  Component.push_back(F);
  for (TerraFunction *Callee : F->Callees)
    collectComponent(Callee, Component);
}

bool TerraCompiler::ensureCompiled(TerraFunction *F) {
  if (F->isCompiled())
    return true;
  if (F->IsExtern) {
    // Externs execute through their native address; synthesize an entry.
    Ctx.diags().error(SourceLoc(),
                      "extern function '" + F->Name +
                          "' cannot be called directly from the host");
    return false;
  }
  {
    Timer T;
    bool OK = TC.check(F);
    Timing.TypecheckSeconds += T.seconds();
    if (!OK)
      return false;
  }

  std::vector<TerraFunction *> Component;
  collectComponent(F, Component);
  if (!analyzeComponent(Component))
    return false;
  for (TerraFunction *Fn : Component) {
    if (Fn->HostClosure)
      continue;
    runMidendPasses(Ctx, Fn);
    if (!verifyFunction(Ctx.diags(), Fn))
      return false;
  }

  if (Backend == BackendKind::Interp) {
    for (TerraFunction *Fn : Component)
      if (!InterpBackend->prepare(Fn))
        return false;
    Timing.FunctionsCompiled += Component.size();
    return true;
  }

  Timer T;
  CBackend CB(Ctx);
  std::string Source;
  {
    trace::TraceSpan Span("codegen", "backend");
    Span.arg("fn", F->Name);
    telemetry::ScopedTimerUs CodegenT(
        telemetry::Registry::global().histogram("frontend.codegen_us"));
    Source = CB.emitModule(Component, this);
  }
  if (Source.empty())
    return false;
  if (Tiers) {
    // Tiered execution: no C compiler on the critical path. Park the
    // generated module for background promotion and start on the VM now.
    installTier0(std::move(Source), !CB.lastModuleBakedAddresses(),
                 Component);
    Timing.CodegenSeconds += T.seconds();
    ++Timing.ModulesCompiled;
    Timing.FunctionsCompiled += Component.size();
    return true;
  }
  bool OK = JIT.addModule(Source, Component, !CB.lastModuleBakedAddresses());
  Timing.CodegenSeconds += T.seconds();
  if (OK) {
    ++Timing.ModulesCompiled;
    Timing.FunctionsCompiled += Component.size();
  }
  return OK;
}

void TerraCompiler::installTier0(std::string Source, bool Cacheable,
                                 const std::vector<TerraFunction *> &Component) {
  Tiers->registerComponent(std::move(Source), Cacheable, Component);
  for (TerraFunction *Fn : Component) {
    if (!Fn->Bytecode && !Fn->HostClosure)
      Fn->Bytecode = bytecode::compile(Ctx, Fn);
    if (Fn->Entry || !Fn->Tier)
      continue; // dispatcher already installed, or pre-tiering native code
    std::shared_ptr<TierState> TS = Fn->Tier;
    TerraCompiler *Self = this;
    TerraFunction *FnP = Fn;
    Fn->Entry = [Self, FnP, TS](void **Args, void *Ret) {
      // Acquire pairs with the promotion job's release store: a non-null
      // entry implies the dlopen'd code behind it is fully visible.
      if (void *NE = TS->NativeEntry.load(std::memory_order_acquire)) {
        Self->LastCallTier.store(1, std::memory_order_relaxed);
        Self->Tiers->noteTier1Call();
        reinterpret_cast<void (*)(void **, void *)>(NE)(Args, Ret);
        return;
      }
      // Tier 0.5: baseline machine code from the first dispatch on. Still
      // counts as a pre-native call so promotion thresholds keep firing.
      if (Self->Baseline) {
        if (BaselineJIT::Fn BE = Self->Baseline->entryFor(FnP)) {
          Self->LastCallTier.store(2, std::memory_order_relaxed);
          Self->Tiers->noteBaselineCall(*TS);
          vm::ExecEnv Env(Self->Ctx, *Self);
          // Recursion through tiered callees re-enters this thunk with a
          // fresh Env each hop; the thread-shared depth scope is what
          // bounds the native stack those baseline frames grow.
          vm::CallDepthScope DepthScope(BaselineJIT::depthUnits(FnP));
          if (DepthScope.exceeded()) {
            vm::failStackOverflow(Env);
            return;
          }
          uint64_t Edges = BE(Args, Ret, &Env);
          Self->Tiers->noteBackEdges(*TS, Edges + Env.BackEdges);
          return;
        }
      }
      Self->LastCallTier.store(0, std::memory_order_relaxed);
      Self->Tiers->noteTier0Call(*TS);
      uint64_t BackEdges = 0;
      Self->InterpBackend->execute(FnP, Args, Ret, &BackEdges);
      Self->Tiers->noteBackEdges(*TS, BackEdges);
    };
  }
}

void *TerraCompiler::nativePointer(TerraFunction *F) {
  if (F->RawPtr)
    return F->RawPtr;
  if (!ensureCompiled(F))
    return nullptr;
  if (F->RawPtr || !Tiers || !F->Tier)
    return F->RawPtr;
  // Tier-0 handle: force native code. The background job may already have
  // landed it (or be mid-flight, in which case forceNative waits).
  if (void *Raw = F->Tier->NativeRaw.load(std::memory_order_acquire)) {
    F->RawPtr = Raw;
    RawToFn[Raw] = F;
    return Raw;
  }
  std::shared_ptr<PendingComponent> C = std::atomic_load(&F->Tier->Component);
  if (!C)
    return nullptr;
  if (!Tiers->forceNative(*C)) {
    std::string Err;
    {
      std::lock_guard<std::mutex> Lock(C->M);
      Err = C->Error;
    }
    Ctx.diags().error(SourceLoc(),
                      Err.empty() ? "tier promotion failed for function '" +
                                        F->Name + "'"
                                  : Err);
    return nullptr;
  }
  // Publish RawPtr for everything that landed with this component (main
  // thread only; background jobs never write RawPtr).
  for (const PendingComponent::Slot &S : C->Slots) {
    if (!S.Fn->RawPtr)
      S.Fn->RawPtr = S.TS->NativeRaw.load(std::memory_order_acquire);
    if (S.Fn->RawPtr)
      RawToFn[S.Fn->RawPtr] = S.Fn;
  }
  if (!F->RawPtr)
    F->RawPtr = F->Tier->NativeRaw.load(std::memory_order_acquire);
  if (F->RawPtr)
    RawToFn[F->RawPtr] = F;
  return F->RawPtr;
}

bool TerraCompiler::compileAll(const std::vector<TerraFunction *> &Roots) {
  if (Backend == BackendKind::Interp || Tiers) {
    // Interp: nothing to batch. Auto: ensureCompiled is already cheap (no
    // C compiler on the critical path); promotion parallelism happens in
    // the background worker instead of an addModules batch.
    bool AllOK = true;
    for (TerraFunction *F : Roots)
      if (F)
        AllOK &= ensureCompiled(F);
    return AllOK;
  }

  // Frontend (typecheck + midend + codegen) is single-threaded; only the
  // C-compiler invocations parallelize. Components staged for an earlier
  // root are not re-emitted for a later one.
  std::set<TerraFunction *> Staged;
  std::vector<JITEngine::ModuleJob> Jobs;
  bool AllOK = true;
  for (TerraFunction *F : Roots) {
    if (!F || F->isCompiled() || Staged.count(F))
      continue;
    if (F->IsExtern) {
      Ctx.diags().error(SourceLoc(),
                        "extern function '" + F->Name +
                            "' cannot be called directly from the host");
      AllOK = false;
      continue;
    }
    {
      Timer T;
      bool OK = TC.check(F);
      Timing.TypecheckSeconds += T.seconds();
      if (!OK) {
        AllOK = false;
        continue;
      }
    }
    // The full component is emitted even when it overlaps an earlier
    // staged-but-not-yet-compiled one: a module may only reference
    // functions it defines or whose address is already known, and nothing
    // in this batch has an address yet. Duplicate definitions across
    // modules are benign under RTLD_LOCAL (the last load wins RawPtr).
    std::vector<TerraFunction *> Component;
    collectComponent(F, Component);
    if (Component.empty())
      continue;
    if (!analyzeComponent(Component)) {
      AllOK = false;
      continue;
    }

    bool ComponentOK = true;
    for (TerraFunction *Fn : Component) {
      if (Fn->HostClosure)
        continue;
      runMidendPasses(Ctx, Fn);
      if (!verifyFunction(Ctx.diags(), Fn)) {
        ComponentOK = false;
        break;
      }
    }
    if (!ComponentOK) {
      AllOK = false;
      continue;
    }

    Timer T;
    CBackend CB(Ctx);
    std::string Source;
    {
      trace::TraceSpan Span("codegen", "backend");
      Span.arg("fn", F->Name);
      telemetry::ScopedTimerUs CodegenT(
          telemetry::Registry::global().histogram("frontend.codegen_us"));
      Source = CB.emitModule(Component, this);
    }
    Timing.CodegenSeconds += T.seconds();
    if (Source.empty()) {
      AllOK = false;
      continue;
    }
    for (TerraFunction *Fn : Component)
      Staged.insert(Fn);
    Jobs.push_back({std::move(Source), std::move(Component),
                    !CB.lastModuleBakedAddresses()});
  }

  if (Jobs.empty())
    return AllOK;
  unsigned ModulesBefore = JIT.stats().ModulesLoaded;
  bool JITOK = JIT.addModules(std::move(Jobs));
  Timing.ModulesCompiled += JIT.stats().ModulesLoaded - ModulesBefore;
  // Per-function success is observable via RawPtr; count what landed.
  for (TerraFunction *Fn : Staged)
    if (Fn->isCompiled())
      ++Timing.FunctionsCompiled;
  return AllOK && JITOK;
}

//===----------------------------------------------------------------------===//
// FFI marshalling (paper §4.2)
//===----------------------------------------------------------------------===//

bool TerraCompiler::marshalValue(const Value &V, Type *Ty, void *Dst,
                                 SourceLoc Loc) {
  DiagnosticEngine &D = Ctx.diags();
  auto Err = [&](const std::string &Msg) {
    D.error(Loc, "FFI: " + Msg);
    return false;
  };

  if (const auto *P = dyn_cast<PrimType>(Ty)) {
    if (P->primKind() == PrimType::Bool) {
      if (!V.isBool())
        return Err(std::string("expected boolean, got ") + V.typeName());
      *static_cast<uint8_t *>(Dst) = V.asBool() ? 1 : 0;
      return true;
    }
    if (!V.isNumber())
      return Err(std::string("expected number for ") + Ty->str() + ", got " +
                 V.typeName());
    double N = V.asNumber();
    switch (P->primKind()) {
    case PrimType::Int8:
      *static_cast<int8_t *>(Dst) = static_cast<int8_t>(N);
      return true;
    case PrimType::Int16:
      *static_cast<int16_t *>(Dst) = static_cast<int16_t>(N);
      return true;
    case PrimType::Int32:
      *static_cast<int32_t *>(Dst) = static_cast<int32_t>(N);
      return true;
    case PrimType::Int64:
      *static_cast<int64_t *>(Dst) = static_cast<int64_t>(N);
      return true;
    case PrimType::UInt8:
      *static_cast<uint8_t *>(Dst) = static_cast<uint8_t>(N);
      return true;
    case PrimType::UInt16:
      *static_cast<uint16_t *>(Dst) = static_cast<uint16_t>(N);
      return true;
    case PrimType::UInt32:
      *static_cast<uint32_t *>(Dst) = static_cast<uint32_t>(N);
      return true;
    case PrimType::UInt64:
      *static_cast<uint64_t *>(Dst) = static_cast<uint64_t>(N);
      return true;
    case PrimType::Float32:
      *static_cast<float *>(Dst) = static_cast<float>(N);
      return true;
    case PrimType::Float64:
      *static_cast<double *>(Dst) = N;
      return true;
    default:
      return Err("cannot pass a value of type " + Ty->str());
    }
  }

  if (const auto *PT = dyn_cast<PointerType>(Ty)) {
    if (V.isString()) {
      // Strings convert to rawstring; the bytes are interned so the pointer
      // stays valid for the lifetime of the context.
      const char *Data = Ctx.internStringData(V.asString());
      *static_cast<const void **>(Dst) = Data;
      return true;
    }
    if (V.isCData()) {
      CData *CD = V.asCData();
      if (CD->Ty->isPointer()) {
        *static_cast<void **>(Dst) = CD->pointerValue();
        return true;
      }
      // Array cdata decays to a pointer to its first element (as in C and
      // the LuaJIT FFI).
      if (auto *AT = dyn_cast<ArrayType>(CD->Ty)) {
        if (AT->element() == PT->pointee() ||
            PT->pointee() == Ctx.types().uint8()) {
          *static_cast<void **>(Dst) = CD->Bytes.data();
          return true;
        }
        return Err("array cdata element type mismatch: " + CD->Ty->str() +
                   " vs " + Ty->str());
      }
      return Err("cdata is not a pointer");
    }
    if (V.isNil()) {
      *static_cast<void **>(Dst) = nullptr;
      return true;
    }
    if (V.isTerraFn() && PT->pointee()->isFunction()) {
      TerraFunction *Fn = V.asTerraFn();
      // Native code receives a machine address; under tiering this forces
      // promotion (a tier-0 handle must never escape as a pointer).
      void *Raw = nativePointer(Fn);
      if (!Raw)
        return false;
      *static_cast<void **>(Dst) = Raw;
      return true;
    }
    return Err(std::string("cannot convert ") + V.typeName() + " to " +
               Ty->str());
  }

  if (Ty->isFunction()) {
    if (V.isTerraFn()) {
      TerraFunction *Fn = V.asTerraFn();
      void *Raw = nativePointer(Fn);
      if (!Raw)
        return false;
      *static_cast<void **>(Dst) = Raw;
      return true;
    }
    return Err("expected a terra function");
  }

  if (auto *ST = dyn_cast<StructType>(Ty)) {
    if (!TC.completeStruct(ST, Loc))
      return false;
    if (V.isCData()) {
      CData *CD = V.asCData();
      if (CD->Ty != Ty)
        return Err("cdata type mismatch: " + CD->Ty->str() + " vs " +
                   Ty->str());
      memcpy(Dst, CD->Bytes.data(), Ty->size());
      return true;
    }
    if (V.isTable()) {
      // Tables convert to structs when they contain the required fields
      // (paper §4.2).
      memset(Dst, 0, Ty->size());
      for (const StructField &F : ST->fields()) {
        Value FieldV = V.asTable()->getStr(F.Name);
        if (FieldV.isNil())
          continue; // Missing fields zero-fill.
        if (!marshalValue(FieldV, F.FieldType,
                          static_cast<uint8_t *>(Dst) + F.Offset, Loc))
          return false;
      }
      return true;
    }
    return Err(std::string("cannot convert ") + V.typeName() + " to struct " +
               ST->name());
  }

  if (auto *AT = dyn_cast<ArrayType>(Ty)) {
    if (V.isTable()) {
      Table *T = V.asTable();
      memset(Dst, 0, Ty->size());
      uint64_t N = std::min<uint64_t>(AT->length(),
                                      static_cast<uint64_t>(T->arrayLength()));
      for (uint64_t I2 = 0; I2 < N; ++I2)
        if (!marshalValue(T->getInt(static_cast<int64_t>(I2 + 1)),
                          AT->element(),
                          static_cast<uint8_t *>(Dst) +
                              I2 * AT->element()->size(),
                          Loc))
          return false;
      return true;
    }
    return Err("cannot convert to array type");
  }

  if (auto *VT = dyn_cast<VectorType>(Ty)) {
    if (V.isNumber()) {
      for (uint64_t I2 = 0; I2 < VT->length(); ++I2)
        if (!marshalValue(V, VT->element(),
                          static_cast<uint8_t *>(Dst) +
                              I2 * VT->element()->size(),
                          Loc))
          return false;
      return true;
    }
    return Err("cannot convert to vector type");
  }

  return Err("unsupported FFI type " + Ty->str());
}

Value TerraCompiler::unmarshalValue(Type *Ty, const void *Src) {
  if (const auto *P = dyn_cast<PrimType>(Ty)) {
    switch (P->primKind()) {
    case PrimType::Void:
      return Value::nil();
    case PrimType::Bool:
      return Value::boolean(*static_cast<const uint8_t *>(Src) != 0);
    case PrimType::Int8:
      return Value::number(*static_cast<const int8_t *>(Src));
    case PrimType::Int16:
      return Value::number(*static_cast<const int16_t *>(Src));
    case PrimType::Int32:
      return Value::number(*static_cast<const int32_t *>(Src));
    case PrimType::Int64:
      return Value::number(
          static_cast<double>(*static_cast<const int64_t *>(Src)));
    case PrimType::UInt8:
      return Value::number(*static_cast<const uint8_t *>(Src));
    case PrimType::UInt16:
      return Value::number(*static_cast<const uint16_t *>(Src));
    case PrimType::UInt32:
      return Value::number(*static_cast<const uint32_t *>(Src));
    case PrimType::UInt64:
      return Value::number(
          static_cast<double>(*static_cast<const uint64_t *>(Src)));
    case PrimType::Float32:
      return Value::number(*static_cast<const float *>(Src));
    case PrimType::Float64:
      return Value::number(*static_cast<const double *>(Src));
    }
  }
  // Pointers, structs, arrays, vectors come back as typed cdata.
  auto CD = std::make_shared<CData>();
  CD->Ty = Ty;
  CD->Bytes.assign(static_cast<const uint8_t *>(Src),
                   static_cast<const uint8_t *>(Src) + Ty->size());
  return Value::cdata(std::move(CD));
}

bool TerraCompiler::callFromHost(TerraFunction *F, std::vector<Value> &Args,
                                 std::vector<Value> &Results, SourceLoc Loc) {
  if (!ensureCompiled(F))
    return false;
  FunctionType *FnTy = F->FnTy;
  if (Args.size() != FnTy->params().size()) {
    Ctx.diags().error(Loc, "terra function '" + F->Name + "' expects " +
                               std::to_string(FnTy->params().size()) +
                               " arguments, got " +
                               std::to_string(Args.size()));
    return false;
  }
  // Marshal arguments into aligned slots.
  std::vector<std::vector<uint8_t>> Slots;
  std::vector<void *> ArgPtrs;
  Slots.reserve(Args.size());
  for (size_t I2 = 0; I2 != Args.size(); ++I2) {
    Type *PT = FnTy->params()[I2];
    Slots.emplace_back(std::max<size_t>(PT->size(), 8) + 32, 0);
    uintptr_t P = reinterpret_cast<uintptr_t>(Slots.back().data());
    uintptr_t Aligned = (P + 31) & ~static_cast<uintptr_t>(31);
    void *Slot = reinterpret_cast<void *>(Aligned);
    if (!marshalValue(Args[I2], PT, Slot, Loc))
      return false;
    ArgPtrs.push_back(Slot);
  }
  Type *R = FnTy->result();
  std::vector<uint8_t> RetSlot(std::max<uint64_t>(R->isVoid() ? 0 : R->size(),
                                                  8) +
                               32);
  uintptr_t RP = reinterpret_cast<uintptr_t>(RetSlot.data());
  void *Ret = reinterpret_cast<void *>((RP + 31) & ~static_cast<uintptr_t>(31));

  // Under Auto the tiered dispatcher overwrites this with the tier it
  // actually took; otherwise the backend choice is the tier.
  LastCallTier.store(Backend == BackendKind::Interp ? 0 : 1,
                     std::memory_order_relaxed);
  // A runtime trap on the interpreted tiers (division by zero, nil deref)
  // surfaces as a new diagnostic rather than a return code — the entry
  // thunk signature is shared with native code, which has none.
  unsigned ErrsBefore = Ctx.diags().errorCount();
  F->Entry(ArgPtrs.data(), Ret);
  if (Ctx.diags().errorCount() != ErrsBefore)
    return false;

  if (!R->isVoid())
    Results.push_back(unmarshalValue(R, Ret));
  return true;
}

//===----------------------------------------------------------------------===//
// Host closures and externs
//===----------------------------------------------------------------------===//

TerraFunction *TerraCompiler::wrapHostClosure(std::shared_ptr<Closure> C,
                                              FunctionType *FnTy,
                                              std::string Name) {
  TerraFunction *F = Ctx.createFunction(std::move(Name));
  F->HostClosure = C;
  F->HostClosureId = NextHostClosureId++;
  F->FnTy = FnTy;
  F->State = TerraFunction::SK_Checked;
  // Synthesize parameter symbols so codegen has names/types.
  std::vector<TerraSymbol *> Params;
  for (size_t I2 = 0; I2 != FnTy->params().size(); ++I2)
    Params.push_back(Ctx.freshSymbol(Ctx.intern("a" + std::to_string(I2)),
                                     FnTy->params()[I2]));
  F->Params = Ctx.copyArray(Params);
  F->NumParams = Params.size();
  F->RetTy = TypeRef::fromType(FnTy->result());
  HostClosures[F->HostClosureId] = {std::move(C), FnTy};
  return F;
}

TerraFunction *TerraCompiler::createExtern(std::string Name, FunctionType *FnTy,
                                           std::string Header, void *Addr) {
  TerraFunction *F = Ctx.createFunction(Name);
  F->IsExtern = true;
  F->ExternName = std::move(Name);
  F->ExternHeader = std::move(Header);
  F->ExternAddr = Addr;
  F->FnTy = FnTy;
  F->State = TerraFunction::SK_Checked;
  F->RetTy = TypeRef::fromType(FnTy->result());
  return F;
}

bool TerraCompiler::invokeHostClosure(uint64_t Id, void **Args, void *Ret) {
  auto It = HostClosures.find(Id);
  if (It == HostClosures.end())
    return false;
  const HostClosureInfo &Info = It->second;
  std::vector<Value> HostArgs;
  for (size_t I2 = 0; I2 != Info.FnTy->params().size(); ++I2)
    HostArgs.push_back(unmarshalValue(Info.FnTy->params()[I2], Args[I2]));
  std::vector<Value> Results;
  if (!I.call(Value::closure(Info.Closure), std::move(HostArgs), Results,
              SourceLoc()))
    return false;
  Type *R = Info.FnTy->result();
  if (R->isVoid())
    return true;
  if (Results.empty()) {
    memset(Ret, 0, R->size());
    return true;
  }
  return marshalValue(Results[0], R, Ret, SourceLoc());
}

//===----------------------------------------------------------------------===//
// saveobj
//===----------------------------------------------------------------------===//

/// Collects the full transitive component regardless of compilation state —
/// a saved module must be self-contained (no baked in-process addresses).
static void collectForSave(TerraFunction *F,
                           std::vector<TerraFunction *> &Out) {
  if (F->IsExtern)
    return;
  if (std::find(Out.begin(), Out.end(), F) != Out.end())
    return;
  Out.push_back(F);
  for (TerraFunction *Callee : F->Callees)
    collectForSave(Callee, Out);
}

bool TerraCompiler::saveObject(
    const std::string &Path,
    const std::vector<std::pair<std::string, TerraFunction *>> &Exports) {
  std::vector<TerraFunction *> Component;
  std::map<const TerraFunction *, std::string> ExportNames;
  for (const auto &E : Exports) {
    TerraFunction *F = E.second;
    Timer T;
    bool OK = TC.check(F);
    Timing.TypecheckSeconds += T.seconds();
    if (!OK)
      return false;
    collectForSave(F, Component);
    ExportNames[F] = E.first;
  }
  if (!analyzeComponent(Component))
    return false;
  for (TerraFunction *Fn : Component) {
    if (Fn->HostClosure)
      continue; // emitModule reports the error with context.
    runMidendPasses(Ctx, Fn);
    if (!verifyFunction(Ctx.diags(), Fn))
      return false;
  }
  CBackend CB(Ctx);
  std::string Source = CB.emitModule(Component, this, /*Standalone=*/true,
                                     &ExportNames);
  if (Source.empty())
    return false;
  return JIT.saveObject(Path, Source);
}
