#include "core/TerraPrint.h"

#include "core/TerraType.h"

#include <sstream>

using namespace terracpp;

namespace {

std::string symName(const TerraSymbol *S) {
  if (!S)
    return "<unbound>";
  return *S->Name + "$" + std::to_string(S->Id);
}

const char *binOpSpelling(BinOpKind Op) {
  switch (Op) {
  case BinOpKind::Add:
    return "+";
  case BinOpKind::Sub:
    return "-";
  case BinOpKind::Mul:
    return "*";
  case BinOpKind::Div:
    return "/";
  case BinOpKind::Mod:
    return "%";
  case BinOpKind::Shl:
    return "<<";
  case BinOpKind::Shr:
    return ">>";
  case BinOpKind::Lt:
    return "<";
  case BinOpKind::Le:
    return "<=";
  case BinOpKind::Gt:
    return ">";
  case BinOpKind::Ge:
    return ">=";
  case BinOpKind::Eq:
    return "==";
  case BinOpKind::Ne:
    return "~=";
  case BinOpKind::And:
    return "and";
  case BinOpKind::Or:
    return "or";
  }
  return "?";
}

std::string ind(unsigned N) { return std::string(N * 2, ' '); }

} // namespace

std::string terracpp::printExpr(const TerraExpr *E) {
  if (!E)
    return "<null>";
  switch (E->kind()) {
  case TerraNode::NK_Lit: {
    const auto *L = cast<LitExpr>(E);
    switch (L->LK) {
    case LitExpr::LK_Int:
      return std::to_string(L->IntVal);
    case LitExpr::LK_Float: {
      std::ostringstream OS;
      OS << L->FloatVal;
      std::string S = OS.str();
      if (S.find('.') == std::string::npos &&
          S.find('e') == std::string::npos)
        S += ".0";
      if (L->LitTy && L->LitTy->size() == 4)
        S += "f";
      return S;
    }
    case LitExpr::LK_Bool:
      return L->BoolVal ? "true" : "false";
    case LitExpr::LK_String: {
      std::string S = "\"";
      for (char C : *L->StrVal)
        S += C == '"' ? std::string("\\\"")
                      : (C == '\n' ? std::string("\\n") : std::string(1, C));
      return S + "\"";
    }
    case LitExpr::LK_Pointer:
      return L->PtrVal ? "<ptr>" : "nil";
    }
    return "?";
  }
  case TerraNode::NK_Var:
    return symName(cast<VarExpr>(E)->Sym);
  case TerraNode::NK_Escape:
    return "[<escape>]";
  case TerraNode::NK_Select:
    return printExpr(cast<SelectExpr>(E)->Base) + "." +
           *cast<SelectExpr>(E)->Field;
  case TerraNode::NK_Apply: {
    const auto *A = cast<ApplyExpr>(E);
    std::string S = printExpr(A->Callee) + "(";
    for (unsigned I = 0; I != A->NumArgs; ++I) {
      if (I)
        S += ", ";
      S += printExpr(A->Args[I]);
    }
    return S + ")";
  }
  case TerraNode::NK_MethodCall: {
    const auto *M = cast<MethodCallExpr>(E);
    std::string S = printExpr(M->Obj) + ":" + *M->Method + "(";
    for (unsigned I = 0; I != M->NumArgs; ++I) {
      if (I)
        S += ", ";
      S += printExpr(M->Args[I]);
    }
    return S + ")";
  }
  case TerraNode::NK_BinOp: {
    const auto *B = cast<BinOpExpr>(E);
    return "(" + printExpr(B->LHS) + " " + binOpSpelling(B->Op) + " " +
           printExpr(B->RHS) + ")";
  }
  case TerraNode::NK_UnOp: {
    const auto *U = cast<UnOpExpr>(E);
    const char *Op = U->Op == UnOpKind::Neg      ? "-"
                     : U->Op == UnOpKind::Not    ? "not "
                     : U->Op == UnOpKind::Deref  ? "@"
                                                 : "&";
    return std::string(Op) + printExpr(U->Operand);
  }
  case TerraNode::NK_Index:
    return printExpr(cast<IndexExpr>(E)->Base) + "[" +
           printExpr(cast<IndexExpr>(E)->Idx) + "]";
  case TerraNode::NK_Constructor: {
    const auto *C = cast<ConstructorExpr>(E);
    std::string S =
        (C->TyRef.Resolved ? C->TyRef.Resolved->str() : "<type>") + " { ";
    for (unsigned I = 0; I != C->NumInits; ++I) {
      if (I)
        S += ", ";
      if (C->FieldNames && C->FieldNames[I])
        S += *C->FieldNames[I] + " = ";
      S += printExpr(C->Inits[I]);
    }
    return S + " }";
  }
  case TerraNode::NK_Cast: {
    const auto *C = cast<CastExpr>(E);
    if (C->Implicit)
      return printExpr(C->Operand); // Keep implicit conversions quiet.
    return "[" + (C->TyRef.Resolved ? C->TyRef.Resolved->str() : "?") + "](" +
           printExpr(C->Operand) + ")";
  }
  case TerraNode::NK_FuncLit:
    return cast<FuncLitExpr>(E)->Fn->Name;
  case TerraNode::NK_GlobalRef:
    return "@global:" + cast<GlobalRefExpr>(E)->Global->Name;
  case TerraNode::NK_Intrinsic: {
    const auto *N = cast<IntrinsicExpr>(E);
    if (N->IK == IntrinsicKind::Sizeof)
      return "sizeof(" +
             (N->TyRef.Resolved ? N->TyRef.Resolved->str() : "?") + ")";
    std::string S = "prefetch(";
    for (unsigned I = 0; I != N->NumArgs; ++I) {
      if (I)
        S += ", ";
      S += printExpr(N->Args[I]);
    }
    return S + ")";
  }
  default:
    return "<expr>";
  }
}

std::string terracpp::printStmt(const TerraStmt *S, unsigned Indent) {
  std::ostringstream OS;
  switch (S->kind()) {
  case TerraNode::NK_Block: {
    const auto *B = cast<BlockStmt>(S);
    for (unsigned I = 0; I != B->NumStmts; ++I)
      OS << printStmt(B->Stmts[I], Indent);
    return OS.str();
  }
  case TerraNode::NK_VarDecl: {
    const auto *D = cast<VarDeclStmt>(S);
    OS << ind(Indent) << "var ";
    for (unsigned I = 0; I != D->NumNames; ++I) {
      if (I)
        OS << ", ";
      OS << symName(D->Names[I].Sym);
      if (D->Names[I].Sym && D->Names[I].Sym->DeclaredType)
        OS << " : " << D->Names[I].Sym->DeclaredType->str();
    }
    if (D->NumInits) {
      OS << " = ";
      for (unsigned I = 0; I != D->NumInits; ++I) {
        if (I)
          OS << ", ";
        OS << printExpr(D->Inits[I]);
      }
    }
    OS << "\n";
    return OS.str();
  }
  case TerraNode::NK_Assign: {
    const auto *A = cast<AssignStmt>(S);
    OS << ind(Indent);
    for (unsigned I = 0; I != A->NumLHS; ++I)
      OS << (I ? ", " : "") << printExpr(A->LHS[I]);
    OS << " = ";
    for (unsigned I = 0; I != A->NumRHS; ++I)
      OS << (I ? ", " : "") << printExpr(A->RHS[I]);
    OS << "\n";
    return OS.str();
  }
  case TerraNode::NK_If: {
    const auto *I2 = cast<IfStmt>(S);
    for (unsigned K = 0; K != I2->NumClauses; ++K) {
      OS << ind(Indent) << (K ? "elseif " : "if ")
         << printExpr(I2->Conds[K]) << " then\n"
         << printStmt(I2->Blocks[K], Indent + 1);
    }
    if (I2->ElseBlock)
      OS << ind(Indent) << "else\n" << printStmt(I2->ElseBlock, Indent + 1);
    OS << ind(Indent) << "end\n";
    return OS.str();
  }
  case TerraNode::NK_While: {
    const auto *W = cast<WhileStmt>(S);
    OS << ind(Indent) << "while " << printExpr(W->Cond) << " do\n"
       << printStmt(W->Body, Indent + 1) << ind(Indent) << "end\n";
    return OS.str();
  }
  case TerraNode::NK_ForNum: {
    const auto *F = cast<ForNumStmt>(S);
    OS << ind(Indent) << "for " << symName(F->Var.Sym) << " = "
       << printExpr(F->Lo) << ", " << printExpr(F->Hi);
    if (F->Step)
      OS << ", " << printExpr(F->Step);
    OS << " do\n" << printStmt(F->Body, Indent + 1) << ind(Indent) << "end\n";
    return OS.str();
  }
  case TerraNode::NK_Return: {
    const auto *R = cast<ReturnStmt>(S);
    OS << ind(Indent) << "return";
    if (R->Val)
      OS << " " << printExpr(R->Val);
    OS << "\n";
    return OS.str();
  }
  case TerraNode::NK_Break:
    return ind(Indent) + "break\n";
  case TerraNode::NK_ExprStmt:
    return ind(Indent) + printExpr(cast<ExprStmt>(S)->E) + "\n";
  case TerraNode::NK_EscapeStmt:
    return ind(Indent) + "[<escape>]\n";
  default:
    return ind(Indent) + "<stmt>\n";
  }
}

std::string terracpp::printFunction(const TerraFunction *F) {
  std::ostringstream OS;
  OS << "terra " << F->Name << "(";
  for (unsigned I = 0; I != F->NumParams; ++I) {
    if (I)
      OS << ", ";
    OS << symName(F->Params[I]);
    if (F->Params[I]->DeclaredType)
      OS << " : " << F->Params[I]->DeclaredType->str();
  }
  OS << ")";
  if (F->RetTy.Resolved)
    OS << " : " << F->RetTy.Resolved->str();
  OS << "\n";
  if (F->Body)
    OS << printStmt(F->Body, 1);
  else
    OS << "  <declared>\n";
  OS << "end\n";
  return OS.str();
}
