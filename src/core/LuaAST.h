//===- LuaAST.h - Host-language abstract syntax -----------------*- C++ -*-===//
//
// AST for the Luna host language (the Lua role in the paper). Terra
// constructs appear as host expressions: a `terra` literal, a quotation, or
// a struct declaration — each carrying an unspecialized Terra subtree that
// the interpreter hands to the Specializer when the expression is evaluated
// (the paper's "preprocessor replaces Terra function text with a call to
// specialize the Terra function in the local environment").
//
// Host AST nodes are arena-allocated and trivially destructible: names are
// interned and child lists are arena arrays.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_LUAAST_H
#define TERRACPP_CORE_LUAAST_H

#include "support/Casting.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace terracpp {

class TerraExpr;
class TerraStmt;
class BlockStmt;
struct TypeRef;

namespace lua {

struct Stmt;
struct Block;

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

struct Expr {
  enum ExprKind {
    EK_Nil,
    EK_Bool,
    EK_Number,
    EK_String,
    EK_Ident,
    EK_Select,     ///< base.name
    EK_Index,      ///< base[key]
    EK_Call,
    EK_MethodCall, ///< base:name(args)
    EK_Function,
    EK_Table,
    EK_BinOp,
    EK_UnOp,
    EK_TerraFunc,   ///< terra (...) ... end literal
    EK_TerraQuote,  ///< quote ... end or `expr
    EK_TerraStruct, ///< struct { ... } literal
  };

  ExprKind EK;
  SourceLoc Loc;

  ExprKind kind() const { return EK; }
  SourceLoc loc() const { return Loc; }

protected:
  explicit Expr(ExprKind EK) : EK(EK) {}
};

struct NilExpr : Expr {
  NilExpr() : Expr(EK_Nil) {}
  static bool classof(const Expr *E) { return E->EK == EK_Nil; }
};

struct BoolExpr : Expr {
  bool Val = false;
  BoolExpr() : Expr(EK_Bool) {}
  static bool classof(const Expr *E) { return E->EK == EK_Bool; }
};

struct NumberExpr : Expr {
  double Val = 0;
  NumberExpr() : Expr(EK_Number) {}
  static bool classof(const Expr *E) { return E->EK == EK_Number; }
};

struct StringExpr : Expr {
  const std::string *Val = nullptr;
  StringExpr() : Expr(EK_String) {}
  static bool classof(const Expr *E) { return E->EK == EK_String; }
};

struct IdentExpr : Expr {
  const std::string *Name = nullptr;
  IdentExpr() : Expr(EK_Ident) {}
  static bool classof(const Expr *E) { return E->EK == EK_Ident; }
};

struct SelectExprL : Expr {
  const Expr *Base = nullptr;
  const std::string *Name = nullptr;
  SelectExprL() : Expr(EK_Select) {}
  static bool classof(const Expr *E) { return E->EK == EK_Select; }
};

struct IndexExprL : Expr {
  const Expr *Base = nullptr;
  const Expr *Key = nullptr;
  IndexExprL() : Expr(EK_Index) {}
  static bool classof(const Expr *E) { return E->EK == EK_Index; }
};

struct CallExpr : Expr {
  const Expr *Callee = nullptr;
  const Expr *const *Args = nullptr;
  unsigned NumArgs = 0;
  CallExpr() : Expr(EK_Call) {}
  static bool classof(const Expr *E) { return E->EK == EK_Call; }
};

struct MethodCallExprL : Expr {
  const Expr *Obj = nullptr;
  const std::string *Method = nullptr;
  const Expr *const *Args = nullptr;
  unsigned NumArgs = 0;
  MethodCallExprL() : Expr(EK_MethodCall) {}
  static bool classof(const Expr *E) { return E->EK == EK_MethodCall; }
};

struct FunctionExpr : Expr {
  const std::string *const *Params = nullptr;
  unsigned NumParams = 0;
  const Block *Body = nullptr;
  const std::string *DebugName = nullptr; ///< May be null.
  FunctionExpr() : Expr(EK_Function) {}
  static bool classof(const Expr *E) { return E->EK == EK_Function; }
};

/// Table constructor `{ a, b, x = 1, [k] = v }`.
struct TableExpr : Expr {
  struct Item {
    const Expr *KeyExpr;        ///< Null unless `[k] = v` form.
    const std::string *KeyName; ///< Null unless `x = v` form.
    const Expr *Val;
  };
  const Item *Items = nullptr;
  unsigned NumItems = 0;
  TableExpr() : Expr(EK_Table) {}
  static bool classof(const Expr *E) { return E->EK == EK_Table; }
};

enum class LBinOp {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  Pow,
  Concat,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,
};

struct BinOpExprL : Expr {
  LBinOp Op = LBinOp::Add;
  const Expr *LHS = nullptr;
  const Expr *RHS = nullptr;
  BinOpExprL() : Expr(EK_BinOp) {}
  static bool classof(const Expr *E) { return E->EK == EK_BinOp; }
};

enum class LUnOp { Neg, Not, Len };

struct UnOpExprL : Expr {
  LUnOp Op = LUnOp::Neg;
  const Expr *Operand = nullptr;
  UnOpExprL() : Expr(EK_UnOp) {}
  static bool classof(const Expr *E) { return E->EK == EK_UnOp; }
};

/// One parameter of a `terra` literal. The name may be an escape producing a
/// symbol or a list of symbols (`terra([params]) ...`, paper §6.3.1).
struct TerraParamDecl {
  const std::string *Name = nullptr;
  const Expr *NameEscape = nullptr;
  const Expr *TypeExpr = nullptr; ///< Host expression; null with NameEscape.
};

/// `terra (params) : ret body end` in expression position. Statement-form
/// definitions wrap this literal.
struct TerraFuncExpr : Expr {
  const TerraParamDecl *Params = nullptr;
  unsigned NumParams = 0;
  const Expr *RetTypeExpr = nullptr; ///< Null: infer.
  BlockStmt *Body = nullptr;         ///< Unspecialized Terra AST.
  const std::string *DebugName = nullptr;
  /// For method-sugar definitions (`terra T:m(...)`): prepend `self`.
  bool IsMethod = false;
  TerraFuncExpr() : Expr(EK_TerraFunc) {}
  static bool classof(const Expr *E) { return E->EK == EK_TerraFunc; }
};

/// `quote stmts end` (expression is null) or `` `e `` (stmts is null).
struct TerraQuoteExpr : Expr {
  BlockStmt *Stmts = nullptr;
  TerraExpr *ExprTree = nullptr;
  TerraQuoteExpr() : Expr(EK_TerraQuote) {}
  static bool classof(const Expr *E) { return E->EK == EK_TerraQuote; }
};

/// `struct Name { f : T; ... }` or anonymous `struct { ... }`.
struct TerraStructExpr : Expr {
  struct FieldDecl {
    const std::string *Name;
    const Expr *TypeExpr;
  };
  const std::string *DebugName = nullptr;
  const FieldDecl *Fields = nullptr;
  unsigned NumFields = 0;
  TerraStructExpr() : Expr(EK_TerraStruct) {}
  static bool classof(const Expr *E) { return E->EK == EK_TerraStruct; }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

struct Stmt {
  enum StmtKind {
    SK_Local,
    SK_Assign,
    SK_ExprStmt,
    SK_If,
    SK_While,
    SK_Repeat,
    SK_NumericFor,
    SK_GenericFor,
    SK_Return,
    SK_Break,
    SK_Do,
    SK_FunctionDecl,
    SK_TerraDecl,
    SK_StructDecl,
  };

  StmtKind SK;
  SourceLoc Loc;

  StmtKind kind() const { return SK; }

protected:
  explicit Stmt(StmtKind SK) : SK(SK) {}
};

struct Block {
  const Stmt *const *Stmts = nullptr;
  unsigned NumStmts = 0;
};

struct LocalStmt : Stmt {
  const std::string *const *Names = nullptr;
  unsigned NumNames = 0;
  const Expr *const *Inits = nullptr;
  unsigned NumInits = 0;
  LocalStmt() : Stmt(SK_Local) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Local; }
};

struct AssignStmtL : Stmt {
  const Expr *const *Targets = nullptr; ///< Ident/Select/Index expressions.
  unsigned NumTargets = 0;
  const Expr *const *Vals = nullptr;
  unsigned NumVals = 0;
  AssignStmtL() : Stmt(SK_Assign) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Assign; }
};

struct ExprStmtL : Stmt {
  const Expr *E = nullptr;
  ExprStmtL() : Stmt(SK_ExprStmt) {}
  static bool classof(const Stmt *S) { return S->SK == SK_ExprStmt; }
};

struct IfStmtL : Stmt {
  const Expr *const *Conds = nullptr;
  const Block *const *Blocks = nullptr;
  unsigned NumClauses = 0;
  const Block *ElseBlock = nullptr;
  IfStmtL() : Stmt(SK_If) {}
  static bool classof(const Stmt *S) { return S->SK == SK_If; }
};

struct WhileStmtL : Stmt {
  const Expr *Cond = nullptr;
  const Block *Body = nullptr;
  WhileStmtL() : Stmt(SK_While) {}
  static bool classof(const Stmt *S) { return S->SK == SK_While; }
};

struct RepeatStmtL : Stmt {
  const Block *Body = nullptr;
  const Expr *Until = nullptr;
  RepeatStmtL() : Stmt(SK_Repeat) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Repeat; }
};

/// Lua numeric for (inclusive limit, unlike Terra's).
struct NumericForStmtL : Stmt {
  const std::string *Var = nullptr;
  const Expr *Lo = nullptr;
  const Expr *Hi = nullptr;
  const Expr *Step = nullptr; ///< Null means 1.
  const Block *Body = nullptr;
  NumericForStmtL() : Stmt(SK_NumericFor) {}
  static bool classof(const Stmt *S) { return S->SK == SK_NumericFor; }
};

/// `for a, b in e do ... end` (the iterator expression is evaluated and must
/// produce an iterator triple as in Lua; pairs/ipairs are builtin).
struct GenericForStmtL : Stmt {
  const std::string *const *Names = nullptr;
  unsigned NumNames = 0;
  const Expr *Iter = nullptr;
  const Block *Body = nullptr;
  GenericForStmtL() : Stmt(SK_GenericFor) {}
  static bool classof(const Stmt *S) { return S->SK == SK_GenericFor; }
};

struct ReturnStmtL : Stmt {
  const Expr *const *Vals = nullptr;
  unsigned NumVals = 0;
  ReturnStmtL() : Stmt(SK_Return) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Return; }
};

struct BreakStmtL : Stmt {
  BreakStmtL() : Stmt(SK_Break) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Break; }
};

struct DoStmtL : Stmt {
  const Block *Body = nullptr;
  DoStmtL() : Stmt(SK_Do) {}
  static bool classof(const Stmt *S) { return S->SK == SK_Do; }
};

/// `function a.b.c(...)` / `function a:m(...)` / `local function f(...)`.
struct FunctionDeclStmt : Stmt {
  const std::string *const *Path = nullptr; ///< a, b, c.
  unsigned PathLen = 0;
  bool IsMethod = false; ///< Last path element declared with ':'.
  bool IsLocal = false;
  const FunctionExpr *Fn = nullptr;
  FunctionDeclStmt() : Stmt(SK_FunctionDecl) {}
  static bool classof(const Stmt *S) { return S->SK == SK_FunctionDecl; }
};

/// `terra a.b.c(...) ... end` / `terra T:m(...)` / `local terra f(...)`.
/// Defines (or declares-and-defines) a Terra function and stores it at the
/// path — into `T.methods.m` for the method form (paper §2).
struct TerraDeclStmt : Stmt {
  const std::string *const *Path = nullptr;
  unsigned PathLen = 0;
  bool IsMethod = false;
  bool IsLocal = false;
  const TerraFuncExpr *Fn = nullptr;
  TerraDeclStmt() : Stmt(SK_TerraDecl) {}
  static bool classof(const Stmt *S) { return S->SK == SK_TerraDecl; }
};

/// `struct Name { ... }` / `local struct Name { ... }`.
struct StructDeclStmt : Stmt {
  const std::string *Name = nullptr;
  bool IsLocal = false;
  const TerraStructExpr *Decl = nullptr;
  StructDeclStmt() : Stmt(SK_StructDecl) {}
  static bool classof(const Stmt *S) { return S->SK == SK_StructDecl; }
};

} // namespace lua
} // namespace terracpp

#endif // TERRACPP_CORE_LUAAST_H
