//===- TerraVM.cpp - Tier-0 register bytecode interpreter -----------------===//

#include "core/TerraVM.h"

#include "core/TerraAST.h"
#include "core/TerraCompiler.h"
#include "core/TerraExternDispatch.h"
#include "core/TerraType.h"

#include <cstring>
#include <memory>

// Computed-goto dispatch wants the GCC/Clang labels-as-values extension;
// everything else falls back to a for/switch loop with identical handlers.
#if defined(__GNUC__) || defined(__clang__)
#define TERRACPP_VM_CGOTO 1
#endif

using namespace terracpp;
using namespace terracpp::bytecode;

namespace {

template <typename T> inline T ld(const void *P) {
  T V;
  memcpy(&V, P, sizeof(T));
  return V;
}
template <typename T> inline void st(void *P, T V) { memcpy(P, &V, sizeof(T)); }

inline uint8_t *addr(const Slot &Base, int64_t Off) {
  return static_cast<uint8_t *>(Base.P) + Off;
}

bool fail(vm::ExecEnv &S, SourceLoc Loc, const std::string &Msg) {
  if (!S.Failed)
    S.Ctx.diags().error(Loc, "terra interpreter: " + Msg);
  S.Failed = true;
  return false;
}

/// Canonicalizes the FFI bytes at \p Src (C layout of \p Ty) into a register
/// slot, exactly as the tree-walker's loadAsInt/loadAsDouble widen them.
bool loadCanonical(Slot &Dst, const Type *Ty, const void *Src) {
  if (Ty->isPointer() || Ty->isFunction()) {
    memcpy(&Dst.P, Src, sizeof(void *));
    return true;
  }
  const auto *P = dyn_cast<PrimType>(Ty);
  if (!P)
    return false;
  switch (P->primKind()) {
  case PrimType::Bool:
    Dst.U = ld<uint8_t>(Src) ? 1 : 0;
    return true;
  case PrimType::Int8:
    Dst.I = ld<int8_t>(Src);
    return true;
  case PrimType::Int16:
    Dst.I = ld<int16_t>(Src);
    return true;
  case PrimType::Int32:
    Dst.I = ld<int32_t>(Src);
    return true;
  case PrimType::Int64:
    Dst.I = ld<int64_t>(Src);
    return true;
  case PrimType::UInt8:
    Dst.U = ld<uint8_t>(Src);
    return true;
  case PrimType::UInt16:
    Dst.U = ld<uint16_t>(Src);
    return true;
  case PrimType::UInt32:
    Dst.U = ld<uint32_t>(Src);
    return true;
  case PrimType::UInt64:
    Dst.U = ld<uint64_t>(Src);
    return true;
  case PrimType::Float32:
    Dst.F = ld<float>(Src);
    return true;
  case PrimType::Float64:
    Dst.D = ld<double>(Src);
    return true;
  case PrimType::Void:
    return false;
  }
  return false;
}

/// Moves a call result staged at \p Src (C layout) into \p Dst canonically.
void loadRet(Slot &Dst, RetKind K, const void *Src) {
  switch (K) {
  case RetKind::I8:
    Dst.I = ld<int8_t>(Src);
    return;
  case RetKind::I16:
    Dst.I = ld<int16_t>(Src);
    return;
  case RetKind::I32:
    Dst.I = ld<int32_t>(Src);
    return;
  case RetKind::I64:
    Dst.I = ld<int64_t>(Src);
    return;
  case RetKind::U8:
    Dst.U = ld<uint8_t>(Src);
    return;
  case RetKind::U16:
    Dst.U = ld<uint16_t>(Src);
    return;
  case RetKind::U32:
    Dst.U = ld<uint32_t>(Src);
    return;
  case RetKind::U64:
    Dst.U = ld<uint64_t>(Src);
    return;
  case RetKind::Bool:
    Dst.U = ld<uint8_t>(Src) ? 1 : 0;
    return;
  case RetKind::F32:
    Dst.F = ld<float>(Src);
    return;
  case RetKind::F64:
    Dst.D = ld<double>(Src);
    return;
  case RetKind::Ptr:
    memcpy(&Dst.P, Src, sizeof(void *));
    return;
  case RetKind::None:
  case RetKind::Agg:
    return;
  }
}

/// Writes the function result from its canonical slot through the FFI Ret
/// pointer with the exact size and layout of the declared return type.
void writeRet(const Function &F, const Slot &V, void *Ret) {
  if (!Ret)
    return;
  switch (F.Ret) {
  case RetKind::None:
    return;
  case RetKind::I8:
    st<int8_t>(Ret, static_cast<int8_t>(V.I));
    return;
  case RetKind::I16:
    st<int16_t>(Ret, static_cast<int16_t>(V.I));
    return;
  case RetKind::I32:
    st<int32_t>(Ret, static_cast<int32_t>(V.I));
    return;
  case RetKind::I64:
    st<int64_t>(Ret, V.I);
    return;
  case RetKind::U8:
    st<uint8_t>(Ret, static_cast<uint8_t>(V.U));
    return;
  case RetKind::U16:
    st<uint16_t>(Ret, static_cast<uint16_t>(V.U));
    return;
  case RetKind::U32:
    st<uint32_t>(Ret, static_cast<uint32_t>(V.U));
    return;
  case RetKind::U64:
    st<uint64_t>(Ret, V.U);
    return;
  case RetKind::Bool:
    st<uint8_t>(Ret, V.U ? 1 : 0);
    return;
  case RetKind::F32:
    st<float>(Ret, V.F);
    return;
  case RetKind::F64:
    st<double>(Ret, V.D);
    return;
  case RetKind::Ptr:
    memcpy(Ret, &V.P, sizeof(void *));
    return;
  case RetKind::Agg:
    memcpy(Ret, V.P, F.RetBytes);
    return;
  }
}

bool runOne(const Function &F, void **Args, void *Ret, vm::ExecEnv &S);

/// One out-of-line call. Stages argument pointers in FFI convention
/// (scalars point at their canonical slot — the low bytes are the C layout
/// of every scalar type on a little-endian host; aggregates pass their
/// address), picks the fastest engine that can run the callee, and
/// canonicalizes the scalar result back into the destination register.
bool doCall(const CallSite &CS, Slot *R, uint8_t *Frame, vm::ExecEnv &S) {
  void *ArgPtrs[MaxCallArgs];
  for (size_t I = 0, N = CS.Args.size(); I != N; ++I) {
    const CallSite::Arg &A = CS.Args[I];
    ArgPtrs[I] = A.ByAddr ? R[A.Reg].P : static_cast<void *>(&R[A.Reg]);
  }
  void *RetPtr = (CS.RetTy && !CS.RetTy->isVoid()) ? Frame + CS.RetFrameOff
                                                   : nullptr;
  auto *Callee = const_cast<TerraFunction *>(CS.Callee);
  if (Callee->IsExtern) {
    std::string Err;
    if (!interpruntime::dispatchExtern(Callee, ArgPtrs, CS.ArgTypes, RetPtr,
                                       Err))
      return fail(S, CS.Loc, Err);
  } else if (Callee->HostClosure) {
    if (!S.Comp.invokeHostClosure(Callee->HostClosureId, ArgPtrs, RetPtr)) {
      // The tree-walker propagates host-closure failure without adding a
      // diagnostic (the host side already reported); mirror that.
      S.Failed = true;
      return false;
    }
  } else if (Callee->Bytecode && !Callee->Tier) {
    // Pure tier-0 callee: recurse directly, sharing the depth budget the
    // way the tree-walker's runFunction recursion does.
    if (!runOne(*Callee->Bytecode, ArgPtrs, RetPtr, S))
      return false;
  } else {
    // Tiered functions go through their dispatcher Entry so call counting
    // and native promotion see every call; functions reached through
    // function-pointer values compile lazily first. Entry thunks signal
    // failure through diagnostics, not a return value.
    if (!Callee->Entry && !S.Comp.ensureCompiled(Callee)) {
      S.Failed = true;
      return false;
    }
    if (!Callee->Entry)
      return fail(S, CS.Loc,
                  "function '" + Callee->Name + "' has no entry point");
    unsigned Before = S.Ctx.diags().errorCount();
    Callee->Entry(ArgPtrs, RetPtr);
    if (S.Ctx.diags().errorCount() != Before) {
      S.Failed = true;
      return false;
    }
  }
  if (CS.DstReg != 0xFFFF && RetPtr)
    loadRet(R[CS.DstReg], CS.RetLoad, RetPtr);
  return true;
}

bool runOne(const Function &F, void **Args, void *Ret, vm::ExecEnv &S) {
  vm::CallDepthScope DepthScope;
  if (DepthScope.exceeded())
    return vm::failStackOverflow(S);

  // One allocation per invocation: registers, then the 32-aligned frame.
  size_t RegBytes = static_cast<size_t>(F.NumRegs) * sizeof(Slot);
  size_t Bytes = RegBytes + F.FrameBytes + 64;
  std::unique_ptr<uint8_t[]> Buf(new uint8_t[Bytes]);
  memset(Buf.get(), 0, Bytes);
  Slot *R = reinterpret_cast<Slot *>(Buf.get());
  uint8_t *Frame = reinterpret_cast<uint8_t *>(
      (reinterpret_cast<uintptr_t>(Buf.get() + RegBytes) + 31) &
      ~static_cast<uintptr_t>(31));

  for (size_t I = 0, N = F.Params.size(); I != N; ++I) {
    const Function::Param &P = F.Params[I];
    if (P.InFrame) {
      memcpy(Frame + P.FrameOff, Args[I], P.Ty->size());
    } else if (!loadCanonical(R[P.Reg], P.Ty, Args[I])) {
      return fail(S, SourceLoc(), "unsupported parameter type in VM");
    }
  }

  const Insn *Code = F.Code.data();
  const Insn *pc = Code;
  uint64_t BackEdges = 0;
  int64_t TrapAt = -1;

#define VM_RETURN(V)                                                          \
  do {                                                                        \
    S.BackEdges += BackEdges;                                                 \
    return (V);                                                               \
  } while (0)
#define VM_TRAP(Idx)                                                          \
  do {                                                                        \
    TrapAt = (Idx);                                                           \
    goto trap_exit;                                                           \
  } while (0)

#ifdef TERRACPP_VM_CGOTO
  static const void *JumpTable[] = {
#define TERRACPP_VM_LABEL(N) &&L_##N,
      TERRACPP_BYTECODE_OPS(TERRACPP_VM_LABEL)
#undef TERRACPP_VM_LABEL
  };
#define VM_CASE(N) L_##N
#define VM_DISPATCH() goto *JumpTable[static_cast<unsigned>(pc->Code)]
#define VM_NEXT                                                               \
  do {                                                                        \
    ++pc;                                                                     \
    VM_DISPATCH();                                                            \
  } while (0)
#define VM_JUMP(T)                                                            \
  do {                                                                        \
    pc = Code + (T);                                                          \
    VM_DISPATCH();                                                            \
  } while (0)
  VM_DISPATCH();
#else
#define VM_CASE(N) case Op::N
#define VM_NEXT                                                               \
  do {                                                                        \
    ++pc;                                                                     \
    goto next_insn;                                                           \
  } while (0)
#define VM_JUMP(T)                                                            \
  do {                                                                        \
    pc = Code + (T);                                                          \
    goto next_insn;                                                           \
  } while (0)
next_insn:
  switch (pc->Code) {
#endif

  VM_CASE(ConstI) : R[pc->A].I = pc->Imm;
  VM_NEXT;
  VM_CASE(ConstF) : memcpy(&R[pc->A].D, &pc->Imm, 8);
  VM_NEXT;
  VM_CASE(ConstF32) : memcpy(&R[pc->A].F, &pc->Imm, 4);
  VM_NEXT;
  VM_CASE(ConstP) : R[pc->A].P =
      reinterpret_cast<void *>(static_cast<uintptr_t>(pc->Imm));
  VM_NEXT;
  VM_CASE(FnLit) : {
    auto *Fn =
        reinterpret_cast<TerraFunction *>(static_cast<uintptr_t>(pc->Imm));
    if (S.Comp.tierManager()) {
      // Tiered execution: a materialized function value is a machine
      // address everywhere (native code may call the same bits), so taking
      // the value promotes the function.
      void *P = S.Comp.nativePointer(Fn);
      if (!P) {
        fail(S, SourceLoc(),
             "cannot take the address of function '" + Fn->Name + "'");
        VM_RETURN(false);
      }
      R[pc->A].P = P;
    } else {
      R[pc->A].P = Fn;
    }
  }
  VM_NEXT;
  VM_CASE(Mov) : R[pc->A] = R[pc->B];
  VM_NEXT;
  VM_CASE(FrameAddr) : R[pc->A].P = Frame + pc->Imm;
  VM_NEXT;

  VM_CASE(AddI) : R[pc->A].U = R[pc->B].U + R[pc->C].U;
  VM_NEXT;
  VM_CASE(SubI) : R[pc->A].U = R[pc->B].U - R[pc->C].U;
  VM_NEXT;
  VM_CASE(MulI) : R[pc->A].U = R[pc->B].U * R[pc->C].U;
  VM_NEXT;
  // Division is unguarded: the compiler emits a TrapIfZero on the divisor
  // register first, unless interval analysis proved the divisor nonzero.
  VM_CASE(DivI) : R[pc->A].I = R[pc->B].I / R[pc->C].I;
  VM_NEXT;
  VM_CASE(ModI) : R[pc->A].I = R[pc->B].I % R[pc->C].I;
  VM_NEXT;
  VM_CASE(DivU) : R[pc->A].U = R[pc->B].U / R[pc->C].U;
  VM_NEXT;
  VM_CASE(ModU) : R[pc->A].U = R[pc->B].U % R[pc->C].U;
  VM_NEXT;
  // Shifts mask the amount to the slot width: amounts >= the static type's
  // width trap via the preceding TrapIfShiftGE, so the mask only shields the
  // host from UB, it never changes a defined result.
  VM_CASE(ShlI) : R[pc->A].U = R[pc->B].U << (R[pc->C].U & 63);
  VM_NEXT;
  VM_CASE(ShrI) : R[pc->A].I = R[pc->B].I >> (R[pc->C].U & 63);
  VM_NEXT;
  VM_CASE(ShrU) : R[pc->A].U = R[pc->B].U >> (R[pc->C].U & 63);
  VM_NEXT;
  VM_CASE(NegI) : R[pc->A].U = 0 - R[pc->B].U;
  VM_NEXT;

  VM_CASE(AddF) : R[pc->A].D = R[pc->B].D + R[pc->C].D;
  VM_NEXT;
  VM_CASE(SubF) : R[pc->A].D = R[pc->B].D - R[pc->C].D;
  VM_NEXT;
  VM_CASE(MulF) : R[pc->A].D = R[pc->B].D * R[pc->C].D;
  VM_NEXT;
  VM_CASE(DivF) : R[pc->A].D = R[pc->B].D / R[pc->C].D;
  VM_NEXT;
  VM_CASE(NegF) : R[pc->A].D = -R[pc->B].D;
  VM_NEXT;
  VM_CASE(AddF32) : R[pc->A].F = R[pc->B].F + R[pc->C].F;
  VM_NEXT;
  VM_CASE(SubF32) : R[pc->A].F = R[pc->B].F - R[pc->C].F;
  VM_NEXT;
  VM_CASE(MulF32) : R[pc->A].F = R[pc->B].F * R[pc->C].F;
  VM_NEXT;
  VM_CASE(DivF32) : R[pc->A].F = R[pc->B].F / R[pc->C].F;
  VM_NEXT;
  VM_CASE(NegF32) : R[pc->A].F = -R[pc->B].F;
  VM_NEXT;

  VM_CASE(NotB) : R[pc->A].U = R[pc->B].U ? 0 : 1;
  VM_NEXT;
  VM_CASE(LtI) : R[pc->A].U = R[pc->B].I < R[pc->C].I;
  VM_NEXT;
  VM_CASE(LeI) : R[pc->A].U = R[pc->B].I <= R[pc->C].I;
  VM_NEXT;
  VM_CASE(GtI) : R[pc->A].U = R[pc->B].I > R[pc->C].I;
  VM_NEXT;
  VM_CASE(GeI) : R[pc->A].U = R[pc->B].I >= R[pc->C].I;
  VM_NEXT;
  VM_CASE(LtU) : R[pc->A].U = R[pc->B].U < R[pc->C].U;
  VM_NEXT;
  VM_CASE(LeU) : R[pc->A].U = R[pc->B].U <= R[pc->C].U;
  VM_NEXT;
  VM_CASE(GtU) : R[pc->A].U = R[pc->B].U > R[pc->C].U;
  VM_NEXT;
  VM_CASE(GeU) : R[pc->A].U = R[pc->B].U >= R[pc->C].U;
  VM_NEXT;
  VM_CASE(EqI) : R[pc->A].U = R[pc->B].U == R[pc->C].U;
  VM_NEXT;
  VM_CASE(NeI) : R[pc->A].U = R[pc->B].U != R[pc->C].U;
  VM_NEXT;
  VM_CASE(LtF) : R[pc->A].U = R[pc->B].D < R[pc->C].D;
  VM_NEXT;
  VM_CASE(LeF) : R[pc->A].U = R[pc->B].D <= R[pc->C].D;
  VM_NEXT;
  VM_CASE(GtF) : R[pc->A].U = R[pc->B].D > R[pc->C].D;
  VM_NEXT;
  VM_CASE(GeF) : R[pc->A].U = R[pc->B].D >= R[pc->C].D;
  VM_NEXT;
  VM_CASE(EqF) : R[pc->A].U = R[pc->B].D == R[pc->C].D;
  VM_NEXT;
  VM_CASE(NeF) : R[pc->A].U = R[pc->B].D != R[pc->C].D;
  VM_NEXT;
  VM_CASE(LtF32) : R[pc->A].U = R[pc->B].F < R[pc->C].F;
  VM_NEXT;
  VM_CASE(LeF32) : R[pc->A].U = R[pc->B].F <= R[pc->C].F;
  VM_NEXT;
  VM_CASE(GtF32) : R[pc->A].U = R[pc->B].F > R[pc->C].F;
  VM_NEXT;
  VM_CASE(GeF32) : R[pc->A].U = R[pc->B].F >= R[pc->C].F;
  VM_NEXT;
  VM_CASE(EqF32) : R[pc->A].U = R[pc->B].F == R[pc->C].F;
  VM_NEXT;
  VM_CASE(NeF32) : R[pc->A].U = R[pc->B].F != R[pc->C].F;
  VM_NEXT;

  VM_CASE(MinI) : R[pc->A].I =
      R[pc->B].I < R[pc->C].I ? R[pc->B].I : R[pc->C].I;
  VM_NEXT;
  VM_CASE(MaxI) : R[pc->A].I =
      R[pc->B].I > R[pc->C].I ? R[pc->B].I : R[pc->C].I;
  VM_NEXT;
  VM_CASE(MinU) : R[pc->A].U =
      R[pc->B].U < R[pc->C].U ? R[pc->B].U : R[pc->C].U;
  VM_NEXT;
  VM_CASE(MaxU) : R[pc->A].U =
      R[pc->B].U > R[pc->C].U ? R[pc->B].U : R[pc->C].U;
  VM_NEXT;
  VM_CASE(MinF) : R[pc->A].D =
      R[pc->B].D < R[pc->C].D ? R[pc->B].D : R[pc->C].D;
  VM_NEXT;
  VM_CASE(MaxF) : R[pc->A].D =
      R[pc->B].D > R[pc->C].D ? R[pc->B].D : R[pc->C].D;
  VM_NEXT;
  VM_CASE(MinF32) : R[pc->A].F =
      R[pc->B].F < R[pc->C].F ? R[pc->B].F : R[pc->C].F;
  VM_NEXT;
  VM_CASE(MaxF32) : R[pc->A].F =
      R[pc->B].F > R[pc->C].F ? R[pc->B].F : R[pc->C].F;
  VM_NEXT;

  VM_CASE(WrapI8) : R[pc->A].I = static_cast<int8_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapI16) : R[pc->A].I = static_cast<int16_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapI32) : R[pc->A].I = static_cast<int32_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapU8) : R[pc->A].U = static_cast<uint8_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapU16) : R[pc->A].U = static_cast<uint16_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapU32) : R[pc->A].U = static_cast<uint32_t>(R[pc->B].U);
  VM_NEXT;
  VM_CASE(WrapBool) : R[pc->A].U = R[pc->B].U != 0;
  VM_NEXT;
  VM_CASE(I2F) : R[pc->A].D = static_cast<double>(R[pc->B].I);
  VM_NEXT;
  VM_CASE(I2F32) : R[pc->A].F = static_cast<float>(R[pc->B].I);
  VM_NEXT;
  VM_CASE(F2I8) : R[pc->A].I = static_cast<int8_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2I16) : R[pc->A].I = static_cast<int16_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2I32) : R[pc->A].I = static_cast<int32_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2I64) : R[pc->A].I = static_cast<int64_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2U8) : R[pc->A].U = static_cast<uint8_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2U16) : R[pc->A].U = static_cast<uint16_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2U32) : R[pc->A].U = static_cast<uint32_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2U64) : R[pc->A].U = static_cast<uint64_t>(R[pc->B].D);
  VM_NEXT;
  VM_CASE(F2Bool) : R[pc->A].U = R[pc->B].D != 0;
  VM_NEXT;
  VM_CASE(F32ToF) : R[pc->A].D = static_cast<double>(R[pc->B].F);
  VM_NEXT;
  VM_CASE(FToF32) : R[pc->A].F = static_cast<float>(R[pc->B].D);
  VM_NEXT;

  VM_CASE(LdI8) : R[pc->A].I = ld<int8_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdI16) : R[pc->A].I = ld<int16_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdI32) : R[pc->A].I = ld<int32_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdI64) : R[pc->A].I = ld<int64_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdU8) : R[pc->A].U = ld<uint8_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdU16) : R[pc->A].U = ld<uint16_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdU32) : R[pc->A].U = ld<uint32_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdU64) : R[pc->A].U = ld<uint64_t>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdF32) : R[pc->A].F = ld<float>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdF64) : R[pc->A].D = ld<double>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(LdP) : R[pc->A].P = ld<void *>(addr(R[pc->B], pc->Imm));
  VM_NEXT;
  VM_CASE(StI8) : st<uint8_t>(addr(R[pc->A], pc->Imm),
                              static_cast<uint8_t>(R[pc->B].U));
  VM_NEXT;
  VM_CASE(StI16) : st<uint16_t>(addr(R[pc->A], pc->Imm),
                                static_cast<uint16_t>(R[pc->B].U));
  VM_NEXT;
  VM_CASE(StI32) : st<uint32_t>(addr(R[pc->A], pc->Imm),
                                static_cast<uint32_t>(R[pc->B].U));
  VM_NEXT;
  VM_CASE(StI64) : st<uint64_t>(addr(R[pc->A], pc->Imm), R[pc->B].U);
  VM_NEXT;
  VM_CASE(StF32) : st<float>(addr(R[pc->A], pc->Imm), R[pc->B].F);
  VM_NEXT;
  VM_CASE(StF64) : st<double>(addr(R[pc->A], pc->Imm), R[pc->B].D);
  VM_NEXT;
  VM_CASE(StP) : st<void *>(addr(R[pc->A], pc->Imm), R[pc->B].P);
  VM_NEXT;
  VM_CASE(MemCpy) : memcpy(R[pc->A].P, R[pc->B].P,
                           static_cast<size_t>(pc->Imm));
  VM_NEXT;
  VM_CASE(MemZero) : memset(R[pc->A].P, 0, static_cast<size_t>(pc->Imm));
  VM_NEXT;

  VM_CASE(PtrAdd) : R[pc->A].P =
      static_cast<uint8_t *>(R[pc->B].P) + R[pc->C].I * pc->Imm;
  VM_NEXT;
  VM_CASE(PtrSub) : R[pc->A].P =
      static_cast<uint8_t *>(R[pc->B].P) - R[pc->C].I * pc->Imm;
  VM_NEXT;
  VM_CASE(PtrDiff) : R[pc->A].I =
      (static_cast<uint8_t *>(R[pc->B].P) -
       static_cast<uint8_t *>(R[pc->C].P)) /
      pc->Imm;
  VM_NEXT;
  VM_CASE(PtrAddImm) : R[pc->A].P =
      static_cast<uint8_t *>(R[pc->B].P) + pc->Imm;
  VM_NEXT;

  VM_CASE(TrapIfNull) : if (!R[pc->A].P) VM_TRAP(pc->Imm);
  VM_NEXT;
  VM_CASE(TrapIfZero) : if (R[pc->A].I == 0) VM_TRAP(pc->Imm);
  VM_NEXT;
  VM_CASE(TrapIfShiftGE) : if (R[pc->A].U >= pc->B) VM_TRAP(pc->Imm);
  VM_NEXT;
  VM_CASE(ForCond) : R[pc->A].U = R[pc->Imm].I > 0
                                      ? R[pc->B].I < R[pc->C].I
                                      : R[pc->B].I > R[pc->C].I;
  VM_NEXT;

  VM_CASE(Jmp) : VM_JUMP(pc->Imm);
  VM_CASE(JmpIfFalse) : if (!R[pc->A].U) VM_JUMP(pc->Imm);
  VM_NEXT;
  VM_CASE(JmpIfTrue) : if (R[pc->A].U) VM_JUMP(pc->Imm);
  VM_NEXT;
  VM_CASE(JmpBack) : ++BackEdges;
  VM_JUMP(pc->Imm);

  VM_CASE(Call) : if (!doCall(F.Calls[pc->Imm], R, Frame, S))
      VM_RETURN(false);
  VM_NEXT;
  VM_CASE(Ret) : VM_RETURN(true);
  VM_CASE(RetVal) : if (F.Ret == RetKind::Agg) {
    if (Ret)
      memcpy(Ret, R[pc->A].P, F.RetBytes);
  }
  else writeRet(F, R[pc->A], Ret);
  VM_RETURN(true);
  VM_CASE(Trap) : VM_TRAP(pc->Imm);

#ifndef TERRACPP_VM_CGOTO
  }
  // Unreachable: every opcode either advances via goto or returns.
  VM_RETURN(false);
#endif

trap_exit:
  S.BackEdges += BackEdges;
  const auto &T = F.Traps[static_cast<size_t>(TrapAt)];
  return fail(S, T.second, T.first);

#undef VM_CASE
#undef VM_NEXT
#undef VM_JUMP
#undef VM_DISPATCH
#undef VM_TRAP
#undef VM_RETURN
}

} // namespace

namespace terracpp {
namespace vm {

unsigned &callDepth() {
  static thread_local unsigned Depth = 0;
  return Depth;
}

bool failStackOverflow(ExecEnv &Env) {
  return fail(Env, SourceLoc(), "terra call stack overflow in interpreter");
}

bool run(const bytecode::Function &F, void **Args, void *Ret, ExecEnv &Env) {
  return runOne(F, Args, Ret, Env);
}

bool execCallSite(const bytecode::Function &F, uint64_t Idx,
                  bytecode::Slot *R, uint8_t *Frame, ExecEnv &Env) {
  return doCall(F.Calls[static_cast<size_t>(Idx)], R, Frame, Env);
}

void execTrap(const bytecode::Function &F, uint64_t Idx, ExecEnv &Env) {
  const auto &T = F.Traps[static_cast<size_t>(Idx)];
  fail(Env, T.second, T.first);
}

bool execFnLit(TerraFunction *Fn, bytecode::Slot &Dst, ExecEnv &Env) {
  if (Env.Comp.tierManager()) {
    void *P = Env.Comp.nativePointer(Fn);
    if (!P)
      return fail(Env, SourceLoc(),
                  "cannot take the address of function '" + Fn->Name + "'");
    Dst.P = P;
  } else {
    Dst.P = Fn;
  }
  return true;
}

void loadCallResult(bytecode::Slot &Dst, bytecode::RetKind K,
                    const void *Src) {
  loadRet(Dst, K, Src);
}

} // namespace vm
} // namespace terracpp
