//===- TerraTier.h - Tiered execution state and promotion -------*- C++ -*-===//
//
// Profile-guided tiered execution (DESIGN.md §10). Under TierPolicy::Auto
// the compile pipeline stops after C codegen: every function gets a tier-0
// dispatcher Entry that runs the bytecode VM immediately, and the generated
// C source is parked in a PendingComponent. Call and back-edge counters
// (relaxed atomics, telemetry-visible) trigger a background cc job on the
// TierManager's worker; when it lands, the native entry pointer is
// release-stored into TierState and every subsequent call acquire-loads it
// and runs native code. Callers never block on the C compiler and never
// observe a torn handle: the only shared mutable state is one
// std::atomic<void *> per function, written once.
//
// Memory ordering: the worker thread writes the code bytes (dlopen) before
// release-storing NativeEntry/NativeRaw; a caller that acquire-loads a
// non-null entry therefore observes the fully-loaded module. Counters use
// relaxed ordering — they only gate *when* promotion happens, never what
// the caller executes.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRATIER_H
#define TERRACPP_CORE_TERRATIER_H

#include "core/TerraAST.h"
#include "support/Telemetry.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace terracpp {

class JITEngine;
class ThreadPool;
struct PendingComponent;

/// How the compile pipeline schedules native code generation.
enum class TierPolicy {
  Tier1, ///< Compile natively on first call (classic synchronous JIT).
  Auto,  ///< Start on the tier-0 VM, promote hot functions in background.
};

/// Resolves TERRACPP_JIT_TIER ("auto" => Auto; "1", unset, or anything else
/// => Tier1). "0" selects the interp backend at Engine level, not a policy.
TierPolicy tierPolicyFromEnv();

/// Per-function tiered-execution state. Shared by the dispatcher Entry
/// (reader, any thread), the VM (counter writer), and the promotion worker
/// (entry writer).
struct TierState {
  /// Native FFI entry (the mangled symbol + "_entry" thunk), published with
  /// release ordering by the promotion job; null until promoted.
  std::atomic<void *> NativeEntry{nullptr};
  /// Native raw function pointer, published together with NativeEntry.
  std::atomic<void *> NativeRaw{nullptr};
  /// Dispatcher call count (relaxed; promotion trigger + telemetry).
  std::atomic<uint64_t> Calls{0};
  /// Loop back edges observed by the VM (relaxed).
  std::atomic<uint64_t> BackEdges{0};
  /// The compilation unit this function promotes with.
  std::shared_ptr<PendingComponent> Component;
};

/// One generated-but-not-yet-compiled C module: the unit of promotion.
/// Immutable after registration except for the St state machine.
struct PendingComponent {
  enum State { Idle, Queued, Done, Failed };

  std::string CSource;
  /// Content hash of CSource (ContentHash::hex). The profile dump's key:
  /// stable across runs, so a persisted profile can be re-ingested against
  /// a recompiled module with identical generated code.
  std::string Hash;
  bool Cacheable = true;

  struct Slot {
    TerraFunction *Fn = nullptr; ///< Touched by the main thread only.
    std::shared_ptr<TierState> TS;
    std::string Symbol; ///< Mangled name; entry thunk is Symbol + "_entry".
    std::string Name;   ///< Source-level name, captured at registration so
                        ///< profile dumps never touch Fn off-thread.
  };
  std::vector<Slot> Slots;

  std::atomic<int> St{Idle};
  std::mutex M;
  std::condition_variable CV; ///< Signals Done/Failed (forceNative waits).
  std::string Error;          ///< Valid after Failed (guarded by M).
};

/// Owns the promotion worker and thresholds. One per TerraCompiler;
/// declared after the JITEngine member so it is destroyed first (the worker
/// uses the JIT).
class TierManager {
public:
  explicit TierManager(JITEngine &JIT);
  ~TierManager();
  TierManager(const TierManager &) = delete;
  TierManager &operator=(const TierManager &) = delete;

  /// Parks a generated module for background promotion and attaches
  /// TierState to each function (reusing an existing TierState when a
  /// function was already registered with an earlier component). Main
  /// thread only.
  std::shared_ptr<PendingComponent>
  registerComponent(std::string CSource, bool Cacheable,
                    const std::vector<TerraFunction *> &Fns);

  /// Counts one tier-0 dispatch; queues the component when the call
  /// threshold is reached.
  void noteTier0Call(TierState &TS);
  /// Counts one baseline-JIT dispatch (tier 0.5); contributes to the same
  /// call threshold as tier-0 calls so baseline-hot functions still promote
  /// to cc-native code in the background.
  void noteBaselineCall(TierState &TS);
  /// Counts one native dispatch (telemetry only).
  void noteTier1Call() { MTier1Calls.inc(); }
  /// Accumulates VM back edges; queues the component when the back-edge
  /// threshold is reached.
  void noteBackEdges(TierState &TS, uint64_t N);

  /// Synchronously promotes \p C: runs the compile job inline when idle,
  /// otherwise waits for the in-flight background job. True on Done.
  bool forceNative(PendingComponent &C);

  /// Point-in-time tier counters for terrad stats/metrics.
  struct Snapshot {
    uint64_t Tier0Functions = 0;   ///< Registered, not yet promoted.
    uint64_t PromotedFunctions = 0;
    uint64_t PromotionBacklog = 0; ///< Components queued, not yet landed.
    uint64_t Promotions = 0;
    uint64_t PromotionFailures = 0;
    uint64_t Tier0Calls = 0;
    uint64_t Tier1Calls = 0;
    uint64_t BaselineCalls = 0;
    uint64_t CcUnavailable = 0; ///< 1 once cc ENOENT pinned us at baseline.
  };
  Snapshot snapshot() const;

  /// The per-function execution profile, keyed by component content hash:
  ///
  ///   {"<hash>": {"cacheable": true, "functions": {
  ///       "<mangled symbol>": {"name":"f","calls":N,"backedges":N,
  ///                            "tier":0|1|2}}}}
  ///
  /// tier is the RESIDENT tier right now: 0 = bytecode VM dispatcher,
  /// 2 = baseline JIT code published, 1 = cc-native promoted. This is the
  /// persistence format the profile-guided-tiering roadmap item re-ingests
  /// (served by terrad's `profile` op, written by terracpp --profile).
  /// Also refreshes the per-function profile.fn.<symbol>.{calls,backedges,
  /// tier} gauges in the engine's JIT registry, so `metrics`/`metrics_text`
  /// expose the same numbers.
  json::Value profileJson() const;

  /// True once a promotion job failed because the C compiler binary does
  /// not exist; further promotion attempts are suppressed and functions
  /// stay pinned at the baseline tier.
  bool ccPinned() const { return CcPinned.load(std::memory_order_relaxed); }

  uint64_t callThreshold() const { return CallThreshold; }
  uint64_t backEdgeThreshold() const { return BackEdgeThreshold; }

private:
  /// CAS Idle->Queued and enqueue on the worker; no-op otherwise.
  void tryQueue(TierState &TS);
  /// Compiles and publishes \p C (worker thread or forceNative inline).
  void runJob(std::shared_ptr<PendingComponent> C);
  ThreadPool &worker();

  JITEngine &JIT;
  uint64_t CallThreshold;
  uint64_t BackEdgeThreshold;

  mutable std::mutex M; ///< Guards Components and lazy worker creation.
  std::vector<std::shared_ptr<PendingComponent>> Components;

  telemetry::Counter &MPromotions;
  telemetry::Counter &MPromotionFailures;
  telemetry::Counter &MTier0Calls;
  telemetry::Counter &MTier1Calls;
  telemetry::Counter &MBaselineCalls;
  telemetry::Gauge &MBacklog;
  telemetry::Gauge &MTier0Fns;
  telemetry::Gauge &MPromotedFns;
  telemetry::Gauge &MCcUnavailable;

  /// Set (once) when a compile job discovers the C compiler binary is
  /// missing (ENOENT). Pins every function at its current tier: tryQueue
  /// becomes a no-op, so baseline code keeps running with no retry storm.
  std::atomic<bool> CcPinned{false};

  /// Last member: destroyed first, joining any in-flight promotion before
  /// the state above goes away.
  std::unique_ptr<ThreadPool> Worker;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRATIER_H
