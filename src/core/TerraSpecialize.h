//===- TerraSpecialize.h - Eager hygienic specialization --------*- C++ -*-===//
//
// Specialization (paper Fig. 2) turns unspecialized Terra trees into
// specialized ones, eagerly, at the moment a `terra` definition or quotation
// is evaluated by the host interpreter:
//
//  * every escape `[e]` (and implicit escape: a free variable, a nested
//    table chain like std.malloc, a type annotation) is evaluated as a host
//    expression in the current shared lexical environment, and the resulting
//    host value is converted into a Terra term;
//
//  * every Terra-bound variable (parameter, `var`, `for`) is renamed to a
//    fresh TerraSymbol (hygiene), and the name is bound to that symbol in
//    the shared environment so host code evaluated during specialization
//    sees it (paper §4.1's capture examples);
//
//  * quotations spliced in are deep-copied so each use site owns its tree.
//
// Specialization happens exactly once per definition — mutating a host
// variable afterwards does not change the Terra function (eager
// specialization, paper §4.1).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRASPECIALIZE_H
#define TERRACPP_CORE_TERRASPECIALIZE_H

#include "core/LuaAST.h"
#include "core/LuaValue.h"
#include "core/TerraAST.h"

namespace terracpp {

class StructType;

namespace lua {
class Interp;
}

class Specializer {
public:
  Specializer(TerraContext &Ctx, lua::Interp &I);

  /// Specializes a `terra` literal into \p Target (a declared-but-undefined
  /// function, paper rule LTDEFN) or a fresh function when Target is null.
  /// When \p SelfType is non-null, a `self : &SelfType` parameter is
  /// prepended (method-definition sugar). Returns null on error.
  TerraFunction *specializeFunction(const lua::TerraFuncExpr *Fn,
                                    std::shared_ptr<lua::Env> Environment,
                                    TerraFunction *Target,
                                    StructType *SelfType);

  /// Specializes `quote ... end` / backtick quotations.
  bool specializeQuote(const lua::TerraQuoteExpr *Q,
                       std::shared_ptr<lua::Env> Environment,
                       lua::QuoteValue &Out);

  /// Deep-copies a specialized tree (used when a quotation is spliced, so
  /// each splice owns its nodes; symbols are shared, not renamed).
  TerraExpr *cloneExpr(const TerraExpr *E);
  TerraStmt *cloneStmt(const TerraStmt *S);

private:
  class Impl;
  TerraContext &Ctx;
  lua::Interp &I;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRASPECIALIZE_H
