#include "core/TerraExternDispatch.h"

#include "core/TerraAST.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <cstdlib>

using namespace terracpp;

namespace terracpp {
namespace interpruntime {

double loadAsDouble(PrimType::PrimKind PK, const void *P) {
  switch (PK) {
  case PrimType::Bool:
    return *static_cast<const uint8_t *>(P) ? 1 : 0;
  case PrimType::Int8:
    return *static_cast<const int8_t *>(P);
  case PrimType::Int16:
    return *static_cast<const int16_t *>(P);
  case PrimType::Int32:
    return *static_cast<const int32_t *>(P);
  case PrimType::Int64:
    return static_cast<double>(*static_cast<const int64_t *>(P));
  case PrimType::UInt8:
    return *static_cast<const uint8_t *>(P);
  case PrimType::UInt16:
    return *static_cast<const uint16_t *>(P);
  case PrimType::UInt32:
    return *static_cast<const uint32_t *>(P);
  case PrimType::UInt64:
    return static_cast<double>(*static_cast<const uint64_t *>(P));
  case PrimType::Float32:
    return *static_cast<const float *>(P);
  case PrimType::Float64:
    return *static_cast<const double *>(P);
  case PrimType::Void:
    return 0;
  }
  return 0;
}

int64_t loadAsInt(PrimType::PrimKind PK, const void *P) {
  switch (PK) {
  case PrimType::Bool:
    return *static_cast<const uint8_t *>(P) ? 1 : 0;
  case PrimType::Int8:
    return *static_cast<const int8_t *>(P);
  case PrimType::Int16:
    return *static_cast<const int16_t *>(P);
  case PrimType::Int32:
    return *static_cast<const int32_t *>(P);
  case PrimType::Int64:
    return *static_cast<const int64_t *>(P);
  case PrimType::UInt8:
    return *static_cast<const uint8_t *>(P);
  case PrimType::UInt16:
    return *static_cast<const uint16_t *>(P);
  case PrimType::UInt32:
    return *static_cast<const uint32_t *>(P);
  case PrimType::UInt64:
    return static_cast<int64_t>(*static_cast<const uint64_t *>(P));
  case PrimType::Float32:
    return static_cast<int64_t>(*static_cast<const float *>(P));
  case PrimType::Float64:
    return static_cast<int64_t>(*static_cast<const double *>(P));
  case PrimType::Void:
    return 0;
  }
  return 0;
}

void storeFromDouble(PrimType::PrimKind PK, void *P, double V) {
  switch (PK) {
  case PrimType::Bool:
    *static_cast<uint8_t *>(P) = V != 0;
    return;
  case PrimType::Int8:
    *static_cast<int8_t *>(P) = static_cast<int8_t>(V);
    return;
  case PrimType::Int16:
    *static_cast<int16_t *>(P) = static_cast<int16_t>(V);
    return;
  case PrimType::Int32:
    *static_cast<int32_t *>(P) = static_cast<int32_t>(V);
    return;
  case PrimType::Int64:
    *static_cast<int64_t *>(P) = static_cast<int64_t>(V);
    return;
  case PrimType::UInt8:
    *static_cast<uint8_t *>(P) = static_cast<uint8_t>(V);
    return;
  case PrimType::UInt16:
    *static_cast<uint16_t *>(P) = static_cast<uint16_t>(V);
    return;
  case PrimType::UInt32:
    *static_cast<uint32_t *>(P) = static_cast<uint32_t>(V);
    return;
  case PrimType::UInt64:
    *static_cast<uint64_t *>(P) = static_cast<uint64_t>(V);
    return;
  case PrimType::Float32:
    *static_cast<float *>(P) = static_cast<float>(V);
    return;
  case PrimType::Float64:
    *static_cast<double *>(P) = V;
    return;
  case PrimType::Void:
    return;
  }
}

size_t primSizeOf(PrimType::PrimKind PK) {
  switch (PK) {
  case PrimType::Bool:
  case PrimType::Int8:
  case PrimType::UInt8:
    return 1;
  case PrimType::Int16:
  case PrimType::UInt16:
    return 2;
  case PrimType::Int32:
  case PrimType::UInt32:
  case PrimType::Float32:
    return 4;
  default:
    return 8;
  }
}

void storeFromInt(PrimType::PrimKind PK, void *P, int64_t V) {
  switch (PK) {
  case PrimType::Float32:
    *static_cast<float *>(P) = static_cast<float>(V);
    return;
  case PrimType::Float64:
    *static_cast<double *>(P) = static_cast<double>(V);
    return;
  default:
    storeFromDouble(PK, P, static_cast<double>(V));
    // Integer stores through double would lose precision for wide ints:
    // handle 64-bit kinds exactly.
    if (PK == PrimType::Int64)
      *static_cast<int64_t *>(P) = V;
    else if (PK == PrimType::UInt64)
      *static_cast<uint64_t *>(P) = static_cast<uint64_t>(V);
    return;
  }
}

bool dispatchExtern(const TerraFunction *F, void **Args,
                    const std::vector<Type *> &ArgTypes, void *Ret,
                    std::string &Err) {
  const std::string &N = F->ExternName;
  auto P = [&](unsigned I) {
    void *V;
    memcpy(&V, Args[I], 8);
    return V;
  };
  auto I64 = [&](unsigned I) {
    int64_t V;
    memcpy(&V, Args[I], 8);
    return V;
  };
  auto I32 = [&](unsigned I) {
    int32_t V;
    memcpy(&V, Args[I], 4);
    return V;
  };
  auto F64 = [&](unsigned I) {
    double V;
    memcpy(&V, Args[I], 8);
    return V;
  };
  auto F32 = [&](unsigned I) {
    float V;
    memcpy(&V, Args[I], 4);
    return V;
  };
  auto RetP = [&](void *V) { memcpy(Ret, &V, 8); };
  auto RetF64 = [&](double V) { memcpy(Ret, &V, 8); };
  auto RetF32 = [&](float V) { memcpy(Ret, &V, 4); };
  auto RetI32 = [&](int32_t V) { memcpy(Ret, &V, 4); };

  if (N == "malloc") {
    RetP(malloc(static_cast<size_t>(I64(0))));
    return true;
  }
  if (N == "calloc") {
    RetP(calloc(static_cast<size_t>(I64(0)), static_cast<size_t>(I64(1))));
    return true;
  }
  if (N == "realloc") {
    RetP(realloc(P(0), static_cast<size_t>(I64(1))));
    return true;
  }
  if (N == "free") {
    free(P(0));
    return true;
  }
  if (N == "memcpy") {
    RetP(memcpy(P(0), P(1), static_cast<size_t>(I64(2))));
    return true;
  }
  if (N == "memset") {
    RetP(memset(P(0), I32(1), static_cast<size_t>(I64(2))));
    return true;
  }
  if (N == "strlen") {
    int64_t L = static_cast<int64_t>(strlen(static_cast<const char *>(P(0))));
    memcpy(Ret, &L, 8);
    return true;
  }
  if (N == "puts") {
    RetI32(puts(static_cast<const char *>(P(0))));
    return true;
  }
  if (N == "putchar") {
    RetI32(putchar(I32(0)));
    return true;
  }
  if (N == "sqrt") {
    RetF64(sqrt(F64(0)));
    return true;
  }
  if (N == "sqrtf") {
    RetF32(sqrtf(F32(0)));
    return true;
  }
  if (N == "sin") {
    RetF64(sin(F64(0)));
    return true;
  }
  if (N == "cos") {
    RetF64(cos(F64(0)));
    return true;
  }
  if (N == "exp") {
    RetF64(exp(F64(0)));
    return true;
  }
  if (N == "log") {
    RetF64(log(F64(0)));
    return true;
  }
  if (N == "pow") {
    RetF64(pow(F64(0), F64(1)));
    return true;
  }
  if (N == "fabs") {
    RetF64(fabs(F64(0)));
    return true;
  }
  if (N == "floor") {
    RetF64(floor(F64(0)));
    return true;
  }
  if (N == "ceil") {
    RetF64(ceil(F64(0)));
    return true;
  }
  if (N == "fmod") {
    RetF64(fmod(F64(0), F64(1)));
    return true;
  }
  if (N == "printf") {
    // Minimal printf: interpret %d %lld %f %g %s %c %% with the declared
    // argument types (the registry types printf as a fixed signature).
    const char *Fmt = static_cast<const char *>(P(0));
    std::string Out;
    unsigned ArgI = 1;
    unsigned NumArgs = ArgTypes.size();
    for (const char *C = Fmt; *C; ++C) {
      if (*C != '%') {
        Out += *C;
        continue;
      }
      ++C;
      if (*C == '%') {
        Out += '%';
        continue;
      }
      std::string Spec = "%";
      while (*C && !strchr("diufgesc", *C)) {
        Spec += *C;
        ++C;
      }
      if (!*C)
        break;
      Spec += *C;
      char Buf[128];
      if (ArgI >= NumArgs) {
        Out += Spec;
        continue;
      }
      Type *AT = ArgTypes[ArgI];
      switch (*C) {
      case 'd':
      case 'i':
      case 'u':
        snprintf(Buf, sizeof(Buf), "%lld",
                 static_cast<long long>(
                     loadAsInt(cast<PrimType>(AT)->primKind(), Args[ArgI])));
        Out += Buf;
        break;
      case 'f':
      case 'g':
      case 'e':
        snprintf(Buf, sizeof(Buf), Spec.c_str(),
                 loadAsDouble(cast<PrimType>(AT)->primKind(), Args[ArgI]));
        Out += Buf;
        break;
      case 's': {
        void *SP;
        memcpy(&SP, Args[ArgI], 8);
        Out += SP ? static_cast<const char *>(SP) : "(null)";
        break;
      }
      case 'c':
        Out += static_cast<char>(
            loadAsInt(cast<PrimType>(AT)->primKind(), Args[ArgI]));
        break;
      }
      ++ArgI;
    }
    fputs(Out.c_str(), stdout);
    RetI32(static_cast<int32_t>(Out.size()));
    return true;
  }
  Err = "extern function '" + N +
        "' is not available in the interpreter backend";
  return false;
}

} // namespace interpruntime
} // namespace terracpp
