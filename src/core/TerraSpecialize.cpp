#include "core/TerraSpecialize.h"

#include "core/LuaInterp.h"
#include "core/TerraType.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <cmath>

using namespace terracpp;
using namespace terracpp::lua;

namespace {

/// Result of specializing a Terra expression: either a specialized tree, or
/// a host value not yet converted (needed so nested-table chains like
/// std.malloc can be resolved at specialization time, paper §4.1's implicit
/// escapes).
struct SpecRes {
  TerraExpr *E = nullptr;
  bool IsHostValue = false;
  Value V;

  static SpecRes tree(TerraExpr *E) {
    SpecRes R;
    R.E = E;
    return R;
  }
  static SpecRes host(Value V) {
    SpecRes R;
    R.IsHostValue = true;
    R.V = std::move(V);
    return R;
  }
};

class SpecState {
public:
  SpecState(TerraContext &Ctx, Interp &I, EnvPtr Environment)
      : Ctx(Ctx), I(I), Env(std::move(Environment)) {}

  TerraContext &Ctx;
  Interp &I;
  EnvPtr Env;

  bool fail(SourceLoc Loc, const std::string &Msg) {
    I.diags().error(Loc, Msg);
    return false;
  }

  void pushScope() { Env = std::make_shared<lua::Env>(Env); }
  void popScope() { Env = Env->parentPtr(); }

  //===------------------------------------------------------------------===//
  // Cloning (for quotation splices)
  //===------------------------------------------------------------------===//
  TerraExpr *cloneExpr(const TerraExpr *E);
  TerraStmt *cloneStmt(const TerraStmt *S);
  BlockStmt *cloneBlock(const BlockStmt *B);

  //===------------------------------------------------------------------===//
  // Specialization
  //===------------------------------------------------------------------===//
  bool specExprEx(const TerraExpr *E, SpecRes &R);
  TerraExpr *specExpr(const TerraExpr *E);
  TerraExpr *forceToExpr(SpecRes R, SourceLoc Loc);
  TerraExpr *valueToExpr(const Value &V, SourceLoc Loc);
  TerraStmt *specStmt(const TerraStmt *S);
  BlockStmt *specBlock(const BlockStmt *B, bool NewScope = true);
  bool specArgs(TerraExpr *const *Args, unsigned N,
                std::vector<TerraExpr *> &Out);
  bool resolveTypeAnnotation(const lua::Expr *HostExpr, SourceLoc Loc,
                             Type *&Out);
  bool specVarDeclName(const VarDeclName &In, VarDeclName &Out,
                       SourceLoc Loc);
};

//===----------------------------------------------------------------------===//
// Cloning
//===----------------------------------------------------------------------===//

BlockStmt *SpecState::cloneBlock(const BlockStmt *B) {
  auto *N = Ctx.make<BlockStmt>(B->loc());
  std::vector<TerraStmt *> Stmts;
  Stmts.reserve(B->NumStmts);
  for (unsigned I2 = 0; I2 != B->NumStmts; ++I2)
    Stmts.push_back(cloneStmt(B->Stmts[I2]));
  N->Stmts = Ctx.copyArray(Stmts);
  N->NumStmts = Stmts.size();
  return N;
}

TerraExpr *SpecState::cloneExpr(const TerraExpr *E) {
  if (!E)
    return nullptr;
  switch (E->kind()) {
  case TerraNode::NK_Lit: {
    auto *N = Ctx.make<LitExpr>(E->loc());
    *N = *cast<LitExpr>(E);
    return N;
  }
  case TerraNode::NK_Var: {
    auto *N = Ctx.make<VarExpr>(E->loc());
    *N = *cast<VarExpr>(E);
    return N;
  }
  case TerraNode::NK_Escape: {
    auto *N = Ctx.make<EscapeExpr>(E->loc());
    *N = *cast<EscapeExpr>(E);
    return N;
  }
  case TerraNode::NK_Select: {
    const auto *O = cast<SelectExpr>(E);
    auto *N = Ctx.make<SelectExpr>(E->loc());
    *N = *O;
    N->Base = cloneExpr(O->Base);
    return N;
  }
  case TerraNode::NK_Apply: {
    const auto *O = cast<ApplyExpr>(E);
    auto *N = Ctx.make<ApplyExpr>(E->loc());
    N->Callee = cloneExpr(O->Callee);
    std::vector<TerraExpr *> Args;
    for (unsigned I2 = 0; I2 != O->NumArgs; ++I2)
      Args.push_back(cloneExpr(O->Args[I2]));
    N->Args = Ctx.copyArray(Args);
    N->NumArgs = Args.size();
    return N;
  }
  case TerraNode::NK_MethodCall: {
    const auto *O = cast<MethodCallExpr>(E);
    auto *N = Ctx.make<MethodCallExpr>(E->loc());
    N->Obj = cloneExpr(O->Obj);
    N->Method = O->Method;
    N->MethodEscape = O->MethodEscape;
    std::vector<TerraExpr *> Args;
    for (unsigned I2 = 0; I2 != O->NumArgs; ++I2)
      Args.push_back(cloneExpr(O->Args[I2]));
    N->Args = Ctx.copyArray(Args);
    N->NumArgs = Args.size();
    return N;
  }
  case TerraNode::NK_BinOp: {
    const auto *O = cast<BinOpExpr>(E);
    auto *N = Ctx.make<BinOpExpr>(E->loc());
    N->Op = O->Op;
    N->LHS = cloneExpr(O->LHS);
    N->RHS = cloneExpr(O->RHS);
    return N;
  }
  case TerraNode::NK_UnOp: {
    const auto *O = cast<UnOpExpr>(E);
    auto *N = Ctx.make<UnOpExpr>(E->loc());
    N->Op = O->Op;
    N->Operand = cloneExpr(O->Operand);
    return N;
  }
  case TerraNode::NK_Index: {
    const auto *O = cast<IndexExpr>(E);
    auto *N = Ctx.make<IndexExpr>(E->loc());
    N->Base = cloneExpr(O->Base);
    N->Idx = cloneExpr(O->Idx);
    return N;
  }
  case TerraNode::NK_Constructor: {
    const auto *O = cast<ConstructorExpr>(E);
    auto *N = Ctx.make<ConstructorExpr>(E->loc());
    N->TypeCallee = cloneExpr(O->TypeCallee);
    N->TyRef = O->TyRef;
    N->FieldNames = O->FieldNames;
    std::vector<TerraExpr *> Inits;
    for (unsigned I2 = 0; I2 != O->NumInits; ++I2)
      Inits.push_back(cloneExpr(O->Inits[I2]));
    N->Inits = Ctx.copyArray(Inits);
    N->NumInits = Inits.size();
    return N;
  }
  case TerraNode::NK_Cast: {
    const auto *O = cast<CastExpr>(E);
    auto *N = Ctx.make<CastExpr>(E->loc());
    N->TyRef = O->TyRef;
    N->Operand = cloneExpr(O->Operand);
    N->Implicit = O->Implicit;
    return N;
  }
  case TerraNode::NK_FuncLit: {
    auto *N = Ctx.make<FuncLitExpr>(E->loc());
    *N = *cast<FuncLitExpr>(E);
    return N;
  }
  case TerraNode::NK_GlobalRef: {
    auto *N = Ctx.make<GlobalRefExpr>(E->loc());
    *N = *cast<GlobalRefExpr>(E);
    return N;
  }
  case TerraNode::NK_Intrinsic: {
    const auto *O = cast<IntrinsicExpr>(E);
    auto *N = Ctx.make<IntrinsicExpr>(E->loc());
    N->IK = O->IK;
    N->TyRef = O->TyRef;
    std::vector<TerraExpr *> Args;
    for (unsigned I2 = 0; I2 != O->NumArgs; ++I2)
      Args.push_back(cloneExpr(O->Args[I2]));
    N->Args = Ctx.copyArray(Args);
    N->NumArgs = Args.size();
    return N;
  }
  default:
    assert(false && "not an expression");
    return nullptr;
  }
}

TerraStmt *SpecState::cloneStmt(const TerraStmt *S) {
  switch (S->kind()) {
  case TerraNode::NK_Block:
    return cloneBlock(cast<BlockStmt>(S));
  case TerraNode::NK_VarDecl: {
    const auto *O = cast<VarDeclStmt>(S);
    auto *N = Ctx.make<VarDeclStmt>(S->loc());
    std::vector<VarDeclName> Names(O->Names, O->Names + O->NumNames);
    N->Names = Ctx.copyArray(Names);
    N->NumNames = O->NumNames;
    std::vector<TerraExpr *> Inits;
    for (unsigned I2 = 0; I2 != O->NumInits; ++I2)
      Inits.push_back(cloneExpr(O->Inits[I2]));
    N->Inits = Ctx.copyArray(Inits);
    N->NumInits = O->NumInits;
    return N;
  }
  case TerraNode::NK_Assign: {
    const auto *O = cast<AssignStmt>(S);
    auto *N = Ctx.make<AssignStmt>(S->loc());
    std::vector<TerraExpr *> L, R;
    for (unsigned I2 = 0; I2 != O->NumLHS; ++I2)
      L.push_back(cloneExpr(O->LHS[I2]));
    for (unsigned I2 = 0; I2 != O->NumRHS; ++I2)
      R.push_back(cloneExpr(O->RHS[I2]));
    N->LHS = Ctx.copyArray(L);
    N->NumLHS = L.size();
    N->RHS = Ctx.copyArray(R);
    N->NumRHS = R.size();
    return N;
  }
  case TerraNode::NK_If: {
    const auto *O = cast<IfStmt>(S);
    auto *N = Ctx.make<IfStmt>(S->loc());
    std::vector<TerraExpr *> Conds;
    std::vector<BlockStmt *> Blocks;
    for (unsigned I2 = 0; I2 != O->NumClauses; ++I2) {
      Conds.push_back(cloneExpr(O->Conds[I2]));
      Blocks.push_back(cloneBlock(O->Blocks[I2]));
    }
    N->Conds = Ctx.copyArray(Conds);
    N->Blocks = Ctx.copyArray(Blocks);
    N->NumClauses = O->NumClauses;
    N->ElseBlock = O->ElseBlock ? cloneBlock(O->ElseBlock) : nullptr;
    return N;
  }
  case TerraNode::NK_While: {
    const auto *O = cast<WhileStmt>(S);
    auto *N = Ctx.make<WhileStmt>(S->loc());
    N->Cond = cloneExpr(O->Cond);
    N->Body = cloneBlock(O->Body);
    return N;
  }
  case TerraNode::NK_ForNum: {
    const auto *O = cast<ForNumStmt>(S);
    auto *N = Ctx.make<ForNumStmt>(S->loc());
    N->Var = O->Var;
    N->Lo = cloneExpr(O->Lo);
    N->Hi = cloneExpr(O->Hi);
    N->Step = O->Step ? cloneExpr(O->Step) : nullptr;
    N->Body = cloneBlock(O->Body);
    return N;
  }
  case TerraNode::NK_Return: {
    const auto *O = cast<ReturnStmt>(S);
    auto *N = Ctx.make<ReturnStmt>(S->loc());
    N->Val = O->Val ? cloneExpr(O->Val) : nullptr;
    return N;
  }
  case TerraNode::NK_Break:
    return Ctx.make<BreakStmt>(S->loc());
  case TerraNode::NK_ExprStmt: {
    auto *N = Ctx.make<ExprStmt>(S->loc());
    N->E = cloneExpr(cast<ExprStmt>(S)->E);
    return N;
  }
  case TerraNode::NK_EscapeStmt: {
    auto *N = Ctx.make<EscapeStmt>(S->loc());
    N->Host = cast<EscapeStmt>(S)->Host;
    return N;
  }
  default:
    assert(false && "not a statement");
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Value -> Terra term conversion (paper: escapes resolve Lua values into
// Terra terms; only values representable as specialized terms are allowed)
//===----------------------------------------------------------------------===//

TerraExpr *SpecState::valueToExpr(const Value &V, SourceLoc Loc) {
  switch (V.kind()) {
  case Value::VK_Number: {
    auto *L = Ctx.make<LitExpr>(Loc);
    double N = V.asNumber();
    if (N == std::floor(N) && std::abs(N) < 9.0e15) {
      L->LK = LitExpr::LK_Int;
      L->IntVal = static_cast<int64_t>(N);
      // Lua integral numbers specialize as `int` when they fit (as in
      // Terra); wider values become int64.
      L->LitTy = (N >= -2147483648.0 && N <= 2147483647.0)
                     ? (Type *)Ctx.types().int32()
                     : (Type *)Ctx.types().int64();
    } else {
      L->LK = LitExpr::LK_Float;
      L->FloatVal = N;
      L->LitTy = Ctx.types().float64();
    }
    return L;
  }
  case Value::VK_Bool: {
    auto *L = Ctx.make<LitExpr>(Loc);
    L->LK = LitExpr::LK_Bool;
    L->BoolVal = V.asBool();
    L->LitTy = Ctx.types().boolType();
    return L;
  }
  case Value::VK_String: {
    auto *L = Ctx.make<LitExpr>(Loc);
    L->LK = LitExpr::LK_String;
    L->StrVal = Ctx.intern(V.asString());
    L->LitTy = Ctx.types().rawstring();
    return L;
  }
  case Value::VK_Symbol: {
    auto *X = Ctx.make<VarExpr>(Loc);
    X->Sym = V.asSymbol();
    X->Name = X->Sym->Name;
    return X;
  }
  case Value::VK_TerraFn: {
    auto *F = Ctx.make<FuncLitExpr>(Loc);
    F->Fn = V.asTerraFn();
    return F;
  }
  case Value::VK_Global: {
    auto *G = Ctx.make<GlobalRefExpr>(Loc);
    G->Global = V.asGlobal();
    return G;
  }
  case Value::VK_Quote: {
    const QuoteValue &Q = V.asQuote();
    if (!Q.isExpr()) {
      fail(Loc, "statement quotation used in expression position");
      return nullptr;
    }
    return cloneExpr(Q.Expr);
  }
  case Value::VK_CData: {
    CData *D = V.asCData();
    if (D->Ty->isPointer() && D->Bytes.size() == sizeof(void *)) {
      auto *L = Ctx.make<LitExpr>(Loc);
      L->LK = LitExpr::LK_Pointer;
      L->PtrVal = D->pointerValue();
      L->LitTy = D->Ty;
      return L;
    }
    fail(Loc, "only pointer cdata can be spliced into terra code");
    return nullptr;
  }
  case Value::VK_Type:
    fail(Loc, "terra type '" + V.asType()->str() +
                  "' used as a value in terra code (types are only valid in "
                  "casts, constructors, and annotations)");
    return nullptr;
  case Value::VK_Closure:
  case Value::VK_Builtin:
    fail(Loc, "lua functions cannot be used directly in terra code; convert "
              "them with terralib.cast(type, fn)");
    return nullptr;
  case Value::VK_Table:
    fail(Loc, "lua table cannot be spliced into terra code here");
    return nullptr;
  case Value::VK_Nil:
    fail(Loc, "nil cannot be spliced into terra code (a variable is "
              "undefined, or an escape returned nothing)");
    return nullptr;
  }
  return nullptr;
}

TerraExpr *SpecState::forceToExpr(SpecRes R, SourceLoc Loc) {
  if (!R.IsHostValue)
    return R.E;
  return valueToExpr(R.V, Loc);
}

TerraExpr *SpecState::specExpr(const TerraExpr *E) {
  SpecRes R;
  if (!specExprEx(E, R))
    return nullptr;
  return forceToExpr(std::move(R), E->loc());
}

bool SpecState::resolveTypeAnnotation(const lua::Expr *HostExpr, SourceLoc Loc,
                                      Type *&Out) {
  Value V;
  if (!I.evalExpr(HostExpr, Env, V))
    return false;
  Out = I.valueAsType(V);
  if (!Out)
    return fail(Loc, std::string("type annotation did not evaluate to a "
                                 "terra type (got ") +
                         V.typeName() + ")");
  return true;
}

bool SpecState::specExprEx(const TerraExpr *E, SpecRes &R) {
  switch (E->kind()) {
  case TerraNode::NK_Lit: {
    const auto *O = cast<LitExpr>(E);
    auto *L = Ctx.make<LitExpr>(E->loc());
    *L = *O;
    // Resolve the literal's natural type from the parser's width tags.
    TypeContext &TC = Ctx.types();
    switch (L->LK) {
    case LitExpr::LK_Int:
      L->LitTy = O->FloatVal == 0    ? (Type *)TC.int32()
                 : O->FloatVal == 64 ? (Type *)TC.int64()
                                     : (Type *)TC.uint64();
      break;
    case LitExpr::LK_Float:
      L->LitTy = O->IntVal == 32 ? (Type *)TC.float32() : (Type *)TC.float64();
      L->IntVal = 0;
      break;
    case LitExpr::LK_Bool:
      L->LitTy = TC.boolType();
      break;
    case LitExpr::LK_String:
      L->LitTy = TC.rawstring();
      break;
    case LitExpr::LK_Pointer:
      if (!L->LitTy)
        L->LitTy = TC.opaquePtr();
      break;
    }
    R = SpecRes::tree(L);
    return true;
  }
  case TerraNode::NK_Var: {
    const auto *O = cast<VarExpr>(E);
    if (O->Sym) {
      // Already-specialized node (builder-constructed or cloned).
      auto *N = Ctx.make<VarExpr>(E->loc());
      *N = *O;
      R = SpecRes::tree(N);
      return true;
    }
    Cell C = Env->lookup(O->Name);
    if (!C)
      return fail(E->loc(),
                  "variable '" + *O->Name + "' is not defined in terra code");
    if (C->isSymbol()) {
      auto *N = Ctx.make<VarExpr>(E->loc());
      N->Name = O->Name;
      N->Sym = C->asSymbol();
      R = SpecRes::tree(N);
      return true;
    }
    R = SpecRes::host(*C);
    return true;
  }
  case TerraNode::NK_Escape: {
    const auto *O = cast<EscapeExpr>(E);
    Value V;
    if (!I.evalExpr(O->Host, Env, V))
      return false;
    R = SpecRes::host(std::move(V));
    return true;
  }
  case TerraNode::NK_Select: {
    const auto *O = cast<SelectExpr>(E);
    const std::string *Field = O->Field;
    if (O->FieldEscape) {
      Value FV;
      if (!I.evalExpr(O->FieldEscape, Env, FV))
        return false;
      if (!FV.isString())
        return fail(E->loc(), "computed field name is not a string");
      Field = Ctx.intern(FV.asString());
    }
    SpecRes Base;
    if (!specExprEx(O->Base, Base))
      return false;
    if (Base.IsHostValue &&
        (Base.V.isTable() || Base.V.isType() || Base.V.isTerraFn() ||
         Base.V.isSymbol())) {
      // Implicit escape: nested lua table selection (std.malloc), type
      // reflection, etc. resolves at specialization time (paper §4.1).
      Value Out;
      if (!I.indexValue(Base.V, Value::string(*Field), Out, E->loc()))
        return false;
      R = SpecRes::host(std::move(Out));
      return true;
    }
    auto *N = Ctx.make<SelectExpr>(E->loc());
    N->Base = forceToExpr(std::move(Base), O->Base->loc());
    if (!N->Base)
      return false;
    N->Field = Field;
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_Apply: {
    const auto *O = cast<ApplyExpr>(E);
    SpecRes Callee;
    if (!specExprEx(O->Callee, Callee))
      return false;

    // Cast: a type value in call position, e.g. [&int8](p) or int64(x).
    if (Callee.IsHostValue && Callee.V.isType()) {
      if (O->NumArgs != 1)
        return fail(E->loc(), "cast to " + Callee.V.asType()->str() +
                                  " expects exactly one argument");
      TerraExpr *Arg = specExpr(O->Args[0]);
      if (!Arg)
        return false;
      auto *C = Ctx.make<CastExpr>(E->loc());
      C->TyRef = TypeRef::fromType(Callee.V.asType());
      C->Operand = Arg;
      R = SpecRes::tree(C);
      return true;
    }

    // Intrinsics exposed as host builtins: prefetch, sizeof.
    if (Callee.IsHostValue && Callee.V.isBuiltin()) {
      const std::string &BName = Callee.V.asBuiltin().Name;
      if (BName == "prefetch" || BName == "sizeof") {
        auto *N = Ctx.make<IntrinsicExpr>(E->loc());
        if (BName == "sizeof") {
          N->IK = IntrinsicKind::Sizeof;
          if (O->NumArgs != 1)
            return fail(E->loc(), "sizeof expects exactly one type argument");
          SpecRes ArgR;
          if (!specExprEx(O->Args[0], ArgR))
            return false;
          Type *T = ArgR.IsHostValue ? I.valueAsType(ArgR.V) : nullptr;
          if (!T)
            return fail(E->loc(), "sizeof expects a terra type");
          N->TyRef = TypeRef::fromType(T);
        } else {
          N->IK = IntrinsicKind::Prefetch;
          std::vector<TerraExpr *> Args;
          if (!specArgs(O->Args, O->NumArgs, Args))
            return false;
          N->Args = Ctx.copyArray(Args);
          N->NumArgs = Args.size();
        }
        R = SpecRes::tree(N);
        return true;
      }
      return fail(E->loc(), "lua function '" + BName +
                                "' cannot be called from terra code");
    }

    TerraExpr *CalleeE = forceToExpr(std::move(Callee), O->Callee->loc());
    if (!CalleeE)
      return false;
    std::vector<TerraExpr *> Args;
    if (!specArgs(O->Args, O->NumArgs, Args))
      return false;
    auto *N = Ctx.make<ApplyExpr>(E->loc());
    N->Callee = CalleeE;
    N->Args = Ctx.copyArray(Args);
    N->NumArgs = Args.size();
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_MethodCall: {
    const auto *O = cast<MethodCallExpr>(E);
    const std::string *Method = O->Method;
    if (O->MethodEscape) {
      Value MV;
      if (!I.evalExpr(O->MethodEscape, Env, MV))
        return false;
      if (!MV.isString())
        return fail(E->loc(), "computed method name is not a string");
      Method = Ctx.intern(MV.asString());
    }
    TerraExpr *Obj = specExpr(O->Obj);
    if (!Obj)
      return false;
    std::vector<TerraExpr *> Args;
    if (!specArgs(O->Args, O->NumArgs, Args))
      return false;
    auto *N = Ctx.make<MethodCallExpr>(E->loc());
    N->Obj = Obj;
    N->Method = Method;
    N->Args = Ctx.copyArray(Args);
    N->NumArgs = Args.size();
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_BinOp: {
    const auto *O = cast<BinOpExpr>(E);
    TerraExpr *L = specExpr(O->LHS);
    TerraExpr *Rt = specExpr(O->RHS);
    if (!L || !Rt)
      return false;
    auto *N = Ctx.make<BinOpExpr>(E->loc());
    N->Op = O->Op;
    N->LHS = L;
    N->RHS = Rt;
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_UnOp: {
    const auto *O = cast<UnOpExpr>(E);
    // `&T` where T specializes to a type is a pointer-type annotation used
    // in expression position via escapes; handle types specially.
    SpecRes OpR;
    if (!specExprEx(O->Operand, OpR))
      return false;
    if (O->Op == UnOpKind::AddrOf && OpR.IsHostValue && OpR.V.isType()) {
      R = SpecRes::host(
          Value::type(Ctx.types().pointer(OpR.V.asType())));
      return true;
    }
    TerraExpr *Operand = forceToExpr(std::move(OpR), O->Operand->loc());
    if (!Operand)
      return false;
    auto *N = Ctx.make<UnOpExpr>(E->loc());
    N->Op = O->Op;
    N->Operand = Operand;
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_Index: {
    const auto *O = cast<IndexExpr>(E);
    SpecRes BaseR;
    if (!specExprEx(O->Base, BaseR))
      return false;
    // T[N] in type position: array type.
    if (BaseR.IsHostValue && BaseR.V.isType()) {
      SpecRes IdxR;
      if (!specExprEx(O->Idx, IdxR))
        return false;
      if (IdxR.IsHostValue && IdxR.V.isNumber()) {
        R = SpecRes::host(Value::type(Ctx.types().array(
            BaseR.V.asType(),
            static_cast<uint64_t>(IdxR.V.asNumber()))));
        return true;
      }
      return fail(E->loc(), "array type length must be a constant number");
    }
    TerraExpr *Base = forceToExpr(std::move(BaseR), O->Base->loc());
    TerraExpr *Idx = specExpr(O->Idx);
    if (!Base || !Idx)
      return false;
    auto *N = Ctx.make<IndexExpr>(E->loc());
    N->Base = Base;
    N->Idx = Idx;
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_Constructor: {
    const auto *O = cast<ConstructorExpr>(E);
    Type *T = O->TyRef.Resolved;
    if (!T && O->TypeCallee) {
      SpecRes CR;
      if (!specExprEx(O->TypeCallee, CR))
        return false;
      if (!CR.IsHostValue || !CR.V.isType())
        return fail(E->loc(), "constructor expression requires a terra type "
                              "before '{'");
      T = CR.V.asType();
    }
    if (!T)
      return fail(E->loc(), "constructor has no type");
    std::vector<TerraExpr *> Inits;
    for (unsigned I2 = 0; I2 != O->NumInits; ++I2) {
      TerraExpr *Init = specExpr(O->Inits[I2]);
      if (!Init)
        return false;
      Inits.push_back(Init);
    }
    auto *N = Ctx.make<ConstructorExpr>(E->loc());
    N->TyRef = TypeRef::fromType(T);
    N->FieldNames = O->FieldNames;
    N->Inits = Ctx.copyArray(Inits);
    N->NumInits = Inits.size();
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_Cast: {
    const auto *O = cast<CastExpr>(E);
    Type *T = O->TyRef.Resolved;
    if (!T) {
      if (!resolveTypeAnnotation(O->TyRef.HostExpr, E->loc(), T))
        return false;
    }
    TerraExpr *Operand = specExpr(O->Operand);
    if (!Operand)
      return false;
    auto *N = Ctx.make<CastExpr>(E->loc());
    N->TyRef = TypeRef::fromType(T);
    N->Operand = Operand;
    N->Implicit = O->Implicit;
    R = SpecRes::tree(N);
    return true;
  }
  case TerraNode::NK_FuncLit:
  case TerraNode::NK_GlobalRef: {
    R = SpecRes::tree(cloneExpr(E));
    return true;
  }
  case TerraNode::NK_Intrinsic: {
    R = SpecRes::tree(cloneExpr(E));
    return true;
  }
  default:
    return fail(E->loc(), "internal: unexpected node in specialization");
  }
}

bool SpecState::specArgs(TerraExpr *const *Args, unsigned N,
                         std::vector<TerraExpr *> &Out) {
  for (unsigned I2 = 0; I2 != N; ++I2) {
    const TerraExpr *A = Args[I2];
    SpecRes R;
    if (!specExprEx(A, R))
      return false;
    if (R.IsHostValue && R.V.isTable()) {
      // An escape evaluating to a list splices multiple arguments
      // (`f([params])`, paper §6.3.1).
      Table *T = R.V.asTable();
      int64_t Len = T->arrayLength();
      for (int64_t K = 1; K <= Len; ++K) {
        TerraExpr *El = valueToExpr(T->getInt(K), A->loc());
        if (!El)
          return false;
        Out.push_back(El);
      }
      continue;
    }
    TerraExpr *Arg = forceToExpr(std::move(R), A->loc());
    if (!Arg)
      return false;
    Out.push_back(Arg);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool SpecState::specVarDeclName(const VarDeclName &In, VarDeclName &Out,
                                SourceLoc Loc) {
  Out = VarDeclName();
  Type *DeclTy = nullptr;
  if (In.Ty.Resolved)
    DeclTy = In.Ty.Resolved;
  else if (In.Ty.HostExpr && !resolveTypeAnnotation(In.Ty.HostExpr, Loc, DeclTy))
    return false;

  if (In.NameEscape) {
    Value V;
    if (!I.evalExpr(In.NameEscape, Env, V))
      return false;
    if (!V.isSymbol())
      return fail(Loc, "escaped declaration name must be a symbol (created "
                       "with symbol())");
    Out.Sym = V.asSymbol();
    if (DeclTy)
      Out.Sym->DeclaredType = DeclTy;
    Out.Name = Out.Sym->Name;
    Out.Ty = TypeRef::fromType(Out.Sym->DeclaredType);
    return true;
  }
  if (In.Sym) {
    // Already specialized (builder path).
    Out = In;
    return true;
  }
  // Hygiene: fresh symbol, bound into the shared lexical environment so
  // escaped host code sees it (paper rules LTDEFN / SLET).
  Out.Name = In.Name;
  Out.Sym = Ctx.freshSymbol(In.Name, DeclTy);
  Out.Ty = TypeRef::fromType(DeclTy);
  Env->define(In.Name, Value::symbol(Out.Sym));
  return true;
}

BlockStmt *SpecState::specBlock(const BlockStmt *B, bool NewScope) {
  if (NewScope)
    pushScope();
  std::vector<TerraStmt *> Stmts;
  bool OK = true;
  for (unsigned I2 = 0; I2 != B->NumStmts && OK; ++I2) {
    TerraStmt *S = specStmt(B->Stmts[I2]);
    if (!S) {
      OK = false;
      break;
    }
    Stmts.push_back(S);
  }
  if (NewScope)
    popScope();
  if (!OK)
    return nullptr;
  auto *N = Ctx.make<BlockStmt>(B->loc());
  N->Stmts = Ctx.copyArray(Stmts);
  N->NumStmts = Stmts.size();
  return N;
}

TerraStmt *SpecState::specStmt(const TerraStmt *S) {
  switch (S->kind()) {
  case TerraNode::NK_Block:
    return specBlock(cast<BlockStmt>(S));
  case TerraNode::NK_VarDecl: {
    const auto *O = cast<VarDeclStmt>(S);
    if (O->NumInits != 0 && O->NumInits != O->NumNames) {
      fail(S->loc(), "'var' initializer count does not match variable count");
      return nullptr;
    }
    // Initializers are specialized before the names are bound, so
    // `var x = x` refers to the enclosing x.
    std::vector<TerraExpr *> Inits;
    for (unsigned I2 = 0; I2 != O->NumInits; ++I2) {
      TerraExpr *Init = specExpr(O->Inits[I2]);
      if (!Init)
        return nullptr;
      Inits.push_back(Init);
    }
    std::vector<VarDeclName> Names(O->NumNames);
    for (unsigned I2 = 0; I2 != O->NumNames; ++I2)
      if (!specVarDeclName(O->Names[I2], Names[I2], S->loc()))
        return nullptr;
    auto *N = Ctx.make<VarDeclStmt>(S->loc());
    N->Names = Ctx.copyArray(Names);
    N->NumNames = Names.size();
    N->Inits = Ctx.copyArray(Inits);
    N->NumInits = Inits.size();
    return N;
  }
  case TerraNode::NK_Assign: {
    const auto *O = cast<AssignStmt>(S);
    std::vector<TerraExpr *> L, R;
    for (unsigned I2 = 0; I2 != O->NumLHS; ++I2) {
      TerraExpr *T = specExpr(O->LHS[I2]);
      if (!T)
        return nullptr;
      L.push_back(T);
    }
    for (unsigned I2 = 0; I2 != O->NumRHS; ++I2) {
      TerraExpr *T = specExpr(O->RHS[I2]);
      if (!T)
        return nullptr;
      R.push_back(T);
    }
    auto *N = Ctx.make<AssignStmt>(S->loc());
    N->LHS = Ctx.copyArray(L);
    N->NumLHS = L.size();
    N->RHS = Ctx.copyArray(R);
    N->NumRHS = R.size();
    return N;
  }
  case TerraNode::NK_If: {
    const auto *O = cast<IfStmt>(S);
    std::vector<TerraExpr *> Conds;
    std::vector<BlockStmt *> Blocks;
    for (unsigned I2 = 0; I2 != O->NumClauses; ++I2) {
      TerraExpr *C = specExpr(O->Conds[I2]);
      BlockStmt *B = C ? specBlock(O->Blocks[I2]) : nullptr;
      if (!C || !B)
        return nullptr;
      Conds.push_back(C);
      Blocks.push_back(B);
    }
    BlockStmt *ElseB = nullptr;
    if (O->ElseBlock) {
      ElseB = specBlock(O->ElseBlock);
      if (!ElseB)
        return nullptr;
    }
    auto *N = Ctx.make<IfStmt>(S->loc());
    N->Conds = Ctx.copyArray(Conds);
    N->Blocks = Ctx.copyArray(Blocks);
    N->NumClauses = Conds.size();
    N->ElseBlock = ElseB;
    return N;
  }
  case TerraNode::NK_While: {
    const auto *O = cast<WhileStmt>(S);
    TerraExpr *C = specExpr(O->Cond);
    BlockStmt *B = C ? specBlock(O->Body) : nullptr;
    if (!C || !B)
      return nullptr;
    auto *N = Ctx.make<WhileStmt>(S->loc());
    N->Cond = C;
    N->Body = B;
    return N;
  }
  case TerraNode::NK_ForNum: {
    const auto *O = cast<ForNumStmt>(S);
    TerraExpr *Lo = specExpr(O->Lo);
    TerraExpr *Hi = Lo ? specExpr(O->Hi) : nullptr;
    if (!Lo || !Hi)
      return nullptr;
    TerraExpr *Step = nullptr;
    if (O->Step) {
      Step = specExpr(O->Step);
      if (!Step)
        return nullptr;
    }
    pushScope();
    VarDeclName Var;
    bool OK = specVarDeclName(O->Var, Var, S->loc());
    BlockStmt *Body = OK ? specBlock(O->Body, /*NewScope=*/false) : nullptr;
    popScope();
    if (!OK || !Body)
      return nullptr;
    auto *N = Ctx.make<ForNumStmt>(S->loc());
    N->Var = Var;
    N->Lo = Lo;
    N->Hi = Hi;
    N->Step = Step;
    N->Body = Body;
    return N;
  }
  case TerraNode::NK_Return: {
    const auto *O = cast<ReturnStmt>(S);
    auto *N = Ctx.make<ReturnStmt>(S->loc());
    if (O->Val) {
      N->Val = specExpr(O->Val);
      if (!N->Val)
        return nullptr;
    }
    return N;
  }
  case TerraNode::NK_Break:
    return Ctx.make<BreakStmt>(S->loc());
  case TerraNode::NK_ExprStmt: {
    const auto *O = cast<ExprStmt>(S);
    TerraExpr *E = specExpr(O->E);
    if (!E)
      return nullptr;
    auto *N = Ctx.make<ExprStmt>(S->loc());
    N->E = E;
    return N;
  }
  case TerraNode::NK_EscapeStmt: {
    const auto *O = cast<EscapeStmt>(S);
    Value V;
    if (!I.evalExpr(O->Host, Env, V))
      return nullptr;
    // Splice: a statement quote, an expression quote, or a list of quotes.
    auto SpliceOne = [&](const Value &Q, std::vector<TerraStmt *> &Out) {
      if (Q.isQuote()) {
        const QuoteValue &QV = Q.asQuote();
        if (QV.isExpr()) {
          auto *ES = Ctx.make<ExprStmt>(S->loc());
          ES->E = cloneExpr(QV.Expr);
          Out.push_back(ES);
        } else {
          Out.push_back(cloneStmt(QV.Stmts));
        }
        return true;
      }
      return fail(S->loc(),
                  std::string("cannot splice a ") + Q.typeName() +
                      " in statement position (expected quote or list of "
                      "quotes)");
    };
    std::vector<TerraStmt *> Spliced;
    if (V.isTable()) {
      Table *T = V.asTable();
      int64_t Len = T->arrayLength();
      for (int64_t K = 1; K <= Len; ++K)
        if (!SpliceOne(T->getInt(K), Spliced))
          return nullptr;
    } else if (!SpliceOne(V, Spliced)) {
      return nullptr;
    }
    auto *B = Ctx.make<BlockStmt>(S->loc());
    B->Stmts = Ctx.copyArray(Spliced);
    B->NumStmts = Spliced.size();
    return B;
  }
  default:
    fail(S->loc(), "internal: unexpected statement in specialization");
    return nullptr;
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Specializer public interface
//===----------------------------------------------------------------------===//

Specializer::Specializer(TerraContext &Ctx, Interp &I) : Ctx(Ctx), I(I) {}

TerraFunction *Specializer::specializeFunction(const lua::TerraFuncExpr *Fn,
                                               EnvPtr Environment,
                                               TerraFunction *Target,
                                               StructType *SelfType) {
  // Specialization is eager — it happens the moment the host interpreter
  // evaluates the `terra` definition (paper Fig. 4) — so this span marks
  // the first stage boundary of every function's pipeline.
  trace::TraceSpan Span("specialize", "frontend");
  Span.arg("fn", Target           ? Target->Name
               : Fn->DebugName    ? *Fn->DebugName
                                  : std::string("anon"));
  telemetry::Registry &Reg = telemetry::Registry::global();
  Reg.counter("frontend.specializations").inc();
  telemetry::ScopedTimerUs Timer(Reg.histogram("frontend.specialize_us"));

  SpecState S(Ctx, I, std::move(Environment));
  TerraFunction *F =
      Target ? Target
             : Ctx.createFunction(Fn->DebugName ? *Fn->DebugName : "anon");
  if (Target && Target->isDefined()) {
    S.fail(Fn->loc(), "terra function '" + Target->Name +
                          "' is already defined (functions can be defined "
                          "only once)");
    return nullptr;
  }
  if (Fn->DebugName && F->Name == "anon")
    F->Name = *Fn->DebugName;

  S.pushScope();
  std::vector<TerraSymbol *> Params;

  if (SelfType) {
    const std::string *SelfName = Ctx.intern("self");
    TerraSymbol *Self =
        Ctx.freshSymbol(SelfName, Ctx.types().pointer(SelfType));
    S.Env->define(SelfName, Value::symbol(Self));
    Params.push_back(Self);
  }

  bool OK = true;
  for (unsigned I2 = 0; I2 != Fn->NumParams && OK; ++I2) {
    const lua::TerraParamDecl &P = Fn->Params[I2];
    Type *AnnotTy = nullptr;
    if (P.TypeExpr) {
      Value TV;
      if (!I.evalExpr(P.TypeExpr, S.Env, TV)) {
        OK = false;
        break;
      }
      AnnotTy = I.valueAsType(TV);
      if (!AnnotTy) {
        S.fail(Fn->loc(), "parameter type annotation is not a terra type");
        OK = false;
        break;
      }
    }
    if (P.NameEscape) {
      Value V;
      if (!I.evalExpr(P.NameEscape, S.Env, V)) {
        OK = false;
        break;
      }
      auto AddSym = [&](const Value &SV) {
        if (!SV.isSymbol())
          return S.fail(Fn->loc(), "escaped parameter must be a symbol or a "
                                   "list of symbols");
        TerraSymbol *Sym = SV.asSymbol();
        if (AnnotTy)
          Sym->DeclaredType = AnnotTy;
        if (!Sym->DeclaredType)
          return S.fail(Fn->loc(), "escaped parameter symbol has no type");
        Params.push_back(Sym);
        return true;
      };
      if (V.isTable()) {
        Table *T = V.asTable();
        int64_t Len = T->arrayLength();
        for (int64_t K = 1; K <= Len && OK; ++K)
          OK = AddSym(T->getInt(K));
      } else {
        OK = AddSym(V);
      }
      continue;
    }
    if (!AnnotTy) {
      S.fail(Fn->loc(),
             "parameter '" + *P.Name + "' is missing a type annotation");
      OK = false;
      break;
    }
    TerraSymbol *Sym = Ctx.freshSymbol(P.Name, AnnotTy);
    S.Env->define(P.Name, Value::symbol(Sym));
    Params.push_back(Sym);
  }

  Type *RetTy = nullptr;
  if (OK && Fn->RetTypeExpr) {
    Value RV;
    if (!I.evalExpr(Fn->RetTypeExpr, S.Env, RV)) {
      OK = false;
    } else {
      RetTy = I.valueAsType(RV);
      if (!RetTy) {
        S.fail(Fn->loc(), "return type annotation is not a terra type");
        OK = false;
      }
    }
  }

  BlockStmt *Body = nullptr;
  if (OK)
    Body = S.specBlock(Fn->Body, /*NewScope=*/false);
  S.popScope();
  if (!OK || !Body)
    return nullptr;

  F->Params = Ctx.copyArray(Params);
  F->NumParams = Params.size();
  F->RetTy = RetTy ? TypeRef::fromType(RetTy) : TypeRef();
  F->Body = Body;
  F->State = TerraFunction::SK_Defined;
  return F;
}

bool Specializer::specializeQuote(const lua::TerraQuoteExpr *Q,
                                  EnvPtr Environment, QuoteValue &Out) {
  SpecState S(Ctx, I, std::move(Environment));
  if (Q->ExprTree) {
    TerraExpr *E = S.specExpr(Q->ExprTree);
    if (!E)
      return false;
    Out.Expr = E;
    Out.Stmts = nullptr;
    return true;
  }
  BlockStmt *B = S.specBlock(Q->Stmts);
  if (!B)
    return false;
  Out.Stmts = B;
  Out.Expr = nullptr;
  return true;
}

TerraExpr *Specializer::cloneExpr(const TerraExpr *E) {
  SpecState S(Ctx, I, nullptr);
  return S.cloneExpr(E);
}

TerraStmt *Specializer::cloneStmt(const TerraStmt *S2) {
  SpecState S(Ctx, I, nullptr);
  return S.cloneStmt(S2);
}
