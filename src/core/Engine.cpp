#include "core/Engine.h"

#include "analysis/Analysis.h"
#include "core/LuaStdlib.h"
#include "core/Parser.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <unistd.h>

using namespace terracpp;
using namespace terracpp::lua;

/// True when a `cc` binary exists somewhere on PATH. Cached: the PATH scan
/// happens once per process, and the answer feeds only the *default*
/// backend choice (TERRACPP_BACKEND overrides it either way).
static bool ccOnPath() {
  static const bool Found = [] {
    const char *Path = getenv("PATH");
    if (!Path || !*Path)
      return false;
    std::string P(Path);
    size_t I = 0;
    while (I <= P.size()) {
      size_t Next = P.find(':', I);
      std::string Dir =
          P.substr(I, Next == std::string::npos ? P.size() - I : Next - I);
      if (Dir.empty())
        Dir = ".";
      std::string Cand = Dir + "/cc";
      if (::access(Cand.c_str(), X_OK) == 0)
        return true;
      if (Next == std::string::npos)
        break;
      I = Next + 1;
    }
    return false;
  }();
  return Found;
}

BackendKind Engine::defaultBackend() {
  const char *Env = getenv("TERRACPP_BACKEND");
  if (Env && std::string(Env) == "interp")
    return BackendKind::Interp;
  if (Env && std::string(Env) == "native")
    return BackendKind::Native;
  // TERRACPP_JIT_TIER=0 pins execution to tier 0 (bytecode VM, tree-walker
  // fallback); "auto" resolves to Native + TierPolicy::Auto in the
  // constructor via tierPolicyFromEnv().
  const char *TierEnv = getenv("TERRACPP_JIT_TIER");
  if (TierEnv && std::string(TierEnv) == "0")
    return BackendKind::Interp;
  // No C compiler installed: run on the compiler-free tiers (baseline JIT
  // over the bytecode VM) instead of failing every first call.
  if (!ccOnPath())
    return BackendKind::Interp;
  return BackendKind::Native;
}

Engine::Engine(BackendKind Backend) : Diags(&SM) {
  TCtx = std::make_unique<TerraContext>(Diags);
  I = std::make_unique<Interp>(*TCtx, Diags);
  Comp = std::make_unique<TerraCompiler>(*TCtx, *I, Backend,
                                         tierPolicyFromEnv());
  // Wire the interpreter to the compiler.
  TerraCompiler *CompP = Comp.get();
  I->hooks().Typecheck = [CompP](TerraFunction *F) {
    return CompP->typechecker().check(F);
  };
  I->hooks().CallTerra = [CompP](TerraFunction *F, std::vector<Value> &Args,
                                 std::vector<Value> &Results, SourceLoc Loc) {
    return CompP->callFromHost(F, Args, Results, Loc);
  };
  installStdlib(*I, *Comp);
}

Engine::~Engine() = default;

bool Engine::run(const std::string &Source, const std::string &Name) {
  uint32_t BufferId = SM.addBuffer(Name, Source);
  const Block *Chunk;
  {
    trace::TraceSpan Span("parse", "frontend");
    Span.arg("chunk", Name);
    telemetry::ScopedTimerUs T(
        telemetry::Registry::global().histogram("frontend.parse_us"));
    Parser P(*TCtx, SM.bufferContents(BufferId), BufferId, Diags);
    Chunk = P.parseChunk();
  }
  if (!Chunk || Diags.hasErrors())
    return false;
  trace::TraceSpan Span("run_chunk", "frontend");
  Span.arg("chunk", Name);
  return I->runChunk(Chunk);
}

bool Engine::runFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    Diags.error(SourceLoc(), "cannot open file " + Path);
    return false;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return run(SS.str(), Path);
}

Value Engine::global(const std::string &Name) {
  Cell C = I->globalEnv()->lookup(TCtx->intern(Name));
  return C ? *C : Value::nil();
}

void Engine::setGlobal(const std::string &Name, Value V) {
  I->globalEnv()->define(TCtx->intern(Name), std::move(V));
}

TerraFunction *Engine::terraFunction(const std::string &GlobalName) {
  Value V = global(GlobalName);
  return V.isTerraFn() ? V.asTerraFn() : nullptr;
}

std::vector<std::string> Engine::terraFunctionNames() {
  std::vector<std::string> Names;
  I->globalEnv()->forEachLocal([&](const std::string &Name, const Value &V) {
    if (V.isTerraFn())
      Names.push_back(Name);
  });
  std::sort(Names.begin(), Names.end());
  return Names;
}

void *Engine::rawPointer(const std::string &GlobalName) {
  TerraFunction *F = terraFunction(GlobalName);
  if (!F) {
    Diags.error(SourceLoc(),
                "no terra function named '" + GlobalName + "'");
    return nullptr;
  }
  return rawPointer(F);
}

void *Engine::rawPointer(TerraFunction *F) {
  // Under tiered execution this forces promotion to native code: a raw
  // pointer handed to the host must be a machine address, never a tier-0
  // handle.
  return Comp->nativePointer(F);
}

bool Engine::compileAll(const std::vector<TerraFunction *> &Fns) {
  return Comp->compileAll(Fns);
}

bool Engine::call(const Value &Fn, std::vector<Value> Args,
                  std::vector<Value> &Results) {
  return I->call(Fn, std::move(Args), Results, SourceLoc());
}

unsigned Engine::analyzeAll(analysis::AnalysisReport *Report) {
  analysis::AnalyzeOptions Opts;
  Opts.Lints = Comp->analyzeLints();
  Opts.Werror = Comp->analyzeWerror();

  // Collect every typechecked definition and analyze them as a single
  // component, so the interprocedural pass sees all call edges regardless
  // of which functions share a compilation root.
  std::vector<TerraFunction *> Fns;
  for (const auto &FPtr : TCtx->functions()) {
    TerraFunction *F = FPtr.get();
    if (F->IsExtern || F->HostClosure || !F->Body || F->AnalysisDone ||
        F->State == TerraFunction::SK_Declared)
      continue;
    // Typecheck errors keep their own diagnostics; the checkers need a
    // typed tree, so such functions are skipped.
    if (!Comp->typechecker().check(F))
      continue;
    Fns.push_back(F);
  }
  analysis::AnalysisReport R = analysis::analyzeComponent(Diags, Fns, Opts);
  unsigned N = R.NumFindings;
  if (Report)
    *Report = std::move(R);
  return N;
}
