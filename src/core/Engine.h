//===- Engine.h - Public facade for the terracpp system ---------*- C++ -*-===//
//
// The Engine owns one complete Lua/Terra universe: source manager,
// diagnostics, Terra context, host interpreter, and compiler. It is the
// entry point applications use:
//
//   terracpp::Engine E;
//   E.run("terra add(a: int, b: int): int return a + b end");
//   auto *Add = (int32_t(*)(int32_t, int32_t))E.rawPointer("add");
//
// Substrate libraries (auto-tuner, Orion, class system, DataTable) are
// built on the Engine plus the C++ staging API in StagingAPI.h.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_ENGINE_H
#define TERRACPP_CORE_ENGINE_H

#include "core/LuaInterp.h"
#include "core/TerraCompiler.h"

#include <memory>
#include <string>

namespace terracpp {

namespace analysis {
struct AnalysisReport;
} // namespace analysis

class Engine {
public:
  /// Backend defaults to Native; set the TERRACPP_BACKEND environment
  /// variable to "interp" to run without a C compiler.
  explicit Engine(BackendKind Backend = defaultBackend());
  ~Engine();
  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  static BackendKind defaultBackend();

  /// Parses and runs a combined Lua/Terra chunk. False on error (see
  /// errors()).
  bool run(const std::string &Source, const std::string &Name = "chunk");
  bool runFile(const std::string &Path);

  /// Reads/writes a global host variable.
  lua::Value global(const std::string &Name);
  void setGlobal(const std::string &Name, lua::Value V);

  /// Looks up a global holding a Terra function.
  TerraFunction *terraFunction(const std::string &GlobalName);

  /// Names of globals currently bound to Terra functions, sorted. This is
  /// the callable surface a compiled script exposes (the terrad server
  /// reports it per compile handle).
  std::vector<std::string> terraFunctionNames();

  /// Compiles the named Terra function and returns its native code address
  /// (null in interp backend or on error). Cast to the correct signature.
  void *rawPointer(const std::string &GlobalName);
  void *rawPointer(TerraFunction *F);

  /// Batch-compiles every function's connected component through the JIT's
  /// parallel pipeline (TerraCompiler::compileAll). Returns true only if
  /// all succeeded; individual results are observable via each function's
  /// RawPtr.
  bool compileAll(const std::vector<TerraFunction *> &Fns);

  /// Calls a host value (closure or Terra function) with host-value args.
  bool call(const lua::Value &Fn, std::vector<lua::Value> Args,
            std::vector<lua::Value> &Results);

  /// Typechecks and statically analyzes every defined Terra function
  /// (terracpp --analyze) without generating code. Returns the number of
  /// analysis findings reported; functions that fail to typecheck are
  /// skipped after their type errors are reported. When \p Report is
  /// non-null it receives the full structured report (machine-readable
  /// findings for --analyze-json).
  unsigned analyzeAll(analysis::AnalysisReport *Report = nullptr);

  DiagnosticEngine &diags() { return Diags; }
  TerraContext &context() { return *TCtx; }
  lua::Interp &interp() { return *I; }
  TerraCompiler &compiler() { return *Comp; }
  SourceManager &sourceManager() { return SM; }

  /// All diagnostics rendered as one string; clears nothing.
  std::string errors() const { return Diags.renderAll(); }

private:
  SourceManager SM;
  DiagnosticEngine Diags;
  std::unique_ptr<TerraContext> TCtx;
  std::unique_ptr<lua::Interp> I;
  std::unique_ptr<TerraCompiler> Comp;
};

} // namespace terracpp

#endif // TERRACPP_CORE_ENGINE_H
