//===- TerraInterpBackend.h - Interpreted execution backend -----*- C++ -*-===//
//
// Execution engine that runs typechecked Terra functions with no C compiler
// required. Since the tiered-execution work (DESIGN.md §10) it is a thin
// driver over two engines:
//
//  * the register-bytecode VM (TerraBytecode/TerraVM) — the tier-0 engine,
//    used whenever a function compiles to bytecode; and
//  * the original tree-walking evaluator (TEval, in the .cpp) — the
//    reference implementation, kept as the fallback for constructs the
//    bytecode compiler does not cover and as the oracle for differential
//    tests (TERRACPP_INTERP=tree, or setForceTree, pins every execution to
//    it).
//
// Both engines implement the same separate-evaluation semantics as the
// native backend (Terra code never touches the host store) and report the
// same "terra interpreter: ..." diagnostics. Values of function type hold a
// TerraFunction* (never a machine address), so interpreted code can call
// externs, host wrappers, and other interpreted functions uniformly.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAINTERPBACKEND_H
#define TERRACPP_CORE_TERRAINTERPBACKEND_H

#include "core/TerraAST.h"
#include "support/Telemetry.h"

#include <cstdint>

namespace terracpp {

class TerraCompiler;

class TerraInterpBackend {
public:
  TerraInterpBackend(TerraContext &Ctx, TerraCompiler &Compiler);

  /// Compiles \p F to bytecode when possible and installs an interpretive
  /// Entry thunk. Idempotent.
  bool prepare(TerraFunction *F);

  /// Runs \p F over FFI-convention arguments through the best available
  /// interpreted engine: bytecode VM if \p F compiled to bytecode and the
  /// tree-walker is not forced, tree-walker otherwise. When \p BackEdges is
  /// non-null it receives the VM's loop back-edge count for this call (0
  /// for tree-walked calls) — the tier dispatcher feeds it into promotion
  /// heuristics. False when execution aborted on a trap or error.
  bool execute(const TerraFunction *F, void **Args, void *Ret,
               uint64_t *BackEdges = nullptr);

  /// Pins execution to the tree-walking evaluator (differential tests).
  /// Initialized from TERRACPP_INTERP=tree.
  void setForceTree(bool Force) { ForceTree = Force; }
  bool forceTree() const { return ForceTree; }

private:
  TerraContext &Ctx;
  TerraCompiler &Compiler;
  bool ForceTree = false;
  telemetry::Histogram &MDispatchUs; ///< vm.dispatch_us (outermost calls).
  telemetry::Counter &MBackEdges;    ///< vm.backedges.
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAINTERPBACKEND_H
