//===- TerraInterpBackend.h - Tree-walking Terra evaluator ------*- C++ -*-===//
//
// Fallback execution engine that evaluates typechecked Terra trees directly
// over raw memory, with no C compiler required. It implements the same
// separate-evaluation semantics as the native backend (Terra code never
// touches the host store) and is used for differential testing of the
// native backend and for environments without a toolchain.
//
// Representation notes: values are raw bytes typed by Type*. In this
// backend, values of function type hold a TerraFunction* (never a machine
// address), so interpreted code can call externs, host wrappers, and other
// interpreted functions uniformly.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAINTERPBACKEND_H
#define TERRACPP_CORE_TERRAINTERPBACKEND_H

#include "core/TerraAST.h"

namespace terracpp {

class TerraCompiler;

class TerraInterpBackend {
public:
  TerraInterpBackend(TerraContext &Ctx, TerraCompiler &Compiler);

  /// Installs an interpretive Entry thunk on \p F. Idempotent.
  bool prepare(TerraFunction *F);

private:
  TerraContext &Ctx;
  TerraCompiler &Compiler;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAINTERPBACKEND_H
