//===- TerraBaselineJIT.cpp - Tier-0.5 x86-64 template JIT ----------------===//
//
// One-pass emission from register bytecode to x86-64. The compiled frame:
//
//   [rsp + 0            .. FrameRound)   byte-addressed frame (32-aligned)
//   [rsp + FrameRound   .. +8*NumRegs)   Slot register file R
//   [rsp + ZeroBytes    .. +24)          saved Args / Ret / Env pointers
//
// rsp is 32-aligned for the whole body (so every call site satisfies the
// SysV 16-byte rule), rbp links the caller frame for the epilogue, rbx
// counts loop back edges (the promotion profile signal, returned in rax),
// and the four most-referenced virtual registers are pinned in r12-r15 with
// their memory slots as spill homes. Everything that is not straight-line
// arithmetic — calls, traps, function literals, memcpy — goes through the
// extern "C" helpers below into the same VM routines the interpreter uses,
// which is what keeps trap messages, source locations, and FFI dispatch
// bit-identical across tiers.
//
//===----------------------------------------------------------------------===//

#include "core/TerraBaselineJIT.h"

#include "core/Assembler.h"
#include "core/TerraAST.h"
#include "core/TerraCompiler.h"
#include "core/TerraType.h"
#include "core/TerraVM.h"
#include "support/EnvParse.h"
#include "support/Telemetry.h"

#include <cstring>
#include <vector>

using namespace terracpp;
using namespace terracpp::bytecode;
using namespace terracpp::x64;

//===----------------------------------------------------------------------===//
// Out-of-line runtime helpers (addresses baked into emitted code)
//===----------------------------------------------------------------------===//

namespace {
/// Sentinel distinguishing "emission failed, stop trying" from "untried".
void *const BaselineFailed = reinterpret_cast<void *>(uintptr_t(1));
} // namespace

extern "C" {

/// Executes call site \p Idx. Returns 1 to continue, 0 to unwind (the
/// emitted code jumps to its epilogue; failure state lives in Env).
uint64_t terracppBaselineCall(const bytecode::Function *F, uint64_t Idx,
                              Slot *R, uint8_t *Frame, vm::ExecEnv *Env) {
  const CallSite &CS = F->Calls[static_cast<size_t>(Idx)];
  TerraFunction *Callee = CS.Callee;
  // Baseline-to-baseline fast path for pure-bytecode callees outside tiered
  // mode. Tiered callees must go through their dispatcher Entry (inside
  // vm::execCallSite) so call counting sees them.
  if (Callee && !Callee->IsExtern && !Callee->HostClosure && !Callee->Tier &&
      Callee->Bytecode) {
    void *E = Callee->BaselineEntry.load(std::memory_order_acquire);
    if (!E) {
      if (BaselineJIT *BJ = Env->Comp.baseline())
        E = reinterpret_cast<void *>(BJ->entryFor(Callee));
    }
    if (E && E != BaselineFailed) {
      // The nested activation's frame goes on the native stack; charge the
      // shared depth budget (weighted by frame size) so deep guest
      // recursion fails with the interpreter's diagnostic instead of
      // overrunning the host stack.
      vm::CallDepthScope DepthScope(BaselineJIT::depthUnits(Callee));
      if (DepthScope.exceeded()) {
        vm::failStackOverflow(*Env);
        return 0;
      }
      void *ArgPtrs[MaxCallArgs];
      for (size_t I = 0, N = CS.Args.size(); I != N; ++I) {
        const CallSite::Arg &A = CS.Args[I];
        ArgPtrs[I] = A.ByAddr ? R[A.Reg].P : static_cast<void *>(&R[A.Reg]);
      }
      void *RetPtr = (CS.RetTy && !CS.RetTy->isVoid())
                         ? Frame + CS.RetFrameOff
                         : nullptr;
      Env->BackEdges +=
          reinterpret_cast<BaselineJIT::Fn>(E)(ArgPtrs, RetPtr, Env);
      if (Env->Failed)
        return 0;
      if (CS.DstReg != 0xFFFF && RetPtr)
        vm::loadCallResult(R[CS.DstReg], CS.RetLoad, RetPtr);
      return 1;
    }
  }
  return vm::execCallSite(*F, Idx, R, Frame, *Env) ? 1 : 0;
}

uint64_t terracppBaselineTrap(const bytecode::Function *F, uint64_t Idx,
                              vm::ExecEnv *Env) {
  vm::execTrap(*F, Idx, *Env);
  return 0;
}

uint64_t terracppBaselineFnLit(TerraFunction *Fn, Slot *Dst,
                               vm::ExecEnv *Env) {
  return vm::execFnLit(Fn, *Dst, *Env) ? 1 : 0;
}

} // extern "C"

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

namespace {

/// Operand shape of an opcode: which of A/B/C (and Imm, for ForCond) name
/// virtual registers. Drives the pinning census.
enum class Shape { A, AB, ABC, ForCond, None };

Shape shapeOf(Op O) {
  switch (O) {
  case Op::AddI: case Op::SubI: case Op::MulI: case Op::DivI: case Op::ModI:
  case Op::DivU: case Op::ModU: case Op::AddF: case Op::SubF: case Op::MulF:
  case Op::DivF: case Op::AddF32: case Op::SubF32: case Op::MulF32:
  case Op::DivF32: case Op::LtI: case Op::LeI: case Op::GtI: case Op::GeI:
  case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU: case Op::EqI:
  case Op::NeI: case Op::LtF: case Op::LeF: case Op::GtF: case Op::GeF:
  case Op::EqF: case Op::NeF: case Op::LtF32: case Op::LeF32: case Op::GtF32:
  case Op::GeF32: case Op::EqF32: case Op::NeF32: case Op::MinI:
  case Op::MaxI: case Op::MinU: case Op::MaxU: case Op::MinF: case Op::MaxF:
  case Op::MinF32: case Op::MaxF32: case Op::PtrAdd: case Op::PtrSub:
  case Op::PtrDiff: case Op::ShlI: case Op::ShrI: case Op::ShrU:
    return Shape::ABC;
  case Op::Mov: case Op::NegI: case Op::NegF: case Op::NegF32: case Op::NotB:
  case Op::WrapI8: case Op::WrapI16: case Op::WrapI32: case Op::WrapU8:
  case Op::WrapU16: case Op::WrapU32: case Op::WrapBool: case Op::I2F:
  case Op::I2F32: case Op::F2I8: case Op::F2I16: case Op::F2I32:
  case Op::F2I64: case Op::F2U8: case Op::F2U16: case Op::F2U32:
  case Op::F2U64: case Op::F2Bool: case Op::F32ToF: case Op::FToF32:
  case Op::LdI8: case Op::LdI16: case Op::LdI32: case Op::LdI64:
  case Op::LdU8: case Op::LdU16: case Op::LdU32: case Op::LdU64:
  case Op::LdF32: case Op::LdF64: case Op::LdP: case Op::StI8:
  case Op::StI16: case Op::StI32: case Op::StI64: case Op::StF32:
  case Op::StF64: case Op::StP: case Op::MemCpy: case Op::PtrAddImm:
    return Shape::AB;
  case Op::ConstI: case Op::ConstF: case Op::ConstF32: case Op::ConstP:
  case Op::FnLit: case Op::FrameAddr: case Op::MemZero: case Op::TrapIfNull:
  case Op::TrapIfZero: case Op::TrapIfShiftGE: case Op::JmpIfFalse:
  case Op::JmpIfTrue: case Op::RetVal:
    return Shape::A;
  case Op::ForCond:
    return Shape::ForCond;
  case Op::Jmp: case Op::JmpBack: case Op::Call: case Op::Ret: case Op::Trap:
    return Shape::None;
  }
  return Shape::None;
}

class Emitter {
public:
  explicit Emitter(const bytecode::Function &F) : F(F) {}

  /// Emits the whole function; false = bailout (unsupported construct).
  bool emit();

  const std::vector<uint8_t> &code() const { return A.code(); }

  /// Native-stack bytes one activation consumes (valid after emit()).
  uint32_t stackBytes() const { return static_cast<uint32_t>(Total); }

private:
  using Label = Assembler::Label;

  /// Cap on one activation's native-stack footprint (frame + register file
  /// + saved pointers). The prologue grows the stack with a single unprobed
  /// `sub rsp, Total`; a decrement larger than the kernel's stack guard gap
  /// (1 MiB on Linux by default) could jump clean over the guard pages and
  /// the following `rep stosq` would corrupt an adjacent mapping instead of
  /// faulting (stack clash). 256 KiB keeps every decrement far inside the
  /// gap; bigger activations bail to the VM, whose frames live on the heap.
  static constexpr uint32_t MaxStackBytes = 256u << 10;
  static constexpr int NumPinRegs = 4;
  static constexpr Reg PinRegs[NumPinRegs] = {R12, R13, R14, R15};

  bool layoutAndPin();
  bool emitPrologue();
  void emitEpilogue();
  bool emitParam(const bytecode::Function::Param &P, size_t Index);
  bool emitInsn(const Insn &I);
  void emitTrapStubs();

  int pinOf(uint16_t VReg) const {
    for (int I = 0; I != NumPinned; ++I)
      if (PinVReg[I] == VReg)
        return I;
    return -1;
  }
  int32_t slotOff(uint16_t VReg) const {
    return OffR + 8 * static_cast<int32_t>(VReg);
  }
  void loadSlot(Reg D, uint16_t VReg) {
    int P = pinOf(VReg);
    if (P >= 0)
      A.movRR(D, PinRegs[P]);
    else
      A.loadRM(D, RSP, slotOff(VReg));
  }
  void storeSlot(uint16_t VReg, Reg S) {
    int P = pinOf(VReg);
    if (P >= 0)
      A.movRR(PinRegs[P], S);
    else
      A.storeMR(RSP, slotOff(VReg), S);
  }
  void loadSlotX(Xmm D, uint16_t VReg) {
    int P = pinOf(VReg);
    if (P >= 0)
      A.movqXR(D, PinRegs[P]);
    else
      A.movsdXM(D, RSP, slotOff(VReg));
  }
  void storeSlotX(uint16_t VReg, Xmm S) {
    int P = pinOf(VReg);
    if (P >= 0)
      A.movqRX(PinRegs[P], S);
    else
      A.movsdMX(RSP, slotOff(VReg), S);
  }
  void storeSlotImm(uint16_t VReg, int64_t Imm) {
    int P = pinOf(VReg);
    if (P >= 0) {
      A.movRI(PinRegs[P], Imm);
    } else if (Imm >= INT32_MIN && Imm <= INT32_MAX) {
      A.storeMI32(RSP, slotOff(VReg), static_cast<int32_t>(Imm));
    } else {
      A.movRI(RAX, Imm);
      A.storeMR(RSP, slotOff(VReg), RAX);
    }
  }
  /// Spills pinned registers to their slots around helper calls that read
  /// or write the register file in memory.
  void flushPins() {
    for (int I = 0; I != NumPinned; ++I)
      A.storeMR(RSP, slotOff(PinVReg[I]), PinRegs[I]);
  }
  void reloadPins() {
    for (int I = 0; I != NumPinned; ++I)
      A.loadRM(PinRegs[I], RSP, slotOff(PinVReg[I]));
  }
  void callHelper(const void *Fn) {
    A.movRI(RAX, reinterpret_cast<int64_t>(Fn));
    A.callR(RAX);
  }
  Label trapLabel(int64_t TrapIdx) {
    for (const auto &[Idx, L] : TrapStubs)
      if (Idx == TrapIdx)
        return L;
    Label L = A.newLabel();
    TrapStubs.emplace_back(TrapIdx, L);
    return L;
  }
  /// setcc + zero-extend into a full canonical bool slot value.
  void boolResult(uint16_t Dst, CC C) {
    A.setcc(C, RAX);
    A.movzx8RR(RAX, RAX);
    storeSlot(Dst, RAX);
  }

  const bytecode::Function &F;
  Assembler A;

  int32_t FrameRound = 0, OffR = 0, ZeroBytes = 0, Total = 0;
  int32_t OffSavedArgs = 0, OffSavedRet = 0, OffSavedEnv = 0;

  uint16_t PinVReg[NumPinRegs] = {};
  int NumPinned = 0;

  std::vector<Label> InsnLabel;
  Label Epilogue = 0;
  std::vector<std::pair<int64_t, Label>> TrapStubs;
};

constexpr Reg Emitter::PinRegs[];

bool Emitter::layoutAndPin() {
  uint64_t RegBytes = uint64_t(F.NumRegs) * 8;
  uint64_t Round = (uint64_t(F.FrameBytes) + 31) & ~uint64_t(31);
  if (Round + RegBytes + 24 > MaxStackBytes)
    return false; // Large activations stay on the VM's heap buffer.
  FrameRound = static_cast<int32_t>(Round);
  OffR = FrameRound;
  ZeroBytes = FrameRound + static_cast<int32_t>(RegBytes);
  OffSavedArgs = ZeroBytes;
  OffSavedRet = ZeroBytes + 8;
  OffSavedEnv = ZeroBytes + 16;
  Total = ZeroBytes + 24;

  // Pin the most statically referenced virtual registers in r12-r15.
  std::vector<uint32_t> Count(F.NumRegs, 0);
  auto Note = [&](uint16_t R) {
    if (R < Count.size())
      ++Count[R];
  };
  for (const Insn &I : F.Code) {
    switch (shapeOf(I.Code)) {
    case Shape::ABC:
      Note(I.A); Note(I.B); Note(I.C);
      break;
    case Shape::AB:
      Note(I.A); Note(I.B);
      break;
    case Shape::A:
      Note(I.A);
      break;
    case Shape::ForCond:
      Note(I.A); Note(I.B); Note(I.C);
      Note(static_cast<uint16_t>(I.Imm));
      break;
    case Shape::None:
      break;
    }
  }
  for (int Slot = 0; Slot != NumPinRegs; ++Slot) {
    uint32_t Best = 0, BestCount = 2; // Require >= 3 static references.
    bool Found = false;
    for (uint32_t R = 0; R != Count.size(); ++R)
      if (Count[R] > BestCount) {
        Best = R;
        BestCount = Count[R];
        Found = true;
      }
    if (!Found)
      break;
    PinVReg[NumPinned++] = static_cast<uint16_t>(Best);
    Count[Best] = 0;
  }
  return true;
}

bool Emitter::emitPrologue() {
  A.push(RBP);
  A.movRR(RBP, RSP);
  A.push(RBX);
  A.push(R12);
  A.push(R13);
  A.push(R14);
  A.push(R15);
  A.subRI(RSP, Total);
  A.andRI8(RSP, -32); // 32-aligned frame; calls see rsp % 16 == 0.
  A.storeMR(RSP, OffSavedArgs, RDI);
  A.storeMR(RSP, OffSavedRet, RSI);
  A.storeMR(RSP, OffSavedEnv, RDX);
  // Zero the frame and register file, as the VM's memset does.
  A.leaRM(RDI, RSP, 0);
  A.xor32RR(RAX, RAX);
  A.movRI(RCX, ZeroBytes / 8);
  A.repStosq();
  for (size_t I = 0, N = F.Params.size(); I != N; ++I)
    if (!emitParam(F.Params[I], I))
      return false;
  for (int I = 0; I != NumPinned; ++I)
    A.loadRM(PinRegs[I], RSP, slotOff(PinVReg[I]));
  A.xor32RR(RBX, RBX); // Back-edge counter.
  return true;
}

void Emitter::emitEpilogue() {
  A.bind(Epilogue);
  A.movRR(RAX, RBX);
  A.leaRM(RSP, RBP, -40);
  A.pop(R15);
  A.pop(R14);
  A.pop(R13);
  A.pop(R12);
  A.pop(RBX);
  A.pop(RBP);
  A.ret();
}

/// Canonical widening of one FFI argument, mirroring the VM's loadCanonical.
bool Emitter::emitParam(const bytecode::Function::Param &P, size_t Index) {
  int32_t ArgIdx = static_cast<int32_t>(8 * Index);
  A.loadRM(RAX, RSP, OffSavedArgs);
  A.loadRM(RCX, RAX, ArgIdx); // rcx = Args[Index]
  if (P.InFrame) {
    A.leaRM(RDI, RSP, static_cast<int32_t>(P.FrameOff));
    A.movRR(RSI, RCX);
    A.movRI(RDX, static_cast<int64_t>(P.Ty->size()));
    callHelper(reinterpret_cast<const void *>(&memcpy));
    return true;
  }
  int32_t Off = slotOff(P.Reg); // Always the memory slot; pins load later.
  if (P.Ty->isPointer() || P.Ty->isFunction()) {
    A.loadRM(RAX, RCX, 0);
    A.storeMR(RSP, Off, RAX);
    return true;
  }
  const auto *Prim = dyn_cast<PrimType>(P.Ty);
  if (!Prim)
    return false;
  switch (Prim->primKind()) {
  case PrimType::Bool:
    A.movzx8RM(RAX, RCX, 0);
    A.test32RR(RAX, RAX);
    A.setcc(CC::NE, RAX);
    A.movzx8RR(RAX, RAX);
    break;
  case PrimType::Int8:
    A.movsx8RM(RAX, RCX, 0);
    break;
  case PrimType::Int16:
    A.movsx16RM(RAX, RCX, 0);
    break;
  case PrimType::Int32:
    A.movsx32RM(RAX, RCX, 0);
    break;
  case PrimType::Int64:
  case PrimType::UInt64:
    A.loadRM(RAX, RCX, 0);
    break;
  case PrimType::UInt8:
    A.movzx8RM(RAX, RCX, 0);
    break;
  case PrimType::UInt16:
    A.movzx16RM(RAX, RCX, 0);
    break;
  case PrimType::UInt32:
  case PrimType::Float32:
    A.load32RM(RAX, RCX, 0);
    break;
  case PrimType::Float64:
    A.loadRM(RAX, RCX, 0);
    break;
  case PrimType::Void:
    return false;
  }
  A.storeMR(RSP, Off, RAX);
  return true;
}

void Emitter::emitTrapStubs() {
  for (const auto &[TrapIdx, L] : TrapStubs) {
    A.bind(L);
    A.movRI(RDI, reinterpret_cast<int64_t>(&F));
    A.movRI(RSI, TrapIdx);
    A.loadRM(RDX, RSP, OffSavedEnv);
    callHelper(reinterpret_cast<const void *>(&terracppBaselineTrap));
    A.jmp(Epilogue);
  }
}

bool Emitter::emitInsn(const Insn &I) {
  auto FitsDisp = [](int64_t V) {
    return V >= INT32_MIN && V <= INT32_MAX;
  };
  switch (I.Code) {
  case Op::ConstI:
  case Op::ConstF:
  case Op::ConstP:
    storeSlotImm(I.A, I.Imm);
    return true;
  case Op::ConstF32:
    // Only the low four slot bytes carry the value.
    storeSlotImm(I.A, static_cast<int64_t>(static_cast<uint32_t>(I.Imm)));
    return true;
  case Op::FnLit:
    flushPins();
    A.movRI(RDI, I.Imm); // TerraFunction *
    A.leaRM(RSI, RSP, slotOff(I.A));
    A.loadRM(RDX, RSP, OffSavedEnv);
    callHelper(reinterpret_cast<const void *>(&terracppBaselineFnLit));
    A.test32RR(RAX, RAX);
    A.jcc(CC::E, Epilogue);
    reloadPins();
    return true;
  case Op::Mov:
    loadSlot(RAX, I.B);
    storeSlot(I.A, RAX);
    return true;
  case Op::FrameAddr:
    if (!FitsDisp(I.Imm))
      return false;
    A.leaRM(RAX, RSP, static_cast<int32_t>(I.Imm));
    storeSlot(I.A, RAX);
    return true;
  case Op::AddI:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.addRR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::SubI:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.subRR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::MulI:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.imulRR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::DivI:
  case Op::ModI:
    // No zero guard here: a TrapIfZero precedes unless analysis elided it.
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.cqo();
    A.idivR(RCX);
    storeSlot(I.A, I.Code == Op::DivI ? RAX : RDX);
    return true;
  case Op::DivU:
  case Op::ModU:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.xor32RR(RDX, RDX);
    A.divR(RCX);
    storeSlot(I.A, I.Code == Op::DivU ? RAX : RDX);
    return true;
  case Op::ShlI:
  case Op::ShrI:
  case Op::ShrU:
    // Hardware masks cl to 6 bits for 64-bit shifts — exactly the VM's
    // `& 63` semantics.
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    if (I.Code == Op::ShlI)
      A.shlRCl(RAX);
    else if (I.Code == Op::ShrI)
      A.sarRCl(RAX);
    else
      A.shrRCl(RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::NegI:
    loadSlot(RAX, I.B);
    A.negR(RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::AddF: case Op::SubF: case Op::MulF: case Op::DivF:
  case Op::MinF: case Op::MaxF:
    loadSlotX(XMM0, I.B);
    loadSlotX(XMM1, I.C);
    switch (I.Code) {
    case Op::AddF: A.addsd(XMM0, XMM1); break;
    case Op::SubF: A.subsd(XMM0, XMM1); break;
    case Op::MulF: A.mulsd(XMM0, XMM1); break;
    case Op::DivF: A.divsd(XMM0, XMM1); break;
    case Op::MinF: A.minsd(XMM0, XMM1); break;
    default:       A.maxsd(XMM0, XMM1); break;
    }
    storeSlotX(I.A, XMM0);
    return true;
  case Op::AddF32: case Op::SubF32: case Op::MulF32: case Op::DivF32:
  case Op::MinF32: case Op::MaxF32:
    loadSlotX(XMM0, I.B);
    loadSlotX(XMM1, I.C);
    switch (I.Code) {
    case Op::AddF32: A.addss(XMM0, XMM1); break;
    case Op::SubF32: A.subss(XMM0, XMM1); break;
    case Op::MulF32: A.mulss(XMM0, XMM1); break;
    case Op::DivF32: A.divss(XMM0, XMM1); break;
    case Op::MinF32: A.minss(XMM0, XMM1); break;
    default:         A.maxss(XMM0, XMM1); break;
    }
    storeSlotX(I.A, XMM0);
    return true;
  case Op::NegF:
    loadSlot(RAX, I.B);
    A.movRI(RCX, INT64_MIN); // Sign-bit flip: exact IEEE negate.
    A.xorRR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::NegF32:
    loadSlot(RAX, I.B);
    A.xor32RI(RAX, INT32_MIN);
    storeSlot(I.A, RAX);
    return true;
  case Op::NotB:
    loadSlot(RAX, I.B);
    A.testRR(RAX, RAX);
    boolResult(I.A, CC::E);
    return true;
  case Op::LtI: case Op::LeI: case Op::GtI: case Op::GeI:
  case Op::LtU: case Op::LeU: case Op::GtU: case Op::GeU:
  case Op::EqI: case Op::NeI: {
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.cmpRR(RAX, RCX);
    CC C;
    switch (I.Code) {
    case Op::LtI: C = CC::L; break;
    case Op::LeI: C = CC::LE; break;
    case Op::GtI: C = CC::G; break;
    case Op::GeI: C = CC::GE; break;
    case Op::LtU: C = CC::B; break;
    case Op::LeU: C = CC::BE; break;
    case Op::GtU: C = CC::A; break;
    case Op::GeU: C = CC::AE; break;
    case Op::EqI: C = CC::E; break;
    default:      C = CC::NE; break;
    }
    boolResult(I.A, C);
    return true;
  }
  case Op::LtF: case Op::LeF: case Op::LtF32: case Op::LeF32: {
    // b < c  ==  c > b: compare (c, b) so unordered falls out as false.
    bool F32 = I.Code == Op::LtF32 || I.Code == Op::LeF32;
    loadSlotX(XMM0, I.C);
    loadSlotX(XMM1, I.B);
    F32 ? A.ucomiss(XMM0, XMM1) : A.ucomisd(XMM0, XMM1);
    boolResult(I.A, (I.Code == Op::LtF || I.Code == Op::LtF32) ? CC::A
                                                               : CC::AE);
    return true;
  }
  case Op::GtF: case Op::GeF: case Op::GtF32: case Op::GeF32: {
    bool F32 = I.Code == Op::GtF32 || I.Code == Op::GeF32;
    loadSlotX(XMM0, I.B);
    loadSlotX(XMM1, I.C);
    F32 ? A.ucomiss(XMM0, XMM1) : A.ucomisd(XMM0, XMM1);
    boolResult(I.A, (I.Code == Op::GtF || I.Code == Op::GtF32) ? CC::A
                                                               : CC::AE);
    return true;
  }
  case Op::EqF: case Op::EqF32:
    loadSlotX(XMM0, I.B);
    loadSlotX(XMM1, I.C);
    I.Code == Op::EqF32 ? A.ucomiss(XMM0, XMM1) : A.ucomisd(XMM0, XMM1);
    A.setcc(CC::E, RAX);
    A.setcc(CC::NP, RCX); // Unordered (NaN) compares unequal.
    A.movzx8RR(RAX, RAX);
    A.movzx8RR(RCX, RCX);
    A.and32RR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::NeF: case Op::NeF32:
    loadSlotX(XMM0, I.B);
    loadSlotX(XMM1, I.C);
    I.Code == Op::NeF32 ? A.ucomiss(XMM0, XMM1) : A.ucomisd(XMM0, XMM1);
    A.setcc(CC::NE, RAX);
    A.setcc(CC::P, RCX);
    A.movzx8RR(RAX, RAX);
    A.movzx8RR(RCX, RCX);
    A.or32RR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::MinI: case Op::MaxI: case Op::MinU: case Op::MaxU: {
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.cmpRR(RAX, RCX);
    CC C;
    switch (I.Code) {
    case Op::MinI: C = CC::G; break;
    case Op::MaxI: C = CC::L; break;
    case Op::MinU: C = CC::A; break;
    default:       C = CC::B; break;
    }
    A.cmovcc(C, RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  }
  case Op::WrapI8:
    loadSlot(RAX, I.B);
    A.movsx8RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapI16:
    loadSlot(RAX, I.B);
    A.movsx16RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapI32:
    loadSlot(RAX, I.B);
    A.movsx32RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapU8:
    loadSlot(RAX, I.B);
    A.movzx8RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapU16:
    loadSlot(RAX, I.B);
    A.movzx16RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapU32:
    loadSlot(RAX, I.B);
    A.mov32RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::WrapBool:
    loadSlot(RAX, I.B);
    A.testRR(RAX, RAX);
    boolResult(I.A, CC::NE);
    return true;
  case Op::I2F:
    loadSlot(RAX, I.B);
    A.cvtsi2sd(XMM0, RAX);
    storeSlotX(I.A, XMM0);
    return true;
  case Op::I2F32:
    loadSlot(RAX, I.B);
    A.cvtsi2ss(XMM0, RAX);
    storeSlotX(I.A, XMM0);
    return true;
  case Op::F2I8:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si32(RAX, XMM0);
    A.movsx8RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2I16:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si32(RAX, XMM0);
    A.movsx16RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2I32:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si32(RAX, XMM0);
    A.movsx32RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2I64:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si64(RAX, XMM0);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2U8:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si32(RAX, XMM0);
    A.movzx8RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2U16:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si32(RAX, XMM0);
    A.movzx16RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2U32:
    loadSlotX(XMM0, I.B);
    A.cvttsd2si64(RAX, XMM0);
    A.mov32RR(RAX, RAX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F2U64: {
    // The compiler's two-branch sequence: values below 2^63 convert
    // directly; larger ones shift down by 2^63 and restore the top bit.
    loadSlotX(XMM0, I.B);
    A.movRI(RCX, 0x43E0000000000000LL); // (double)2^63
    A.movqXR(XMM1, RCX);
    A.ucomisd(XMM0, XMM1);
    Label Big = A.newLabel(), Done = A.newLabel();
    A.jcc(CC::AE, Big);
    A.cvttsd2si64(RAX, XMM0);
    A.jmp(Done);
    A.bind(Big);
    A.subsd(XMM0, XMM1);
    A.cvttsd2si64(RAX, XMM0);
    A.movRI(RCX, INT64_MIN);
    A.xorRR(RAX, RCX);
    A.bind(Done);
    storeSlot(I.A, RAX);
    return true;
  }
  case Op::F2Bool:
    loadSlotX(XMM0, I.B);
    A.xorpd(XMM1, XMM1);
    A.ucomisd(XMM0, XMM1);
    A.setcc(CC::NE, RAX);
    A.setcc(CC::P, RCX); // NaN != 0 is true.
    A.movzx8RR(RAX, RAX);
    A.movzx8RR(RCX, RCX);
    A.or32RR(RAX, RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::F32ToF:
    loadSlotX(XMM0, I.B);
    A.cvtss2sd(XMM0, XMM0);
    storeSlotX(I.A, XMM0);
    return true;
  case Op::FToF32:
    loadSlotX(XMM0, I.B);
    A.cvtsd2ss(XMM0, XMM0);
    storeSlotX(I.A, XMM0);
    return true;
  case Op::LdI8: case Op::LdI16: case Op::LdI32: case Op::LdI64:
  case Op::LdU8: case Op::LdU16: case Op::LdU32: case Op::LdU64:
  case Op::LdF32: case Op::LdF64: case Op::LdP: {
    if (!FitsDisp(I.Imm))
      return false;
    int32_t D = static_cast<int32_t>(I.Imm);
    loadSlot(RAX, I.B);
    switch (I.Code) {
    case Op::LdI8:  A.movsx8RM(RCX, RAX, D); break;
    case Op::LdI16: A.movsx16RM(RCX, RAX, D); break;
    case Op::LdI32: A.movsx32RM(RCX, RAX, D); break;
    case Op::LdU8:  A.movzx8RM(RCX, RAX, D); break;
    case Op::LdU16: A.movzx16RM(RCX, RAX, D); break;
    case Op::LdU32: case Op::LdF32: A.load32RM(RCX, RAX, D); break;
    default:        A.loadRM(RCX, RAX, D); break;
    }
    storeSlot(I.A, RCX);
    return true;
  }
  case Op::StI8: case Op::StI16: case Op::StI32: case Op::StI64:
  case Op::StF32: case Op::StF64: case Op::StP: {
    if (!FitsDisp(I.Imm))
      return false;
    int32_t D = static_cast<int32_t>(I.Imm);
    loadSlot(RAX, I.A);
    loadSlot(RCX, I.B);
    switch (I.Code) {
    case Op::StI8:  A.store8MR(RAX, D, RCX); break;
    case Op::StI16: A.store16MR(RAX, D, RCX); break;
    case Op::StI32: case Op::StF32: A.store32MR(RAX, D, RCX); break;
    default:        A.storeMR(RAX, D, RCX); break;
    }
    return true;
  }
  case Op::MemCpy:
    loadSlot(RDI, I.A);
    loadSlot(RSI, I.B);
    A.movRI(RDX, I.Imm);
    callHelper(reinterpret_cast<const void *>(&memcpy));
    return true;
  case Op::MemZero:
    loadSlot(RDI, I.A);
    A.xor32RR(RSI, RSI);
    A.movRI(RDX, I.Imm);
    callHelper(reinterpret_cast<const void *>(&memset));
    return true;
  case Op::PtrAdd:
  case Op::PtrSub:
    loadSlot(RAX, I.C);
    if (FitsDisp(I.Imm)) {
      A.imulRRI(RAX, RAX, static_cast<int32_t>(I.Imm));
    } else {
      A.movRI(RCX, I.Imm);
      A.imulRR(RAX, RCX);
    }
    loadSlot(RCX, I.B);
    if (I.Code == Op::PtrAdd) {
      A.addRR(RAX, RCX);
      storeSlot(I.A, RAX);
    } else {
      A.subRR(RCX, RAX);
      storeSlot(I.A, RCX);
    }
    return true;
  case Op::PtrDiff:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.subRR(RAX, RCX);
    A.movRI(RCX, I.Imm);
    A.cqo();
    A.idivR(RCX);
    storeSlot(I.A, RAX);
    return true;
  case Op::PtrAddImm:
    if (!FitsDisp(I.Imm))
      return false;
    loadSlot(RAX, I.B);
    A.leaRM(RAX, RAX, static_cast<int32_t>(I.Imm));
    storeSlot(I.A, RAX);
    return true;
  case Op::TrapIfNull:
  case Op::TrapIfZero:
    loadSlot(RAX, I.A);
    A.testRR(RAX, RAX);
    A.jcc(CC::E, trapLabel(I.Imm));
    return true;
  case Op::TrapIfShiftGE:
    loadSlot(RAX, I.A);
    A.movRI(RCX, I.B);
    A.cmpRR(RAX, RCX);
    A.jcc(CC::AE, trapLabel(I.Imm));
    return true;
  case Op::ForCond:
    loadSlot(RAX, I.B);
    loadSlot(RCX, I.C);
    A.cmpRR(RAX, RCX);
    A.setcc(CC::L, RDX);
    A.setcc(CC::G, RSI);
    A.movzx8RR(RDX, RDX);
    A.movzx8RR(RSI, RSI);
    loadSlot(RAX, static_cast<uint16_t>(I.Imm)); // Loop step register.
    A.testRR(RAX, RAX);
    A.cmovcc(CC::LE, RDX, RSI); // step <= 0: iterate while B > C.
    storeSlot(I.A, RDX);
    return true;
  case Op::Jmp:
    A.jmp(InsnLabel[static_cast<size_t>(I.Imm)]);
    return true;
  case Op::JmpIfFalse:
  case Op::JmpIfTrue:
    loadSlot(RAX, I.A);
    A.testRR(RAX, RAX);
    A.jcc(I.Code == Op::JmpIfFalse ? CC::E : CC::NE,
          InsnLabel[static_cast<size_t>(I.Imm)]);
    return true;
  case Op::JmpBack:
    A.addRI(RBX, 1);
    A.jmp(InsnLabel[static_cast<size_t>(I.Imm)]);
    return true;
  case Op::Call:
    flushPins();
    A.movRI(RDI, reinterpret_cast<int64_t>(&F));
    A.movRI(RSI, I.Imm);
    A.leaRM(RDX, RSP, OffR);
    A.leaRM(RCX, RSP, 0);
    A.loadRM(R8, RSP, OffSavedEnv);
    callHelper(reinterpret_cast<const void *>(&terracppBaselineCall));
    A.test32RR(RAX, RAX);
    A.jcc(CC::E, Epilogue);
    reloadPins();
    return true;
  case Op::Ret:
    A.jmp(Epilogue);
    return true;
  case Op::RetVal: {
    A.loadRM(RCX, RSP, OffSavedRet);
    A.testRR(RCX, RCX);
    A.jcc(CC::E, Epilogue); // Null Ret: nothing to write.
    switch (F.Ret) {
    case RetKind::I8:
    case RetKind::U8:
      loadSlot(RAX, I.A);
      A.store8MR(RCX, 0, RAX);
      break;
    case RetKind::I16:
    case RetKind::U16:
      loadSlot(RAX, I.A);
      A.store16MR(RCX, 0, RAX);
      break;
    case RetKind::I32:
    case RetKind::U32:
    case RetKind::F32:
      loadSlot(RAX, I.A);
      A.store32MR(RCX, 0, RAX);
      break;
    case RetKind::I64:
    case RetKind::U64:
    case RetKind::F64:
    case RetKind::Ptr:
      loadSlot(RAX, I.A);
      A.storeMR(RCX, 0, RAX);
      break;
    case RetKind::Bool:
      loadSlot(RAX, I.A);
      A.testRR(RAX, RAX);
      A.setcc(CC::NE, RAX);
      A.store8MR(RCX, 0, RAX);
      break;
    case RetKind::Agg:
      loadSlot(RSI, I.A); // Slot holds the source address.
      A.movRR(RDI, RCX);
      A.movRI(RDX, static_cast<int64_t>(F.RetBytes));
      callHelper(reinterpret_cast<const void *>(&memcpy));
      break;
    case RetKind::None:
      break;
    }
    A.jmp(Epilogue);
    return true;
  }
  case Op::Trap:
    A.jmp(trapLabel(I.Imm));
    return true;
  }
  return false; // Future opcodes bail to the VM.
}

bool Emitter::emit() {
  if (!layoutAndPin())
    return false;
  Epilogue = A.newLabel();
  InsnLabel.reserve(F.Code.size());
  for (size_t I = 0, N = F.Code.size(); I != N; ++I)
    InsnLabel.push_back(A.newLabel());
  if (!emitPrologue())
    return false;
  for (size_t I = 0, N = F.Code.size(); I != N; ++I) {
    A.bind(InsnLabel[I]);
    if (!emitInsn(F.Code[I]))
      return false;
  }
  emitEpilogue();
  emitTrapStubs();
  return A.finalize();
}

} // namespace

//===----------------------------------------------------------------------===//
// BaselineJIT
//===----------------------------------------------------------------------===//

BaselineJIT::BaselineJIT(telemetry::Registry &Metrics)
    : MEmitUs(Metrics.histogram("jit.baseline_emit_us")),
      MCodeBytes(Metrics.gauge("jit.baseline_code_bytes")),
      MFunctions(Metrics.counter("jit.baseline_functions")),
      MBailouts(Metrics.counter("jit.baseline_bailouts")) {}

bool BaselineJIT::supported() {
#if defined(__x86_64__) && !defined(__ILP32__)
  return true;
#else
  return false;
#endif
}

bool BaselineJIT::enabledFromEnv() {
  return envcfg::parseBool("TERRACPP_JIT_BASELINE", true);
}

bool BaselineJIT::emitBytesForTest(const TerraFunction *F,
                                   std::vector<uint8_t> &Out) {
  if (!supported() || !F->Bytecode)
    return false;
  Emitter Em(*F->Bytecode);
  if (!Em.emit())
    return false;
  Out.assign(Em.code().begin(), Em.code().end());
  return true;
}

BaselineJIT::Fn BaselineJIT::entryFor(TerraFunction *F) {
  void *E = F->BaselineEntry.load(std::memory_order_acquire);
  if (!E) {
    if (!supported() || !F->Bytecode) {
      E = BaselineFailed;
    } else {
      telemetry::ScopedTimerUs T(MEmitUs);
      Emitter Em(*F->Bytecode);
      void *P = nullptr;
      if (Em.emit()) {
        P = Code.publish(Em.code().data(), Em.code().size());
        // Before the entry is visible: depthUnits readers acquire
        // BaselineEntry first. Racing emitters store the same value.
        F->BaselineStackBytes.store(Em.stackBytes(),
                                    std::memory_order_relaxed);
      }
      E = P ? P : BaselineFailed;
    }
    // CAS-publish; a racing emitter's loss just wastes buffer bytes. The
    // CodeBuffer's mprotect ordered all code writes before this store.
    void *Expected = nullptr;
    if (F->BaselineEntry.compare_exchange_strong(Expected, E,
                                                 std::memory_order_release,
                                                 std::memory_order_acquire)) {
      if (E == BaselineFailed) {
        MBailouts.inc();
      } else {
        MFunctions.inc();
        MCodeBytes.set(static_cast<int64_t>(Code.bytesPublished()));
      }
    } else {
      E = Expected;
    }
  }
  return E == BaselineFailed ? nullptr : reinterpret_cast<Fn>(E);
}

unsigned BaselineJIT::depthUnits(const TerraFunction *F) {
  uint32_t Bytes = F->BaselineStackBytes.load(std::memory_order_relaxed);
  return 1 + Bytes / (16u << 10);
}
