//===- TerraJIT.h - Compile-and-load driver for the C backend ---*- C++ -*-===//
//
// Takes C source emitted by CBackend, compiles it to a shared object with
// the system C compiler, loads it with dlopen, and resolves each function's
// raw pointer and FFI entry thunk. Loaded modules live as long as the
// engine. This is the offline substitute for LLVM's MCJIT (DESIGN.md §4).
//
// Two properties make it fast under autotuner-style workloads (paper §6.1,
// where one search compiles dozens of kernel variants):
//
//  * Content-addressed caching: compiled shared objects are stored in a
//    persistent cache ($TERRACPP_CACHE_DIR, default ~/.cache/terracpp)
//    keyed by hash(C source + flags + compiler identity). An identical
//    specialization — same process or a later run — dlopens the cached .so
//    with zero compiler invocations. Set TERRACPP_CACHE=off to disable.
//
//  * Parallel batch compilation: addModules() fans each module's cc
//    invocation out to a worker pool (TERRACPP_COMPILE_JOBS concurrent
//    jobs, default hardware concurrency) via posix_spawn, then loads the
//    results serially on the calling thread.
//
// addModule/addModules are thread-safe: independent engines, or threads
// sharing one engine, can compile concurrently.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAJIT_H
#define TERRACPP_CORE_TERRAJIT_H

#include "core/TerraAST.h"
#include "support/Diagnostics.h"
#include "support/Telemetry.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace terracpp {

class ThreadPool;

class JITEngine {
public:
  explicit JITEngine(DiagnosticEngine &Diags);
  ~JITEngine();
  JITEngine(const JITEngine &) = delete;
  JITEngine &operator=(const JITEngine &) = delete;

  /// One generated translation unit: its C source and the functions whose
  /// RawPtr/Entry resolve into it. Cacheable=false marks modules that bake
  /// process-local addresses (CBackend::lastModuleBakedAddresses) and must
  /// bypass the persistent cache.
  struct ModuleJob {
    std::string CSource;
    std::vector<TerraFunction *> Fns;
    bool Cacheable = true;
  };

  /// Compiles \p CSource and fills RawPtr/Entry for each function in
  /// \p Fns. False on failure (compiler errors are attached to the
  /// diagnostic).
  bool addModule(const std::string &CSource,
                 const std::vector<TerraFunction *> &Fns,
                 bool Cacheable = true);

  /// Compiles every job, running the C compiler invocations concurrently
  /// on the job pool, then loads the results in order on this thread.
  /// Jobs fail independently; returns true only if all succeeded.
  bool addModules(std::vector<ModuleJob> Jobs);

  /// One symbol pair resolved by compileAndResolve: the raw function
  /// pointer and its FFI entry thunk (symbol + "_entry",
  /// void(*)(void **Args, void *Ret)).
  struct ResolvedFn {
    void *Raw = nullptr;
    void *Entry = nullptr;
  };

  /// Compiles \p CSource and resolves each mangled symbol in \p Syms to its
  /// raw/entry pointer pair, without touching any TerraFunction. Unlike
  /// addModule this never reports through the DiagnosticEngine — failures
  /// land in \p Err — so it is safe from the tier-promotion worker while
  /// the main thread runs user code. Thread-safe.
  bool compileAndResolve(const std::string &CSource, bool Cacheable,
                         const std::vector<std::string> &Syms,
                         std::vector<ResolvedFn> &Out, std::string &Err);

  /// Writes \p CSource to \p Path as C (ext .c), a relocatable object
  /// (.o), or a shared library (.so), chosen by extension — the saveobj
  /// feature (paper §2).
  bool saveObject(const std::string &Path, const std::string &CSource);

  /// The source of the most recently added module (for tests/debugging).
  const std::string &lastModuleSource() const { return LastSource; }

  /// Pipeline counters (for bench_compile / bench_gemm reporting). This is
  /// a point-in-time snapshot assembled from the engine's telemetry
  /// registry; the registry itself (see metrics()) is the source of truth.
  struct Stats {
    unsigned ModulesLoaded = 0;     ///< Successful addModule(s) loads.
    unsigned CompilerLaunches = 0;  ///< Actual cc invocations.
    unsigned CacheHits = 0;         ///< Loads served from the cache.
    unsigned CacheMisses = 0;       ///< Cacheable lookups that compiled.
    unsigned CacheBypassed = 0;     ///< Uncacheable modules (baked addrs).
    unsigned CacheEvicted = 0;      ///< Entries removed by the size bound.
    unsigned MaxQueueDepth = 0;     ///< High-water mark of in-flight jobs.
    double CompilerSeconds = 0;     ///< Summed cc wall time across jobs.
    double BatchWallSeconds = 0;    ///< Wall time blocked in addModules.
  };
  Stats stats() const;

  /// The engine's private metrics registry. Per-instance (not global) so
  /// concurrent engines in one process keep independent counts; includes
  /// latency histograms (jit.cc_us, jit.link_us, jit.batch_wall_us) beyond
  /// what the Stats snapshot exposes.
  telemetry::Registry &metrics() { return Reg; }
  const telemetry::Registry &metrics() const { return Reg; }

  /// Summed compiler wall time so far (kept for existing callers).
  double compilerSeconds() const { return stats().CompilerSeconds; }

  /// Extra flags for the C compiler (defaults to -O3 -march=native).
  void setOptFlags(std::string Flags) { OptFlags = std::move(Flags); }

  /// Resolved TERRACPP_COMPILE_JOBS (>= 1).
  unsigned compileJobs() const { return Jobs; }

  /// True once a compiler spawn failed with ENOENT (the cc binary does not
  /// exist). The TierManager uses this to pin functions at the baseline
  /// tier instead of retrying a compiler that is not installed.
  bool ccUnavailable() const {
    return CcMissing.load(std::memory_order_relaxed);
  }

  /// Resolved cache directory; empty when caching is disabled.
  const std::string &cacheDir() const { return CacheDir; }

  /// Resolved TERRACPP_CACHE_MAX_MB in bytes; 0 = unbounded.
  uint64_t cacheMaxBytes() const { return CacheMaxBytes; }

private:
  /// Result of producing one shared object, off or on the pool.
  struct CompileOutcome {
    bool OK = false;
    bool FromCache = false;
    std::string SoPath;   ///< Where the loadable .so landed.
    std::string Message;  ///< Compiler stderr / failure description.
    double Seconds = 0;   ///< Wall time inside the C compiler.
  };

  CompileOutcome compileSource(const std::string &CSource, bool Cacheable,
                               bool SkipCacheLookup);
  bool loadModule(const ModuleJob &Job, CompileOutcome &Outcome);
  bool runCompiler(const std::string &SrcPath, const std::string &OutPath,
                   const std::string &ExtraFlags, std::string &ErrOut,
                   double &Seconds);
  std::string cacheKey(const std::string &CSource,
                       const std::string &ExtraFlags);
  /// Evicts least-recently-used .so entries (by mtime; hits refresh it)
  /// until the cache is within TERRACPP_CACHE_MAX_MB. \p Protect is the
  /// just-published entry, never evicted.
  void enforceCacheLimit(const std::string &Protect);
  const std::string &compilerIdentity();
  ThreadPool &pool();
  void noteDiag(DiagKind Kind, const std::string &Message);

  DiagnosticEngine &Diags;
  std::string TempDir;
  std::string OptFlags = "-O3 -march=native -fno-math-errno "
                         "-fno-semantic-interposition";
  std::string CacheDir;  ///< Empty => caching disabled.
  uint64_t CacheMaxBytes = 0; ///< 0 => unbounded.
  unsigned Jobs = 1;
  std::vector<void *> Handles;
  std::string LastSource;
  std::string CompilerId; ///< `cc --version` first line; lazily filled.

  std::unique_ptr<ThreadPool> Pool; ///< Lazily created on first batch.
  std::atomic<unsigned> ModuleCounter{0};
  std::atomic<unsigned> InFlight{0};
  std::atomic<bool> CcMissing{false}; ///< cc spawn hit ENOENT.
  mutable std::mutex Mutex; ///< Guards Handles, Diags, Pool init, LastSource.

  /// Per-engine metrics. Declared before the metric references below so the
  /// references can bind in the constructor initializer list. Updates are
  /// lock-free; stats() snapshots them.
  telemetry::Registry Reg;
  telemetry::Counter &MModulesLoaded;
  telemetry::Counter &MCompilerLaunches;
  telemetry::Counter &MCacheHits;
  telemetry::Counter &MCacheMisses;
  telemetry::Counter &MCacheBypassed;
  telemetry::Counter &MCacheEvicted;
  telemetry::Gauge &MQueueDepthHwm;
  telemetry::Histogram &MCcUs;
  telemetry::Histogram &MLinkUs;
  telemetry::Histogram &MBatchWallUs;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAJIT_H
