//===- TerraJIT.h - Compile-and-load driver for the C backend ---*- C++ -*-===//
//
// Takes C source emitted by CBackend, compiles it to a shared object with
// the system C compiler, loads it with dlopen, and resolves each function's
// raw pointer and FFI entry thunk. Loaded modules live as long as the
// engine. This is the offline substitute for LLVM's MCJIT (DESIGN.md §4).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAJIT_H
#define TERRACPP_CORE_TERRAJIT_H

#include "core/TerraAST.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace terracpp {

class JITEngine {
public:
  explicit JITEngine(DiagnosticEngine &Diags);
  ~JITEngine();
  JITEngine(const JITEngine &) = delete;
  JITEngine &operator=(const JITEngine &) = delete;

  /// Compiles \p CSource and fills RawPtr/Entry for each function in
  /// \p Fns. False on failure (compiler errors are attached to the
  /// diagnostic).
  bool addModule(const std::string &CSource,
                 const std::vector<TerraFunction *> &Fns);

  /// Writes \p CSource to \p Path as C (ext .c), a relocatable object
  /// (.o), or a shared library (.so), chosen by extension — the saveobj
  /// feature (paper §2).
  bool saveObject(const std::string &Path, const std::string &CSource);

  /// The source of the most recently added module (for tests/debugging).
  const std::string &lastModuleSource() const { return LastSource; }

  /// Seconds spent inside the C compiler so far (for bench_compile).
  double compilerSeconds() const { return CompilerSeconds; }

  /// Extra flags for the C compiler (defaults to -O3 -march=native).
  void setOptFlags(std::string Flags) { OptFlags = std::move(Flags); }

private:
  bool runCompiler(const std::string &SrcPath, const std::string &OutPath,
                   const std::string &ExtraFlags);

  DiagnosticEngine &Diags;
  std::string TempDir;
  std::string OptFlags = "-O3 -march=native -fno-math-errno "
                         "-fno-semantic-interposition";
  unsigned ModuleCounter = 0;
  std::vector<void *> Handles;
  std::string LastSource;
  double CompilerSeconds = 0;
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAJIT_H
