//===- LuaValue.h - Host-language (Luna) values -----------------*- C++ -*-===//
//
// Values of the dynamically-typed host language. Following the paper, Terra
// entities — types, functions, quotations, symbols, and globals — are
// first-class host values, which is what makes the staged programming model
// work: host evaluation manipulates Terra terms as ordinary values, and the
// specializer converts host values back into Terra terms when they are
// spliced.
//
// Heap values (strings, tables, closures, builtins, cdata) are reference
// counted with shared_ptr. Reference cycles between host tables leak; the
// host language is a compile-time orchestration language in this system, so
// this mirrors an arena-per-engine lifetime policy rather than a full GC.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_LUAVALUE_H
#define TERRACPP_CORE_LUAVALUE_H

#include "support/Diagnostics.h"

#include <cassert>
#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace terracpp {

class Type;
class TerraFunction;
class TerraGlobal;
class TerraExpr;
class TerraStmt;
struct TerraSymbol;

namespace lua {

class Interp;
class Table;
class Value;
struct Closure;
struct CData;

/// A C++-implemented host function. Writes results (possibly several, for
/// multi-value returns) into \p Results. Returns false after reporting a
/// diagnostic on failure.
using BuiltinImpl = std::function<bool(Interp &, std::vector<Value> &Args,
                                       std::vector<Value> &Results,
                                       SourceLoc Loc)>;

struct Builtin {
  std::string Name;
  BuiltinImpl Fn;
};

/// A quotation value: a block of (specialized) Terra code created by
/// `quote ... end` (statement quote) or a backtick (expression quote).
struct QuoteValue {
  /// Null for statement quotes.
  TerraExpr *Expr = nullptr;
  /// Null for expression quotes.
  TerraStmt *Stmts = nullptr;

  bool isExpr() const { return Expr != nullptr; }
};

/// A dynamically-typed host value.
class Value {
public:
  enum ValueKind {
    VK_Nil,
    VK_Bool,
    VK_Number,
    VK_String,
    VK_Table,
    VK_Closure,
    VK_Builtin,
    VK_Type,     ///< A Terra type (first-class, paper §4.1).
    VK_TerraFn,  ///< A Terra function (declared or defined).
    VK_Quote,    ///< A Terra quotation.
    VK_Symbol,   ///< A gensym created by symbol() (paper §6.1).
    VK_Global,   ///< A Terra global variable.
    VK_CData,    ///< A typed foreign value (pointer or struct) from the FFI.
  };

  Value() : Kind(VK_Nil) {}

  ValueKind kind() const { return Kind; }

  static Value nil() { return Value(); }
  static Value boolean(bool B);
  static Value number(double N);
  static Value string(std::string S);
  static Value string(std::shared_ptr<const std::string> S);
  static Value table(std::shared_ptr<Table> T);
  static Value newTable();
  static Value closure(std::shared_ptr<Closure> C);
  static Value builtin(std::string Name, BuiltinImpl Impl);
  static Value type(Type *T);
  static Value terraFn(TerraFunction *F);
  static Value quote(QuoteValue Q);
  static Value symbol(TerraSymbol *S);
  static Value global(TerraGlobal *G);
  static Value cdata(std::shared_ptr<CData> D);

  bool isNil() const { return Kind == VK_Nil; }
  bool isBool() const { return Kind == VK_Bool; }
  bool isNumber() const { return Kind == VK_Number; }
  bool isString() const { return Kind == VK_String; }
  bool isTable() const { return Kind == VK_Table; }
  bool isClosure() const { return Kind == VK_Closure; }
  bool isBuiltin() const { return Kind == VK_Builtin; }
  bool isCallable() const { return Kind == VK_Closure || Kind == VK_Builtin; }
  bool isType() const { return Kind == VK_Type; }
  bool isTerraFn() const { return Kind == VK_TerraFn; }
  bool isQuote() const { return Kind == VK_Quote; }
  bool isSymbol() const { return Kind == VK_Symbol; }
  bool isGlobal() const { return Kind == VK_Global; }
  bool isCData() const { return Kind == VK_CData; }

  /// Lua truthiness: everything except nil and false is true.
  bool isTruthy() const { return !(Kind == VK_Nil || (Kind == VK_Bool && !B)); }

  bool asBool() const {
    assert(Kind == VK_Bool);
    return B;
  }
  double asNumber() const {
    assert(Kind == VK_Number);
    return Num;
  }
  const std::string &asString() const {
    assert(Kind == VK_String);
    return *Str;
  }
  std::shared_ptr<const std::string> stringPtr() const {
    assert(Kind == VK_String);
    return Str;
  }
  Table *asTable() const {
    assert(Kind == VK_Table);
    return Tbl.get();
  }
  std::shared_ptr<Table> tablePtr() const {
    assert(Kind == VK_Table);
    return Tbl;
  }
  Closure *asClosure() const {
    assert(Kind == VK_Closure);
    return Cls.get();
  }
  std::shared_ptr<Closure> closurePtr() const {
    assert(Kind == VK_Closure);
    return Cls;
  }
  const Builtin &asBuiltin() const {
    assert(Kind == VK_Builtin);
    return *Bf;
  }
  Type *asType() const {
    assert(Kind == VK_Type);
    return Ty;
  }
  TerraFunction *asTerraFn() const {
    assert(Kind == VK_TerraFn);
    return TFn;
  }
  const QuoteValue &asQuote() const {
    assert(Kind == VK_Quote);
    return Q;
  }
  TerraSymbol *asSymbol() const {
    assert(Kind == VK_Symbol);
    return Sym;
  }
  TerraGlobal *asGlobal() const {
    assert(Kind == VK_Global);
    return Gl;
  }
  CData *asCData() const {
    assert(Kind == VK_CData);
    return CD.get();
  }
  std::shared_ptr<CData> cdataPtr() const {
    assert(Kind == VK_CData);
    return CD;
  }

  /// Raw equality (Lua ==): by value for nil/bool/number/string, by identity
  /// for everything else.
  bool equals(const Value &Other) const;

  /// The name Lua's type() would report ("nil", "number", ... ; Terra
  /// entities report "terratype", "terrafunction", "quote", "symbol",
  /// "terraglobal", "cdata").
  const char *typeName() const;

  /// Identity pointer for heap-like values; null for nil/bool/number.
  const void *identity() const;

private:
  ValueKind Kind;
  union {
    bool B;
    double Num;
    Type *Ty;
    TerraFunction *TFn;
    TerraSymbol *Sym;
    TerraGlobal *Gl;
    QuoteValue Q;
  };
  // Out-of-union reference-counted payloads.
  std::shared_ptr<const std::string> Str;
  std::shared_ptr<Table> Tbl;
  std::shared_ptr<Closure> Cls;
  std::shared_ptr<Builtin> Bf;
  std::shared_ptr<CData> CD;
};

/// A typed foreign value: the bytes of a Terra-typed object held on the host
/// side (a pointer, struct, or scalar produced by FFI calls).
struct CData {
  Type *Ty = nullptr;
  std::vector<uint8_t> Bytes;

  void *pointerValue() const {
    assert(Bytes.size() == sizeof(void *));
    void *P;
    memcpy(&P, Bytes.data(), sizeof(void *));
    return P;
  }
};

/// Host tables: associative maps with insertion-ordered iteration and Lua
/// array conventions (1-based dense integer keys). Any non-nil value can be
/// a key; heap values key by identity.
class Table {
public:
  Value get(const Value &Key) const;
  /// Raw set; assigning nil erases the key.
  void set(const Value &Key, Value V);

  Value getStr(const std::string &Key) const { return get(Value::string(Key)); }
  void setStr(const std::string &Key, Value V) {
    set(Value::string(Key), std::move(V));
  }
  Value getInt(int64_t Key) const {
    return get(Value::number(static_cast<double>(Key)));
  }
  void setInt(int64_t Key, Value V) {
    set(Value::number(static_cast<double>(Key)), std::move(V));
  }

  /// Lua '#': largest N such that keys 1..N are all present.
  int64_t arrayLength() const;

  /// Appends at arrayLength()+1 (table.insert).
  void append(Value V) { setInt(arrayLength() + 1, std::move(V)); }

  /// Insertion-ordered live entries (tombstones skipped).
  std::vector<std::pair<Value, Value>> entries() const;

  /// Metatable (may be null).
  std::shared_ptr<Table> meta() const { return Meta; }
  void setMeta(std::shared_ptr<Table> M) { Meta = std::move(M); }

private:
  struct KeyHash {
    size_t operator()(const Value &K) const;
  };
  struct KeyEq {
    bool operator()(const Value &A, const Value &B) const { return A.equals(B); }
  };

  std::vector<std::pair<Value, Value>> Items;
  std::unordered_map<Value, size_t, KeyHash, KeyEq> Index;
  std::shared_ptr<Table> Meta;
};

class Env;

/// A mutable variable cell. The paper's formalism separates the namespace G
/// (names -> addresses) from the store S (addresses -> values); a Cell is an
/// address, so closures that capture the same variable share mutations.
using Cell = std::shared_ptr<Value>;

/// Lexical environment: names (interned) -> cells, chained to the enclosing
/// scope. Both host evaluation and Terra specialization use this one
/// environment (the paper's "shared lexical environment").
class Env {
public:
  explicit Env(std::shared_ptr<Env> Parent = nullptr)
      : Parent(std::move(Parent)) {}

  /// Finds the cell for \p Name, searching enclosing scopes; null if unbound.
  Cell lookup(const std::string *Name) const;

  /// Defines a new variable in this scope (shadowing any outer binding).
  Cell define(const std::string *Name, Value V);

  Env *parent() const { return Parent.get(); }
  std::shared_ptr<Env> parentPtr() const { return Parent; }

  /// Visits every binding in this scope only (no enclosing scopes), in
  /// unspecified order. Used by the terrad server to enumerate the Terra
  /// functions a compiled script defined.
  template <typename Fn> void forEachLocal(Fn &&F) const {
    for (const auto &KV : Cells)
      F(*KV.first, *KV.second);
  }

private:
  std::shared_ptr<Env> Parent;
  std::unordered_map<const std::string *, Cell> Cells;
};

struct FunctionExpr; // Host AST node, defined in LuaAST.h.

/// A host closure: function AST + captured environment.
struct Closure {
  const FunctionExpr *Fn = nullptr;
  std::shared_ptr<Env> Captured;
  std::string Name; // For diagnostics; may be empty.
};

/// Renders a value for print()/tostring().
std::string toDisplayString(const Value &V);

} // namespace lua
} // namespace terracpp

#endif // TERRACPP_CORE_LUAVALUE_H
