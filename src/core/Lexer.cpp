#include "core/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace terracpp;

const char *terracpp::tokenKindName(Tok Kind) {
  switch (Kind) {
  case Tok::Eof:
    return "<eof>";
  case Tok::Error:
    return "<error>";
  case Tok::Ident:
    return "identifier";
  case Tok::Number:
    return "number";
  case Tok::String:
    return "string";
  case Tok::KwAnd:
    return "and";
  case Tok::KwBreak:
    return "break";
  case Tok::KwDo:
    return "do";
  case Tok::KwElse:
    return "else";
  case Tok::KwElseif:
    return "elseif";
  case Tok::KwEnd:
    return "end";
  case Tok::KwFalse:
    return "false";
  case Tok::KwFor:
    return "for";
  case Tok::KwFunction:
    return "function";
  case Tok::KwIf:
    return "if";
  case Tok::KwIn:
    return "in";
  case Tok::KwLocal:
    return "local";
  case Tok::KwNil:
    return "nil";
  case Tok::KwNot:
    return "not";
  case Tok::KwOr:
    return "or";
  case Tok::KwRepeat:
    return "repeat";
  case Tok::KwReturn:
    return "return";
  case Tok::KwThen:
    return "then";
  case Tok::KwTrue:
    return "true";
  case Tok::KwUntil:
    return "until";
  case Tok::KwWhile:
    return "while";
  case Tok::KwTerra:
    return "terra";
  case Tok::KwQuote:
    return "quote";
  case Tok::KwStruct:
    return "struct";
  case Tok::KwVar:
    return "var";
  case Tok::Plus:
    return "+";
  case Tok::Minus:
    return "-";
  case Tok::Star:
    return "*";
  case Tok::Slash:
    return "/";
  case Tok::Percent:
    return "%";
  case Tok::Caret:
    return "^";
  case Tok::Hash:
    return "#";
  case Tok::EqEq:
    return "==";
  case Tok::NotEq:
    return "~=";
  case Tok::LessEq:
    return "<=";
  case Tok::GreaterEq:
    return ">=";
  case Tok::Less:
    return "<";
  case Tok::Greater:
    return ">";
  case Tok::Shl:
    return "<<";
  case Tok::Shr:
    return ">>";
  case Tok::Assign:
    return "=";
  case Tok::LParen:
    return "(";
  case Tok::RParen:
    return ")";
  case Tok::LBrace:
    return "{";
  case Tok::RBrace:
    return "}";
  case Tok::LBracket:
    return "[";
  case Tok::RBracket:
    return "]";
  case Tok::Semi:
    return ";";
  case Tok::Colon:
    return ":";
  case Tok::Comma:
    return ",";
  case Tok::Dot:
    return ".";
  case Tok::DotDot:
    return "..";
  case Tok::Ellipsis:
    return "...";
  case Tok::Amp:
    return "&";
  case Tok::At:
    return "@";
  case Tok::Backtick:
    return "`";
  case Tok::Arrow:
    return "->";
  }
  return "?";
}

Lexer::Lexer(const std::string &Src, uint32_t BufferId, DiagnosticEngine &Diags)
    : Src(Src), BufferId(BufferId), Diags(Diags) {}

SourceLoc Lexer::here() const { return {BufferId, Line, Col}; }

void Lexer::advance() {
  if (Pos >= Src.size())
    return;
  if (Src[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

bool Lexer::skipLongBracket() {
  // At '[': check for [=*[ ... ]=*].
  size_t Save = Pos;
  uint32_t SaveLine = Line, SaveCol = Col;
  advance(); // '['
  unsigned Level = 0;
  while (cur() == '=') {
    ++Level;
    advance();
  }
  if (cur() != '[') {
    Pos = Save;
    Line = SaveLine;
    Col = SaveCol;
    return false;
  }
  advance();
  // Scan for matching close.
  while (Pos < Src.size()) {
    if (cur() == ']') {
      size_t P = Pos + 1;
      unsigned L = 0;
      while (P < Src.size() && Src[P] == '=') {
        ++L;
        ++P;
      }
      if (L == Level && P < Src.size() && Src[P] == ']') {
        while (Pos <= P)
          advance();
        return true;
      }
    }
    advance();
  }
  Diags.error(here(), "unterminated long comment");
  return true;
}

void Lexer::skipTrivia() {
  while (true) {
    char C = cur();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      if (C == '\n')
        SawNewline = true;
      advance();
      continue;
    }
    if (C == '-' && peek() == '-') {
      advance();
      advance();
      if (cur() == '[' && skipLongBracket())
        continue;
      while (cur() != '\n' && cur() != '\0')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeSimple(Tok Kind, unsigned Len) {
  Token T;
  T.Kind = Kind;
  T.Loc = here();
  for (unsigned I = 0; I != Len; ++I)
    advance();
  return T;
}

Token Lexer::lexNumber() {
  Token T;
  T.Kind = Tok::Number;
  T.Loc = here();
  size_t Start = Pos;
  bool IsInt = true;
  if (cur() == '0' && (peek() == 'x' || peek() == 'X')) {
    advance();
    advance();
    while (isxdigit(static_cast<unsigned char>(cur())))
      advance();
    T.Num = static_cast<double>(
        strtoull(Src.substr(Start, Pos - Start).c_str(), nullptr, 16));
  } else {
    while (isdigit(static_cast<unsigned char>(cur())))
      advance();
    if (cur() == '.' && peek() != '.') { // Don't eat '..' concat.
      IsInt = false;
      advance();
      while (isdigit(static_cast<unsigned char>(cur())))
        advance();
    }
    if (cur() == 'e' || cur() == 'E') {
      IsInt = false;
      advance();
      if (cur() == '+' || cur() == '-')
        advance();
      while (isdigit(static_cast<unsigned char>(cur())))
        advance();
    }
    T.Num = strtod(Src.substr(Start, Pos - Start).c_str(), nullptr);
  }
  T.IsInt = IsInt;
  // Terra-style suffixes: f (float), LL (int64), ULL (uint64).
  if (cur() == 'f') {
    advance();
    T.Suffix = NumSuffix::F;
    T.IsInt = false;
  } else if (cur() == 'L' && peek() == 'L') {
    advance();
    advance();
    T.Suffix = NumSuffix::LL;
  } else if (cur() == 'U' && peek() == 'L' && peek(2) == 'L') {
    advance();
    advance();
    advance();
    T.Suffix = NumSuffix::ULL;
  }
  return T;
}

Token Lexer::lexString(char Quote) {
  Token T;
  T.Kind = Tok::String;
  T.Loc = here();
  advance(); // Opening quote.
  std::string Out;
  while (cur() != Quote) {
    char C = cur();
    if (C == '\0' || C == '\n') {
      Diags.error(T.Loc, "unterminated string literal");
      T.Kind = Tok::Error;
      return T;
    }
    if (C == '\\') {
      advance();
      char E = cur();
      switch (E) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case '0':
        Out += '\0';
        break;
      case '\\':
        Out += '\\';
        break;
      case '\'':
        Out += '\'';
        break;
      case '"':
        Out += '"';
        break;
      default:
        Diags.error(here(), std::string("unknown escape sequence '\\") + E +
                                "' in string");
        break;
      }
      advance();
      continue;
    }
    Out += C;
    advance();
  }
  advance(); // Closing quote.
  T.Text = std::move(Out);
  return T;
}

Token Lexer::lexIdent() {
  Token T;
  T.Loc = here();
  size_t Start = Pos;
  while (isalnum(static_cast<unsigned char>(cur())) || cur() == '_')
    advance();
  T.Text = Src.substr(Start, Pos - Start);
  static const std::unordered_map<std::string, Tok> Keywords = {
      {"and", Tok::KwAnd},       {"break", Tok::KwBreak},
      {"do", Tok::KwDo},         {"else", Tok::KwElse},
      {"elseif", Tok::KwElseif}, {"end", Tok::KwEnd},
      {"false", Tok::KwFalse},   {"for", Tok::KwFor},
      {"function", Tok::KwFunction},
      {"if", Tok::KwIf},         {"in", Tok::KwIn},
      {"local", Tok::KwLocal},   {"nil", Tok::KwNil},
      {"not", Tok::KwNot},       {"or", Tok::KwOr},
      {"repeat", Tok::KwRepeat}, {"return", Tok::KwReturn},
      {"then", Tok::KwThen},     {"true", Tok::KwTrue},
      {"until", Tok::KwUntil},   {"while", Tok::KwWhile},
      {"terra", Tok::KwTerra},   {"quote", Tok::KwQuote},
      {"struct", Tok::KwStruct}, {"var", Tok::KwVar},
  };
  auto It = Keywords.find(T.Text);
  T.Kind = It != Keywords.end() ? It->second : Tok::Ident;
  return T;
}

Token Lexer::next() {
  SawNewline = false;
  skipTrivia();
  Token Result = lexOne();
  Result.AfterNewline = SawNewline;
  return Result;
}

Token Lexer::lexOne() {
  char C = cur();
  if (C == '\0') {
    Token T;
    T.Kind = Tok::Eof;
    T.Loc = here();
    return T;
  }
  if (isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && isdigit(static_cast<unsigned char>(peek()))))
    return lexNumber();
  if (isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdent();
  if (C == '"' || C == '\'')
    return lexString(C);

  switch (C) {
  case '+':
    return makeSimple(Tok::Plus, 1);
  case '-':
    if (peek() == '>')
      return makeSimple(Tok::Arrow, 2);
    return makeSimple(Tok::Minus, 1);
  case '*':
    return makeSimple(Tok::Star, 1);
  case '/':
    return makeSimple(Tok::Slash, 1);
  case '%':
    return makeSimple(Tok::Percent, 1);
  case '^':
    return makeSimple(Tok::Caret, 1);
  case '#':
    return makeSimple(Tok::Hash, 1);
  case '=':
    if (peek() == '=')
      return makeSimple(Tok::EqEq, 2);
    return makeSimple(Tok::Assign, 1);
  case '~':
    if (peek() == '=')
      return makeSimple(Tok::NotEq, 2);
    break;
  case '<':
    if (peek() == '=')
      return makeSimple(Tok::LessEq, 2);
    if (peek() == '<')
      return makeSimple(Tok::Shl, 2);
    return makeSimple(Tok::Less, 1);
  case '>':
    if (peek() == '=')
      return makeSimple(Tok::GreaterEq, 2);
    if (peek() == '>')
      return makeSimple(Tok::Shr, 2);
    return makeSimple(Tok::Greater, 1);
  case '(':
    return makeSimple(Tok::LParen, 1);
  case ')':
    return makeSimple(Tok::RParen, 1);
  case '{':
    return makeSimple(Tok::LBrace, 1);
  case '}':
    return makeSimple(Tok::RBrace, 1);
  case '[':
    return makeSimple(Tok::LBracket, 1);
  case ']':
    return makeSimple(Tok::RBracket, 1);
  case ';':
    return makeSimple(Tok::Semi, 1);
  case ':':
    return makeSimple(Tok::Colon, 1);
  case ',':
    return makeSimple(Tok::Comma, 1);
  case '.':
    if (peek() == '.' && peek(2) == '.')
      return makeSimple(Tok::Ellipsis, 3);
    if (peek() == '.')
      return makeSimple(Tok::DotDot, 2);
    return makeSimple(Tok::Dot, 1);
  case '&':
    return makeSimple(Tok::Amp, 1);
  case '@':
    return makeSimple(Tok::At, 1);
  case '`':
    return makeSimple(Tok::Backtick, 1);
  default:
    break;
  }
  Diags.error(here(), std::string("unexpected character '") + C + "'");
  Token T = makeSimple(Tok::Error, 1);
  return T;
}
