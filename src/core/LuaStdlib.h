//===- LuaStdlib.h - Host standard library + terralib surface ---*- C++ -*-===//
//
// Installs the host-language standard library (print, math, string, table,
// ...) plus the Terra surface the paper's programs use: primitive type
// names, `vector`, `symbol`, `global`, `sizeof`, `prefetch`, the `->` and
// `&` type constructors, and the `terralib` table (includec, cast, saveobj,
// new, newlist, ...). The includec substitute exposes a curated libc
// registry instead of parsing headers with Clang (DESIGN.md §4).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_LUASTDLIB_H
#define TERRACPP_CORE_LUASTDLIB_H

namespace terracpp {

class TerraCompiler;

namespace lua {
class Interp;
}

void installStdlib(lua::Interp &I, TerraCompiler &Compiler);

} // namespace terracpp

#endif // TERRACPP_CORE_LUASTDLIB_H
