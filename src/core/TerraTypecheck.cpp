#include "core/TerraTypecheck.h"

#include "core/LuaInterp.h"
#include "core/TerraType.h"
#include "support/Telemetry.h"
#include "support/Trace.h"

#include <algorithm>

using namespace terracpp;
using namespace terracpp::lua;

namespace {

/// Per-connected-component checking state.
class CheckState {
public:
  CheckState(TerraContext &Ctx, Interp &I) : Ctx(Ctx), I(I) {}

  TerraContext &Ctx;
  Interp &I;
  std::vector<TerraFunction *> Worklist;
  TerraFunction *Current = nullptr;
  /// Set when a failure was a link error (reference to a declared-but-
  /// undefined function). Such failures are not sticky: typechecking is
  /// monotonic (paper §4.1) and must succeed once the function is defined.
  bool FailedOnUndefined = false;

  bool fail(SourceLoc Loc, const std::string &Msg) {
    I.diags().error(Loc, Msg);
    return false;
  }

  bool checkFunction(TerraFunction *F);
  bool completeStruct(StructType *ST, SourceLoc Loc);

  Type *checkExpr(TerraExpr *&E);
  bool checkStmt(TerraStmt *S);
  bool checkBlock(BlockStmt *B);

  /// Inserts an implicit conversion of \p E to \p To, or fails.
  bool convert(TerraExpr *&E, Type *To);
  /// True without modifying anything.
  bool canConvert(Type *From, Type *To, TerraExpr *E);
  /// Explicit cast (allows lossy conversions, pointer<->integer, bitcasts).
  bool castExplicit(TerraExpr *&E, Type *To, SourceLoc Loc);
  /// Tries a __cast metamethod; returns true and replaces E on success.
  bool tryUserCast(TerraExpr *&E, Type *To, bool &Applied);

  Type *promote(Type *A, Type *B);
  TerraExpr *makeCast(TerraExpr *E, Type *To, bool Implicit);
  bool referenceFunction(TerraFunction *Callee, SourceLoc Loc,
                         FunctionType *&FnTy);

};

//===----------------------------------------------------------------------===//
// Struct completion
//===----------------------------------------------------------------------===//

bool CheckState::completeStruct(StructType *ST, SourceLoc Loc) {
  if (ST->isComplete())
    return true;
  // Run the __finalizelayout metamethod so libraries (e.g. the class
  // system) can compute a layout at the latest possible time (paper §6.3.1).
  Value MM = ST->metamethods()->getStr("__finalizelayout");
  if (!MM.isNil()) {
    // Remove it first so re-entrant completion does not loop.
    ST->metamethods()->setStr("__finalizelayout", Value::nil());
    std::vector<Value> Results;
    if (!I.call(MM, {Value::type(ST)}, Results, Loc))
      return false;
  }
  std::string Err;
  if (!ST->finalizeLayout(Err))
    return fail(Loc, Err);
  // Post-layout hook (__staticinitialize): libraries use it to fill vtable
  // storage once offsets are known (paper §6.3.1's class system).
  Value SI = ST->metamethods()->getStr("__staticinitialize");
  if (!SI.isNil()) {
    ST->metamethods()->setStr("__staticinitialize", Value::nil());
    std::vector<Value> Results;
    if (!I.call(SI, {Value::type(ST)}, Results, Loc))
      return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Conversions
//===----------------------------------------------------------------------===//

TerraExpr *CheckState::makeCast(TerraExpr *E, Type *To, bool Implicit) {
  auto *C = Ctx.make<CastExpr>(E->loc());
  C->TyRef = TypeRef::fromType(To);
  C->Operand = E;
  C->Implicit = Implicit;
  C->Ty = To;
  return C;
}

/// Static conversion predicate shared with the FFI.
static bool implicitOK(Type *From, Type *To, bool IsNullPtrLiteral) {
  if (From == To)
    return true;
  if (From->isArithmetic() && To->isArithmetic())
    return true;
  if (From->isPointer() && To->isPointer())
    return IsNullPtrLiteral; // &T -> &U only for nil.
  if (auto *VT = dyn_cast<VectorType>(To)) {
    if (From->isArithmetic() && VT->element()->isArithmetic())
      return true; // Broadcast.
    if (auto *VF = dyn_cast<VectorType>(From))
      return VF->length() == VT->length() &&
             VF->element()->isArithmetic() && VT->element()->isArithmetic();
  }
  // Arrays decay to pointers to their element type.
  if (auto *AT = dyn_cast<ArrayType>(From))
    if (auto *PT = dyn_cast<PointerType>(To))
      return AT->element() == PT->pointee();
  return false;
}

bool CheckState::canConvert(Type *From, Type *To, TerraExpr *E) {
  bool IsNull = false;
  if (const auto *L = dyn_cast_or_null<LitExpr>(E))
    IsNull = L->LK == LitExpr::LK_Pointer && L->PtrVal == nullptr;
  return implicitOK(From, To, IsNull);
}

bool CheckState::tryUserCast(TerraExpr *&E, Type *To, bool &Applied) {
  Applied = false;
  Type *From = E->Ty;
  Type *FromBase = From;
  Type *ToBase = To;
  if (auto *P = dyn_cast<PointerType>(FromBase))
    FromBase = P->pointee();
  if (auto *P = dyn_cast<PointerType>(ToBase))
    ToBase = P->pointee();

  // Paper §4.1: "it will call the __cast metamethod of either type...
  // if both are successful, we favor the metamethod of the starting type."
  for (Type *Candidate : {FromBase, ToBase}) {
    auto *ST = dyn_cast<StructType>(Candidate);
    if (!ST)
      continue;
    Value MM = ST->metamethods()->getStr("__cast");
    if (MM.isNil())
      continue;
    size_t Checkpoint = I.diags().checkpoint();
    QuoteValue Q;
    Q.Expr = E;
    std::vector<Value> Results;
    bool OK = I.call(MM, {Value::type(From), Value::type(To), Value::quote(Q)},
                     Results, E->loc());
    if (OK && !Results.empty() && Results[0].isQuote() &&
        Results[0].asQuote().isExpr()) {
      TerraExpr *NewE = Results[0].asQuote().Expr;
      Type *NewTy = checkExpr(NewE);
      if (NewTy == To) {
        E = NewE;
        Applied = true;
        return true;
      }
      if (NewTy && canConvert(NewTy, To, NewE)) {
        E = makeCast(NewE, To, /*Implicit=*/true);
        Applied = true;
        return true;
      }
    }
    // This metamethod didn't produce the conversion; roll back any errors
    // it reported and try the other side.
    I.diags().rollback(Checkpoint);
  }
  return true;
}

bool CheckState::convert(TerraExpr *&E, Type *To) {
  Type *From = E->Ty;
  assert(From && "operand not checked");
  if (From == To)
    return true;
  if (canConvert(From, To, E)) {
    E = makeCast(E, To, /*Implicit=*/true);
    return true;
  }
  bool Applied = false;
  if (!tryUserCast(E, To, Applied))
    return false;
  if (Applied)
    return true;
  return fail(E->loc(), "cannot convert " + From->str() + " to " + To->str());
}

bool CheckState::castExplicit(TerraExpr *&E, Type *To, SourceLoc Loc) {
  Type *From = E->Ty;
  if (From == To)
    return true;
  if (canConvert(From, To, E)) {
    E = makeCast(E, To, /*Implicit=*/false);
    return true;
  }
  // Explicit-only conversions.
  bool OK = false;
  if (From->isPointer() && To->isPointer())
    OK = true; // Reinterpret.
  else if (From->isPointer() && To->isIntegral() && To->size() == 8)
    OK = true;
  else if (From->isIntegral() && To->isPointer())
    OK = true;
  else if (From->isBool() && To->isIntegral())
    OK = true;
  else if (From->isIntegral() && To->isBool())
    OK = true;
  else if (From->isPointer() && To->isFunction())
    OK = true; // Raw vtable slots cast to function values (paper §6.3.1).
  else if (From->isFunction() && To->isPointer())
    OK = true;
  if (OK) {
    E = makeCast(E, To, /*Implicit=*/false);
    return true;
  }
  bool Applied = false;
  if (!tryUserCast(E, To, Applied))
    return false;
  if (Applied)
    return true;
  return fail(Loc, "invalid cast from " + From->str() + " to " + To->str());
}

Type *CheckState::promote(Type *A, Type *B) {
  if (A == B)
    return A;
  // Vector + scalar: the vector shape wins.
  auto *VA = dyn_cast<VectorType>(A);
  auto *VB = dyn_cast<VectorType>(B);
  if (VA || VB) {
    uint64_t Len = VA ? VA->length() : VB->length();
    if (VA && VB && VA->length() != VB->length())
      return nullptr;
    Type *EA = VA ? VA->element() : A;
    Type *EB = VB ? VB->element() : B;
    Type *E = promote(EA, EB);
    if (!E || !E->isArithmetic())
      return nullptr;
    return Ctx.types().vector(E, Len);
  }
  auto *PA = dyn_cast<PrimType>(A);
  auto *PB = dyn_cast<PrimType>(B);
  if (!PA || !PB || !PA->isIntegralPrim() || !PB->isIntegralPrim()) {
    if (PA && PB && PA->isFloatPrim() && PB->isFloatPrim())
      return PA->conversionRank() >= PB->conversionRank() ? A : B;
    if (PA && PB && (PA->isFloatPrim() || PB->isFloatPrim()) &&
        PA->isIntegralPrim() + PA->isFloatPrim() &&
        PB->isIntegralPrim() + PB->isFloatPrim())
      return PA->isFloatPrim() ? A : B;
    return nullptr;
  }
  // Both integral: wider wins; same width, unsigned wins.
  if (PA->conversionRank() != PB->conversionRank())
    return PA->conversionRank() > PB->conversionRank() ? A : B;
  return PA->isSignedPrim() ? B : A;
}

//===----------------------------------------------------------------------===//
// Function references (paper Fig. 4)
//===----------------------------------------------------------------------===//

bool CheckState::referenceFunction(TerraFunction *Callee, SourceLoc Loc,
                                   FunctionType *&FnTy) {
  if (Current) {
    auto &Refs = Current->Callees;
    if (std::find(Refs.begin(), Refs.end(), Callee) == Refs.end())
      Refs.push_back(Callee);
  }
  switch (Callee->State) {
  case TerraFunction::SK_Checked:
    FnTy = Callee->FnTy;
    return true;
  case TerraFunction::SK_Error:
    return fail(Loc, "referenced terra function '" + Callee->Name +
                         "' failed to typecheck");
  case TerraFunction::SK_Declared:
    FailedOnUndefined = true;
    return fail(Loc, "terra function '" + Callee->Name +
                         "' is declared but not defined (link error)");
  case TerraFunction::SK_Checking: {
    // Mutual recursion: the callee's signature must be computable without
    // its body.
    if (Callee->FnTy) {
      FnTy = Callee->FnTy;
      return true;
    }
    return fail(Loc, "recursive reference to '" + Callee->Name +
                         "' requires an explicit return type annotation");
  }
  case TerraFunction::SK_Defined: {
    Worklist.push_back(Callee);
    // Compute the signature now (params are always typed; the return type
    // must be declared or the body gets checked first on demand).
    if (Callee->FnTy) {
      FnTy = Callee->FnTy;
      return true;
    }
    if (Callee->RetTy.Resolved) {
      std::vector<Type *> Params;
      for (unsigned I2 = 0; I2 != Callee->NumParams; ++I2)
        Params.push_back(Callee->Params[I2]->DeclaredType);
      Callee->FnTy =
          Ctx.types().function(std::move(Params), Callee->RetTy.Resolved);
      FnTy = Callee->FnTy;
      return true;
    }
    // No annotation: we must check the callee's body to infer its type.
    // Do it eagerly here (cycles are caught by SK_Checking above).
    TerraFunction *SavedCurrent = Current;
    bool OK = checkFunction(Callee);
    Current = SavedCurrent;
    if (!OK)
      return fail(Loc, "referenced terra function '" + Callee->Name +
                           "' failed to typecheck");
    FnTy = Callee->FnTy;
    return true;
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Type *CheckState::checkExpr(TerraExpr *&E) {
  if (!E)
    return nullptr;
  if (E->Ty)
    return E->Ty; // Already checked (shared via desugaring).

  switch (E->kind()) {
  case TerraNode::NK_Lit: {
    auto *L = cast<LitExpr>(E);
    assert(L->LitTy && "literal not specialized");
    L->Ty = L->LitTy;
    return L->Ty;
  }
  case TerraNode::NK_Var: {
    auto *V = cast<VarExpr>(E);
    if (!V->Sym) {
      fail(E->loc(), "unspecialized variable in typechecking");
      return nullptr;
    }
    if (!V->Sym->DeclaredType) {
      fail(E->loc(), "variable '" + *V->Sym->Name + "' has no type (symbol "
                                                    "used before declaration)");
      return nullptr;
    }
    V->Ty = V->Sym->DeclaredType;
    V->IsLValue = true;
    return V->Ty;
  }
  case TerraNode::NK_GlobalRef: {
    auto *G = cast<GlobalRefExpr>(E);
    if (Current) {
      auto &Refs = Current->GlobalRefs;
      if (std::find(Refs.begin(), Refs.end(), G->Global) == Refs.end())
        Refs.push_back(G->Global);
    }
    G->Ty = G->Global->Ty;
    G->IsLValue = true;
    return G->Ty;
  }
  case TerraNode::NK_FuncLit: {
    auto *F = cast<FuncLitExpr>(E);
    FunctionType *FnTy = nullptr;
    if (!referenceFunction(F->Fn, E->loc(), FnTy))
      return nullptr;
    F->Ty = FnTy;
    return F->Ty;
  }
  case TerraNode::NK_Select: {
    auto *S = cast<SelectExpr>(E);
    Type *BaseTy = checkExpr(S->Base);
    if (!BaseTy)
      return nullptr;
    // Auto-deref a pointer to struct.
    if (auto *PT = dyn_cast<PointerType>(BaseTy)) {
      if (PT->pointee()->isStruct()) {
        auto *D = Ctx.make<UnOpExpr>(S->loc());
        D->Op = UnOpKind::Deref;
        D->Operand = S->Base;
        D->Ty = PT->pointee();
        D->IsLValue = true;
        S->Base = D;
        BaseTy = PT->pointee();
      }
    }
    auto *ST = dyn_cast<StructType>(BaseTy);
    if (!ST) {
      fail(E->loc(), "cannot select field '" + *S->Field + "' from value of "
                                                           "type " +
                         BaseTy->str());
      return nullptr;
    }
    if (!completeStruct(ST, E->loc()))
      return nullptr;
    int Idx = ST->fieldIndex(*S->Field);
    if (Idx < 0) {
      fail(E->loc(), "struct " + ST->name() + " has no field '" + *S->Field +
                         "'");
      return nullptr;
    }
    S->FieldIndex = Idx;
    S->Ty = ST->fields()[Idx].FieldType;
    S->IsLValue = S->Base->IsLValue;
    return S->Ty;
  }
  case TerraNode::NK_MethodCall: {
    auto *M = cast<MethodCallExpr>(E);
    Type *ObjTy = checkExpr(M->Obj);
    if (!ObjTy)
      return nullptr;
    Type *Bare = ObjTy;
    if (auto *PT = dyn_cast<PointerType>(Bare))
      Bare = PT->pointee();
    auto *ST = dyn_cast<StructType>(Bare);
    if (!ST) {
      fail(E->loc(), "method call on non-struct type " + ObjTy->str());
      return nullptr;
    }
    // Examining the type triggers layout finalization (which may install
    // methods, e.g. the class system's stubs) before the lookup.
    if (!completeStruct(ST, E->loc()))
      return nullptr;
    // Lazy method lookup in the struct's host-side methods table
    // (paper §4.1: obj:m(a) desugars to [T.methods.m](obj, a)).
    Value Method = ST->methods()->getStr(*M->Method);
    if (!Method.isTerraFn()) {
      fail(E->loc(),
           "struct " + ST->name() + " has no method '" + *M->Method + "'");
      return nullptr;
    }
    FunctionType *FnTy = nullptr;
    if (!referenceFunction(Method.asTerraFn(), E->loc(), FnTy))
      return nullptr;
    // Build the self argument: take the address when the method expects a
    // pointer and we have an lvalue.
    TerraExpr *Self = M->Obj;
    if (!FnTy->params().empty()) {
      Type *SelfParam = FnTy->params()[0];
      if (SelfParam->isPointer() && !ObjTy->isPointer()) {
        if (!Self->IsLValue) {
          fail(E->loc(), "cannot take address of temporary for method call");
          return nullptr;
        }
        auto *A = Ctx.make<UnOpExpr>(M->loc());
        A->Op = UnOpKind::AddrOf;
        A->Operand = Self;
        A->Ty = Ctx.types().pointer(ObjTy);
        Self = A;
      } else if (!SelfParam->isPointer() && ObjTy->isPointer()) {
        auto *D = Ctx.make<UnOpExpr>(M->loc());
        D->Op = UnOpKind::Deref;
        D->Operand = Self;
        D->Ty = cast<PointerType>(ObjTy)->pointee();
        D->IsLValue = true;
        Self = D;
      }
    }
    auto *F = Ctx.make<FuncLitExpr>(M->loc());
    F->Fn = Method.asTerraFn();
    F->Ty = FnTy;
    std::vector<TerraExpr *> Args;
    Args.push_back(Self);
    for (unsigned I2 = 0; I2 != M->NumArgs; ++I2)
      Args.push_back(M->Args[I2]);
    auto *A = Ctx.make<ApplyExpr>(M->loc());
    A->Callee = F;
    A->Args = Ctx.copyArray(Args);
    A->NumArgs = Args.size();
    E = A; // Replace the method call with the desugared application.
    return checkExpr(E);
  }
  case TerraNode::NK_Apply: {
    auto *A = cast<ApplyExpr>(E);
    Type *CalleeTy = checkExpr(A->Callee);
    if (!CalleeTy)
      return nullptr;
    auto *FnTy = dyn_cast<FunctionType>(CalleeTy);
    if (!FnTy) {
      fail(E->loc(), "called value has type " + CalleeTy->str() +
                         ", which is not callable");
      return nullptr;
    }
    const auto *FL = dyn_cast<FuncLitExpr>(A->Callee);
    bool VarArg = FL && FL->Fn->IsVarArg;
    if (VarArg ? A->NumArgs < FnTy->params().size()
               : A->NumArgs != FnTy->params().size()) {
      fail(E->loc(), "call expects " +
                         std::to_string(FnTy->params().size()) +
                         std::string(VarArg ? "+" : "") +
                         " arguments but got " + std::to_string(A->NumArgs));
      return nullptr;
    }
    for (unsigned I2 = 0; I2 != A->NumArgs; ++I2) {
      if (!checkExpr(A->Args[I2]))
        return nullptr;
      if (I2 < FnTy->params().size()) {
        if (!convert(A->Args[I2], FnTy->params()[I2]))
          return nullptr;
      } else {
        // C default argument promotions for varargs.
        Type *AT = A->Args[I2]->Ty;
        if (AT->isFloat() && AT->size() == 4) {
          if (!convert(A->Args[I2], Ctx.types().float64()))
            return nullptr;
        } else if (AT->isIntegral() && AT->size() < 4) {
          if (!convert(A->Args[I2], Ctx.types().int32()))
            return nullptr;
        }
      }
    }
    A->Ty = FnTy->result();
    return A->Ty;
  }
  case TerraNode::NK_BinOp: {
    auto *B = cast<BinOpExpr>(E);
    Type *L = checkExpr(B->LHS);
    Type *R = checkExpr(B->RHS);
    if (!L || !R)
      return nullptr;
    switch (B->Op) {
    case BinOpKind::Add:
    case BinOpKind::Sub: {
      // Pointer arithmetic.
      if (L->isPointer() && R->isIntegral()) {
        if (!convert(B->RHS, Ctx.types().int64()))
          return nullptr;
        B->Ty = L;
        return B->Ty;
      }
      if (B->Op == BinOpKind::Add && L->isIntegral() && R->isPointer()) {
        if (!convert(B->LHS, Ctx.types().int64()))
          return nullptr;
        B->Ty = R;
        return B->Ty;
      }
      if (B->Op == BinOpKind::Sub && L->isPointer() && R == L) {
        B->Ty = Ctx.types().int64();
        return B->Ty;
      }
      [[fallthrough]];
    }
    case BinOpKind::Mul:
    case BinOpKind::Div:
    case BinOpKind::Mod: {
      Type *P = promote(L, R);
      if (!P || !(P->isArithmetic() ||
                  (P->isVector() &&
                   cast<VectorType>(P)->element()->isArithmetic()))) {
        fail(E->loc(), "invalid operands to arithmetic: " + L->str() +
                           " and " + R->str());
        return nullptr;
      }
      if (B->Op == BinOpKind::Mod && P->isFloat()) {
        fail(E->loc(), "'%' requires integral operands");
        return nullptr;
      }
      if (!convert(B->LHS, P) || !convert(B->RHS, P))
        return nullptr;
      B->Ty = P;
      return B->Ty;
    }
    case BinOpKind::Shl:
    case BinOpKind::Shr: {
      Type *P = promote(L, R);
      if (!P || !P->isIntegral()) {
        fail(E->loc(), "shift requires integral operands (got " + L->str() +
                           " and " + R->str() + ")");
        return nullptr;
      }
      if (!convert(B->LHS, P) || !convert(B->RHS, P))
        return nullptr;
      B->Ty = P;
      return B->Ty;
    }
    case BinOpKind::Lt:
    case BinOpKind::Le:
    case BinOpKind::Gt:
    case BinOpKind::Ge: {
      Type *P = promote(L, R);
      if (!P || !P->isArithmetic()) {
        fail(E->loc(), "invalid operands to comparison: " + L->str() +
                           " and " + R->str());
        return nullptr;
      }
      if (!convert(B->LHS, P) || !convert(B->RHS, P))
        return nullptr;
      B->Ty = Ctx.types().boolType();
      return B->Ty;
    }
    case BinOpKind::Eq:
    case BinOpKind::Ne: {
      if (L->isPointer() || R->isPointer()) {
        // Pointer equality (nil literals convert).
        Type *P = L->isPointer() ? L : R;
        if (!convert(B->LHS, P) || !convert(B->RHS, P))
          return nullptr;
      } else if (L->isBool() && R->isBool()) {
        // OK as-is.
      } else {
        Type *P = promote(L, R);
        if (!P || !P->isArithmetic()) {
          fail(E->loc(), "invalid operands to equality: " + L->str() +
                             " and " + R->str());
          return nullptr;
        }
        if (!convert(B->LHS, P) || !convert(B->RHS, P))
          return nullptr;
      }
      B->Ty = Ctx.types().boolType();
      return B->Ty;
    }
    case BinOpKind::And:
    case BinOpKind::Or: {
      if (!L->isBool() || !R->isBool()) {
        fail(E->loc(), "'and'/'or' require boolean operands in terra (got " +
                           L->str() + " and " + R->str() + ")");
        return nullptr;
      }
      B->Ty = Ctx.types().boolType();
      return B->Ty;
    }
    }
    return nullptr;
  }
  case TerraNode::NK_UnOp: {
    auto *U = cast<UnOpExpr>(E);
    Type *T = checkExpr(U->Operand);
    if (!T)
      return nullptr;
    switch (U->Op) {
    case UnOpKind::Neg: {
      if (!(T->isArithmetic() ||
            (T->isVector() && cast<VectorType>(T)->element()->isArithmetic()))) {
        fail(E->loc(), "cannot negate " + T->str());
        return nullptr;
      }
      U->Ty = T;
      return U->Ty;
    }
    case UnOpKind::Not: {
      if (!T->isBool()) {
        fail(E->loc(), "'not' requires a boolean operand");
        return nullptr;
      }
      U->Ty = T;
      return U->Ty;
    }
    case UnOpKind::Deref: {
      auto *PT = dyn_cast<PointerType>(T);
      if (!PT) {
        fail(E->loc(), "cannot dereference non-pointer type " + T->str());
        return nullptr;
      }
      U->Ty = PT->pointee();
      U->IsLValue = true;
      return U->Ty;
    }
    case UnOpKind::AddrOf: {
      if (!U->Operand->IsLValue) {
        fail(E->loc(), "cannot take the address of a non-lvalue");
        return nullptr;
      }
      U->Ty = Ctx.types().pointer(T);
      return U->Ty;
    }
    }
    return nullptr;
  }
  case TerraNode::NK_Index: {
    auto *X = cast<IndexExpr>(E);
    Type *BaseTy = checkExpr(X->Base);
    Type *IdxTy = checkExpr(X->Idx);
    if (!BaseTy || !IdxTy)
      return nullptr;
    if (!IdxTy->isIntegral()) {
      fail(E->loc(), "index must be integral, got " + IdxTy->str());
      return nullptr;
    }
    if (!convert(X->Idx, Ctx.types().int64()))
      return nullptr;
    if (auto *PT = dyn_cast<PointerType>(BaseTy)) {
      X->Ty = PT->pointee();
      X->IsLValue = true;
      return X->Ty;
    }
    if (auto *AT = dyn_cast<ArrayType>(BaseTy)) {
      X->Ty = AT->element();
      X->IsLValue = X->Base->IsLValue;
      return X->Ty;
    }
    if (auto *VT = dyn_cast<VectorType>(BaseTy)) {
      X->Ty = VT->element();
      X->IsLValue = X->Base->IsLValue;
      return X->Ty;
    }
    fail(E->loc(), "cannot index type " + BaseTy->str());
    return nullptr;
  }
  case TerraNode::NK_Cast: {
    auto *C = cast<CastExpr>(E);
    Type *To = C->TyRef.Resolved;
    assert(To && "cast type unresolved after specialization");
    if (!checkExpr(C->Operand))
      return nullptr;
    TerraExpr *Operand = C->Operand;
    if (!castExplicit(Operand, To, E->loc()))
      return nullptr;
    E = Operand; // castExplicit wrapped (or passed through) the operand.
    if (E->Ty != To) {
      // Identity conversion: just annotate.
      E = makeCast(Operand, To, false);
    }
    return E->Ty;
  }
  case TerraNode::NK_Constructor: {
    auto *C = cast<ConstructorExpr>(E);
    Type *T = C->TyRef.Resolved;
    auto *ST = dyn_cast_or_null<StructType>(T);
    if (!ST) {
      fail(E->loc(), "constructor requires a struct type");
      return nullptr;
    }
    if (!completeStruct(ST, E->loc()))
      return nullptr;
    const auto &Fields = ST->fields();
    if (C->NumInits > Fields.size()) {
      fail(E->loc(), "too many initializers for struct " + ST->name());
      return nullptr;
    }
    for (unsigned I2 = 0; I2 != C->NumInits; ++I2) {
      int FieldIdx = static_cast<int>(I2);
      if (C->FieldNames && C->FieldNames[I2]) {
        FieldIdx = ST->fieldIndex(*C->FieldNames[I2]);
        if (FieldIdx < 0) {
          fail(E->loc(), "struct " + ST->name() + " has no field '" +
                             *C->FieldNames[I2] + "'");
          return nullptr;
        }
      }
      if (!checkExpr(C->Inits[I2]))
        return nullptr;
      if (!convert(C->Inits[I2], Fields[FieldIdx].FieldType))
        return nullptr;
    }
    C->Ty = ST;
    return C->Ty;
  }
  case TerraNode::NK_Intrinsic: {
    auto *N = cast<IntrinsicExpr>(E);
    switch (N->IK) {
    case IntrinsicKind::Sizeof: {
      Type *T = N->TyRef.Resolved;
      if (auto *ST = dyn_cast_or_null<StructType>(T))
        if (!completeStruct(ST, E->loc()))
          return nullptr;
      N->Ty = Ctx.types().uint64();
      return N->Ty;
    }
    case IntrinsicKind::Min:
    case IntrinsicKind::Max: {
      if (N->NumArgs != 2) {
        fail(E->loc(), "min/max take exactly two arguments");
        return nullptr;
      }
      Type *A = checkExpr(N->Args[0]);
      Type *B2 = checkExpr(N->Args[1]);
      if (!A || !B2)
        return nullptr;
      Type *P = promote(A, B2);
      bool ElemOK =
          P && (P->isArithmetic() ||
                (P->isVector() &&
                 cast<VectorType>(P)->element()->isArithmetic()));
      if (!ElemOK) {
        fail(E->loc(), "invalid operands to min/max: " + A->str() + " and " +
                           B2->str());
        return nullptr;
      }
      if (!convert(N->Args[0], P) || !convert(N->Args[1], P))
        return nullptr;
      N->Ty = P;
      return N->Ty;
    }
    case IntrinsicKind::Prefetch: {
      if (N->NumArgs < 1) {
        fail(E->loc(), "prefetch requires at least an address argument");
        return nullptr;
      }
      for (unsigned I2 = 0; I2 != N->NumArgs; ++I2)
        if (!checkExpr(N->Args[I2]))
          return nullptr;
      if (!N->Args[0]->Ty->isPointer()) {
        fail(E->loc(), "prefetch address must be a pointer");
        return nullptr;
      }
      for (unsigned I2 = 1; I2 != N->NumArgs; ++I2)
        if (!convert(N->Args[I2], Ctx.types().int32()))
          return nullptr;
      N->Ty = Ctx.types().voidType();
      return N->Ty;
    }
    }
    return nullptr;
  }
  default:
    fail(E->loc(), "internal: unexpected expression in typechecking");
    return nullptr;
  }
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool CheckState::checkBlock(BlockStmt *B) {
  for (unsigned I2 = 0; I2 != B->NumStmts; ++I2)
    if (!checkStmt(B->Stmts[I2]))
      return false;
  return true;
}

bool CheckState::checkStmt(TerraStmt *S) {
  switch (S->kind()) {
  case TerraNode::NK_Block:
    return checkBlock(cast<BlockStmt>(S));
  case TerraNode::NK_VarDecl: {
    auto *D = cast<VarDeclStmt>(S);
    for (unsigned I2 = 0; I2 != D->NumNames; ++I2) {
      VarDeclName &N = D->Names[I2];
      Type *DeclTy = N.Sym->DeclaredType;
      if (I2 < D->NumInits) {
        Type *InitTy = checkExpr(D->Inits[I2]);
        if (!InitTy)
          return false;
        if (InitTy->isVoid())
          return fail(S->loc(), "cannot initialize a variable from a void "
                                "expression");
        if (DeclTy) {
          if (!convert(D->Inits[I2], DeclTy))
            return false;
        } else {
          N.Sym->DeclaredType = InitTy;
        }
      } else if (!DeclTy) {
        return fail(S->loc(), "variable '" + *N.Sym->Name +
                                  "' needs a type annotation or initializer");
      }
      if (auto *ST = dyn_cast<StructType>(N.Sym->DeclaredType))
        if (!completeStruct(ST, S->loc()))
          return false;
    }
    return true;
  }
  case TerraNode::NK_Assign: {
    auto *A = cast<AssignStmt>(S);
    if (A->NumLHS != A->NumRHS)
      return fail(S->loc(), "assignment count mismatch");
    // Terra evaluates all RHS before assigning (needed for swaps like
    // `B,A = B+ldb, A+1`): check both sides, conversions per-slot.
    for (unsigned I2 = 0; I2 != A->NumLHS; ++I2) {
      Type *LT = checkExpr(A->LHS[I2]);
      if (!LT)
        return false;
      if (!A->LHS[I2]->IsLValue)
        return fail(A->LHS[I2]->loc(), "left side of assignment is not an "
                                       "lvalue");
      if (!checkExpr(A->RHS[I2]))
        return false;
      if (!convert(A->RHS[I2], LT))
        return false;
    }
    return true;
  }
  case TerraNode::NK_If: {
    auto *I2 = cast<IfStmt>(S);
    for (unsigned K = 0; K != I2->NumClauses; ++K) {
      Type *CT = checkExpr(I2->Conds[K]);
      if (!CT)
        return false;
      if (!CT->isBool())
        return fail(I2->Conds[K]->loc(),
                    "'if' condition must be bool, got " + CT->str());
      if (!checkBlock(I2->Blocks[K]))
        return false;
    }
    return !I2->ElseBlock || checkBlock(I2->ElseBlock);
  }
  case TerraNode::NK_While: {
    auto *W = cast<WhileStmt>(S);
    Type *CT = checkExpr(W->Cond);
    if (!CT)
      return false;
    if (!CT->isBool())
      return fail(W->Cond->loc(),
                  "'while' condition must be bool, got " + CT->str());
    return checkBlock(W->Body);
  }
  case TerraNode::NK_ForNum: {
    auto *F = cast<ForNumStmt>(S);
    Type *LoT = checkExpr(F->Lo);
    Type *HiT = checkExpr(F->Hi);
    if (!LoT || !HiT)
      return false;
    Type *StepT = nullptr;
    if (F->Step) {
      StepT = checkExpr(F->Step);
      if (!StepT)
        return false;
    }
    Type *IterT = F->Var.Sym->DeclaredType;
    if (!IterT) {
      IterT = promote(LoT, HiT);
      if (IterT && StepT)
        IterT = promote(IterT, StepT);
    }
    if (!IterT || !IterT->isIntegral())
      return fail(S->loc(), "terra 'for' bounds must be integral");
    F->Var.Sym->DeclaredType = IterT;
    if (!convert(F->Lo, IterT) || !convert(F->Hi, IterT))
      return false;
    if (F->Step && !convert(F->Step, IterT))
      return false;
    return checkBlock(F->Body);
  }
  case TerraNode::NK_Return: {
    auto *R = cast<ReturnStmt>(S);
    Type *ValTy = Ctx.types().voidType();
    if (R->Val) {
      ValTy = checkExpr(R->Val);
      if (!ValTy)
        return false;
    }
    assert(Current && "return outside function");
    Type *Expected = Current->RetTy.Resolved;
    if (!Expected) {
      Current->RetTy = TypeRef::fromType(ValTy);
      return true;
    }
    if (Expected->isVoid()) {
      if (R->Val)
        return fail(S->loc(), "returning a value from a void function");
      return true;
    }
    if (!R->Val)
      return fail(S->loc(), "missing return value (function returns " +
                                Expected->str() + ")");
    return convert(R->Val, Expected);
  }
  case TerraNode::NK_Break:
    return true;
  case TerraNode::NK_ExprStmt:
    return checkExpr(cast<ExprStmt>(S)->E) != nullptr;
  default:
    return fail(S->loc(), "internal: unexpected statement in typechecking");
  }
}

//===----------------------------------------------------------------------===//
// Function checking
//===----------------------------------------------------------------------===//

bool CheckState::checkFunction(TerraFunction *F) {
  switch (F->State) {
  case TerraFunction::SK_Checked:
    return true;
  case TerraFunction::SK_Error:
    return false;
  case TerraFunction::SK_Checking:
    return true; // Cycle; caller handles signature needs.
  case TerraFunction::SK_Declared:
    return fail(SourceLoc(), "terra function '" + F->Name +
                                 "' is declared but never defined");
  case TerraFunction::SK_Defined:
    break;
  }

  F->State = TerraFunction::SK_Checking;
  TerraFunction *SavedCurrent = Current;
  Current = F;

  bool OK = true;
  // Validate and complete parameter types.
  for (unsigned I2 = 0; I2 != F->NumParams && OK; ++I2) {
    TerraSymbol *P = F->Params[I2];
    if (!P->DeclaredType) {
      OK = fail(SourceLoc(), "parameter '" + *P->Name + "' of '" + F->Name +
                                 "' has no type");
      break;
    }
    if (auto *ST = dyn_cast<StructType>(P->DeclaredType))
      OK = completeStruct(ST, SourceLoc());
  }
  if (OK && F->RetTy.Resolved) {
    std::vector<Type *> Params;
    for (unsigned I2 = 0; I2 != F->NumParams; ++I2)
      Params.push_back(F->Params[I2]->DeclaredType);
    F->FnTy = Ctx.types().function(std::move(Params), F->RetTy.Resolved);
  }

  if (OK)
    OK = checkBlock(F->Body);

  if (OK && !F->RetTy.Resolved)
    F->RetTy = TypeRef::fromType(Ctx.types().voidType());

  // Return coverage ("control can reach the end of the body") is checked
  // CFG-precisely by the analysis layer's TA002, which the compile pipeline
  // runs unconditionally after typechecking.

  if (OK && !F->FnTy) {
    std::vector<Type *> Params;
    for (unsigned I2 = 0; I2 != F->NumParams; ++I2)
      Params.push_back(F->Params[I2]->DeclaredType);
    F->FnTy = Ctx.types().function(std::move(Params), F->RetTy.Resolved);
  }
  if (OK) {
    if (auto *ST = dyn_cast<StructType>(F->RetTy.Resolved))
      OK = completeStruct(ST, SourceLoc());
  }

  // Link failures are retryable (monotonic typechecking); real type errors
  // are sticky.
  F->State = OK ? TerraFunction::SK_Checked
                : (FailedOnUndefined ? TerraFunction::SK_Defined
                                     : TerraFunction::SK_Error);
  Current = SavedCurrent;
  return OK;
}

} // namespace

//===----------------------------------------------------------------------===//
// Typechecker public interface
//===----------------------------------------------------------------------===//

Typechecker::Typechecker(TerraContext &Ctx, Interp &I) : Ctx(Ctx), I(I) {}

bool Typechecker::check(TerraFunction *F) {
  if (F->State == TerraFunction::SK_Checked)
    return true;
  if (F->State == TerraFunction::SK_Error) {
    I.diags().error(SourceLoc(), "terra function '" + F->Name +
                                     "' previously failed to typecheck");
    return false;
  }
  if (F->IsExtern || F->HostClosure) {
    // Externs and host wrappers carry their type from creation.
    F->State = TerraFunction::SK_Checked;
    return true;
  }
  // Typechecking is lazy — deferred to the first call (paper Fig. 4) — and
  // covers the root's whole connected component in one pass.
  trace::TraceSpan Span("typecheck", "frontend");
  Span.arg("fn", F->Name);
  telemetry::Registry &Reg = telemetry::Registry::global();
  Reg.counter("frontend.typechecks").inc();
  telemetry::ScopedTimerUs Timer(Reg.histogram("frontend.typecheck_us"));
  CheckState S(Ctx, I);
  if (!S.checkFunction(F))
    return false;
  // Paper Fig. 4: everything in the connected component must typecheck
  // before the root can run.
  while (!S.Worklist.empty()) {
    TerraFunction *Next = S.Worklist.back();
    S.Worklist.pop_back();
    if (Next->State == TerraFunction::SK_Checked ||
        Next->IsExtern || Next->HostClosure)
      continue;
    if (!S.checkFunction(Next)) {
      F->State = S.FailedOnUndefined ? TerraFunction::SK_Defined
                                     : TerraFunction::SK_Error;
      return false;
    }
  }
  return true;
}

bool Typechecker::completeStruct(StructType *ST, SourceLoc Loc) {
  CheckState S(Ctx, I);
  return S.completeStruct(ST, Loc);
}

bool Typechecker::isImplicitlyConvertible(Type *From, Type *To) {
  return implicitOK(From, To, /*IsNullPtrLiteral=*/false);
}
