#include "core/TerraJIT.h"

#include "support/Timer.h"

#include <cstdio>
#include <cstring>
#include <cstdlib>
#include <dlfcn.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <unistd.h>

using namespace terracpp;

JITEngine::JITEngine(DiagnosticEngine &Diags) : Diags(Diags) {
  char Template[] = "/tmp/terracpp-XXXXXX";
  const char *Dir = mkdtemp(Template);
  TempDir = Dir ? Dir : "/tmp";
}

JITEngine::~JITEngine() {
  for (void *H : Handles)
    dlclose(H);
  // Best-effort cleanup of the scratch directory.
  if (TempDir.rfind("/tmp/terracpp-", 0) == 0) {
    std::string Cmd = "rm -rf '" + TempDir + "'";
    if (system(Cmd.c_str()) != 0) {
      // Leave stray files behind rather than failing shutdown.
    }
  }
}

static std::string readFile(const std::string &Path) {
  std::ifstream In(Path);
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

bool JITEngine::runCompiler(const std::string &SrcPath,
                            const std::string &OutPath,
                            const std::string &ExtraFlags) {
  std::string Log = OutPath + ".log";
  std::string Cmd = "cc " + OptFlags + " " + ExtraFlags + " '" + SrcPath +
                    "' -o '" + OutPath + "' 2> '" + Log + "'";
  Timer T;
  int RC = system(Cmd.c_str());
  CompilerSeconds += T.seconds();
  if (RC != 0) {
    Diags.error(SourceLoc(), "C compiler failed for generated module:\n" +
                                 readFile(Log) + "\ncommand: " + Cmd);
    return false;
  }
  return true;
}

bool JITEngine::addModule(const std::string &CSource,
                          const std::vector<TerraFunction *> &Fns) {
  LastSource = CSource;
  unsigned Id = ModuleCounter++;
  std::string Base = TempDir + "/mod" + std::to_string(Id);
  std::string SrcPath = Base + ".c";
  std::string SoPath = Base + ".so";
  {
    std::ofstream Out(SrcPath);
    if (!Out) {
      Diags.error(SourceLoc(), "cannot write generated source " + SrcPath);
      return false;
    }
    Out << CSource;
  }
  if (!runCompiler(SrcPath, SoPath, "-shared -fPIC"))
    return false;

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    Diags.error(SourceLoc(),
                std::string("dlopen failed for generated module: ") +
                    dlerror());
    return false;
  }
  Handles.push_back(Handle);

  for (TerraFunction *F : Fns) {
    std::string Name = F->mangledName();
    void *Sym = dlsym(Handle, Name.c_str());
    void *EntrySym = dlsym(Handle, (Name + "_entry").c_str());
    if (!Sym || !EntrySym) {
      Diags.error(SourceLoc(),
                  "dlsym failed for '" + Name + "' in generated module");
      return false;
    }
    F->RawPtr = Sym;
    using EntryFnC = void (*)(void **, void *);
    EntryFnC EP = reinterpret_cast<EntryFnC>(EntrySym);
    F->Entry = [EP](void **Args, void *Ret) { EP(Args, Ret); };
  }
  return true;
}

bool JITEngine::saveObject(const std::string &Path,
                           const std::string &CSource) {
  auto EndsWith = [&](const char *Suffix) {
    size_t N = strlen(Suffix);
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  if (EndsWith(".c")) {
    std::ofstream Out(Path);
    if (!Out) {
      Diags.error(SourceLoc(), "cannot write " + Path);
      return false;
    }
    Out << CSource;
    return true;
  }
  std::string SrcPath = TempDir + "/save" + std::to_string(ModuleCounter++) +
                        ".c";
  {
    std::ofstream Out(SrcPath);
    Out << CSource;
  }
  if (EndsWith(".o"))
    return runCompiler(SrcPath, Path, "-c -fPIC");
  if (EndsWith(".so"))
    return runCompiler(SrcPath, Path, "-shared -fPIC");
  Diags.error(SourceLoc(), "saveobj: unsupported extension on " + Path +
                               " (use .c, .o, or .so)");
  return false;
}
