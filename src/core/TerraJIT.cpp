#include "core/TerraJIT.h"

#include "support/ContentHash.h"
#include "support/EnvParse.h"
#include "support/Subprocess.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <dlfcn.h>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <sys/stat.h>
#include <thread>
#include <unistd.h>

using namespace terracpp;

//===----------------------------------------------------------------------===//
// Filesystem helpers (no shell involved)
//===----------------------------------------------------------------------===//

static bool writeFile(const std::string &Path, const std::string &Contents) {
  std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << Contents;
  return static_cast<bool>(Out);
}

/// mkdir -p: creates every component of \p Path that does not exist yet.
static bool makeDirs(const std::string &Path) {
  std::string Partial;
  size_t I = 0;
  while (I < Path.size()) {
    size_t Next = Path.find('/', I + 1);
    Partial = Path.substr(0, Next == std::string::npos ? Path.size() : Next);
    if (!Partial.empty() && ::mkdir(Partial.c_str(), 0755) != 0 &&
        errno != EEXIST)
      return false;
    if (Next == std::string::npos)
      break;
    I = Next;
  }
  struct stat St;
  return ::stat(Path.c_str(), &St) == 0 && S_ISDIR(St.st_mode);
}

/// Removes a scratch directory and its (flat) contents.
static void removeTree(const std::string &Path) {
  DIR *D = ::opendir(Path.c_str());
  if (D) {
    while (struct dirent *E = ::readdir(D)) {
      if (strcmp(E->d_name, ".") == 0 || strcmp(E->d_name, "..") == 0)
        continue;
      std::string Child = Path + "/" + E->d_name;
      if (::unlink(Child.c_str()) != 0)
        removeTree(Child); // Unexpected subdirectory; recurse.
    }
    ::closedir(D);
  }
  ::rmdir(Path.c_str());
}

static bool copyFile(const std::string &From, const std::string &To) {
  std::ifstream In(From, std::ios::binary);
  if (!In)
    return false;
  std::ofstream Out(To, std::ios::binary | std::ios::trunc);
  if (!Out)
    return false;
  Out << In.rdbuf();
  return static_cast<bool>(Out);
}

static std::string resolveCacheDir() {
  if (const char *Mode = getenv("TERRACPP_CACHE"))
    if (strcmp(Mode, "off") == 0 || strcmp(Mode, "0") == 0)
      return "";
  if (const char *Dir = getenv("TERRACPP_CACHE_DIR"))
    return Dir;
  if (const char *Xdg = getenv("XDG_CACHE_HOME"))
    return std::string(Xdg) + "/terracpp";
  if (const char *Home = getenv("HOME"))
    return std::string(Home) + "/.cache/terracpp";
  return "/tmp/terracpp-cache";
}

static uint64_t resolveCacheMaxBytes() {
  const char *Env = getenv("TERRACPP_CACHE_MAX_MB");
  if (!Env)
    return 0;
  char *End = nullptr;
  double MB = strtod(Env, &End);
  if (!End || End == Env || MB <= 0)
    return 0;
  return static_cast<uint64_t>(MB * 1024.0 * 1024.0);
}

static unsigned resolveCompileJobs() {
  unsigned HW = std::thread::hardware_concurrency();
  unsigned Default = HW ? HW : 1;
  return static_cast<unsigned>(
      envcfg::parseUInt("TERRACPP_COMPILE_JOBS", Default, 1, 256));
}

//===----------------------------------------------------------------------===//
// JITEngine
//===----------------------------------------------------------------------===//

JITEngine::JITEngine(DiagnosticEngine &Diags)
    : Diags(Diags), MModulesLoaded(Reg.counter("jit.modules_loaded")),
      MCompilerLaunches(Reg.counter("jit.compiler_launches")),
      MCacheHits(Reg.counter("jit.cache.hits")),
      MCacheMisses(Reg.counter("jit.cache.misses")),
      MCacheBypassed(Reg.counter("jit.cache.bypassed")),
      MCacheEvicted(Reg.counter("jit.cache.evicted")),
      MQueueDepthHwm(Reg.gauge("jit.queue_depth_hwm")),
      MCcUs(Reg.histogram("jit.cc_us")), MLinkUs(Reg.histogram("jit.link_us")),
      MBatchWallUs(Reg.histogram("jit.batch_wall_us")) {
  // A per-engine scratch directory keeps concurrent engines (even in one
  // process) from clobbering each other's generated files.
  char Template[] = "/tmp/terracpp-XXXXXX";
  const char *Dir = mkdtemp(Template);
  TempDir = Dir ? Dir : "/tmp";
  Jobs = resolveCompileJobs();
  CacheDir = resolveCacheDir();
  CacheMaxBytes = resolveCacheMaxBytes();
  if (!CacheDir.empty() && !makeDirs(CacheDir))
    CacheDir.clear(); // Unusable cache location: run uncached.
}

JITEngine::~JITEngine() {
  for (void *H : Handles)
    dlclose(H);
  Pool.reset(); // Join workers before deleting their scratch space.
  if (TempDir.rfind("/tmp/terracpp-", 0) == 0)
    removeTree(TempDir);
}

void JITEngine::noteDiag(DiagKind Kind, const std::string &Message) {
  // DiagnosticEngine is not itself thread-safe; Mutex serializes every
  // report that originates inside the JIT.
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Kind == DiagKind::Error)
    Diags.error(SourceLoc(), Message);
  else if (Kind == DiagKind::Warning)
    Diags.warning(SourceLoc(), Message);
  else
    Diags.note(SourceLoc(), Message);
}

const std::string &JITEngine::compilerIdentity() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (CompilerId.empty()) {
    SpawnResult R = runCommand({"cc", "--version"}, TempDir);
    std::string FirstLine = R.ok() ? R.Stdout : "unknown-cc";
    size_t NL = FirstLine.find('\n');
    if (NL != std::string::npos)
      FirstLine.resize(NL);
    CompilerId = FirstLine.empty() ? "unknown-cc" : FirstLine;
  }
  return CompilerId;
}

std::string JITEngine::cacheKey(const std::string &CSource,
                                const std::string &ExtraFlags) {
  ContentHash H;
  H.updateField(compilerIdentity())
      .updateField(OptFlags)
      .updateField(ExtraFlags)
      .updateField(CSource);
  return H.hex();
}

bool JITEngine::runCompiler(const std::string &SrcPath,
                            const std::string &OutPath,
                            const std::string &ExtraFlags, std::string &ErrOut,
                            double &Seconds) {
  std::vector<std::string> Argv{"cc"};
  for (std::string &F : splitCommandFlags(OptFlags))
    Argv.push_back(std::move(F));
  for (std::string &F : splitCommandFlags(ExtraFlags))
    Argv.push_back(std::move(F));
  Argv.push_back(SrcPath);
  Argv.push_back("-o");
  Argv.push_back(OutPath);

  trace::TraceSpan Span("cc", "backend");
  Span.arg("out", OutPath);
  MCompilerLaunches.inc();
  Timer T;
  SpawnResult R = runCommand(Argv, TempDir);
  Seconds = T.seconds();
  MCcUs.record(static_cast<uint64_t>(Seconds * 1e6));
  if (R.spawnFailed()) {
    // The compiler could not even start (e.g. no `cc` installed): report
    // the structured description rather than an empty stderr, and point at
    // the compiler-free tiers as the fallback.
    if (R.SpawnErrno == ENOENT)
      CcMissing.store(true, std::memory_order_relaxed);
    ErrOut = R.describe("cc") +
             "; the native backend needs a C compiler "
             "(set TERRACPP_BACKEND=interp to run without one)";
    return false;
  }
  ErrOut = R.Stderr;
  if (!R.ok() && ErrOut.empty())
    ErrOut = R.describe("cc");
  return R.ok();
}

JITEngine::CompileOutcome
JITEngine::compileSource(const std::string &CSource, bool Cacheable,
                         bool SkipCacheLookup) {
  CompileOutcome Out;
  const std::string ExtraFlags = "-shared -fPIC";
  bool UseCache = Cacheable && !CacheDir.empty();
  std::string CachePath;

  if (UseCache) {
    trace::TraceSpan Probe("cache_probe", "backend");
    CachePath = CacheDir + "/" + cacheKey(CSource, ExtraFlags) + ".so";
    if (!SkipCacheLookup && ::access(CachePath.c_str(), R_OK) == 0) {
      // Refresh the entry's mtime so the size bound evicts by actual
      // recency of use, not by age of first compile.
      ::utimensat(AT_FDCWD, CachePath.c_str(), nullptr, 0);
      Out.OK = true;
      Out.FromCache = true;
      Out.SoPath = CachePath;
      MCacheHits.inc();
      Probe.arg("result", "hit");
      return Out;
    }
    Probe.arg("result", SkipCacheLookup ? "skipped" : "miss");
  }

  unsigned Id = ModuleCounter++;
  std::string Base = TempDir + "/mod" + std::to_string(Id);
  std::string SrcPath = Base + ".c";
  std::string SoPath = Base + ".so";
  if (!writeFile(SrcPath, CSource)) {
    Out.Message = "cannot write generated source " + SrcPath;
    return Out;
  }

  std::string Err;
  double Seconds = 0;
  bool OK = runCompiler(SrcPath, SoPath, ExtraFlags, Err, Seconds);
  if (UseCache)
    MCacheMisses.inc();
  else if (!Cacheable)
    MCacheBypassed.inc();
  if (!OK) {
    Out.Message = Err;
    return Out;
  }

  Out.OK = true;
  Out.Seconds = Seconds;
  Out.Message = Err; // Warnings from a successful compile.
  Out.SoPath = SoPath;
  if (UseCache) {
    // Publish atomically: concurrent processes may compile the same key.
    std::string Tmp = CachePath + ".tmp." + std::to_string(::getpid()) + "." +
                      std::to_string(Id);
    if (copyFile(SoPath, Tmp) && ::rename(Tmp.c_str(), CachePath.c_str()) == 0) {
      Out.SoPath = CachePath;
      enforceCacheLimit(CachePath);
    } else {
      ::unlink(Tmp.c_str()); // Cache write failed; load the temp copy.
    }
  }
  return Out;
}

void JITEngine::enforceCacheLimit(const std::string &Protect) {
  if (CacheMaxBytes == 0 || CacheDir.empty())
    return;

  struct Entry {
    std::string Path;
    uint64_t Bytes;
    uint64_t MtimeNs; ///< Nanosecond resolution: entries touched within the
                      ///< same second must still order by recency.
  };
  std::vector<Entry> Entries;
  uint64_t Total = 0;
  DIR *D = ::opendir(CacheDir.c_str());
  if (!D)
    return;
  while (struct dirent *E = ::readdir(D)) {
    std::string Name = E->d_name;
    if (Name.size() < 4 || Name.compare(Name.size() - 3, 3, ".so") != 0)
      continue;
    std::string Path = CacheDir + "/" + Name;
    struct stat St;
    if (::stat(Path.c_str(), &St) != 0 || !S_ISREG(St.st_mode))
      continue;
    Total += static_cast<uint64_t>(St.st_size);
    uint64_t MtimeNs = static_cast<uint64_t>(St.st_mtim.tv_sec) * 1000000000u +
                       static_cast<uint64_t>(St.st_mtim.tv_nsec);
    Entries.push_back(
        {std::move(Path), static_cast<uint64_t>(St.st_size), MtimeNs});
  }
  ::closedir(D);
  if (Total <= CacheMaxBytes)
    return;

  // Oldest mtime first; hits refresh mtime, so this is LRU. The entry we
  // just published is never a victim even if it alone exceeds the bound.
  std::sort(Entries.begin(), Entries.end(),
            [](const Entry &A, const Entry &B) { return A.MtimeNs < B.MtimeNs; });
  unsigned Evicted = 0;
  for (const Entry &Victim : Entries) {
    if (Total <= CacheMaxBytes)
      break;
    if (Victim.Path == Protect)
      continue;
    if (::unlink(Victim.Path.c_str()) == 0) {
      Total -= Victim.Bytes;
      ++Evicted;
    }
  }
  if (Evicted)
    MCacheEvicted.inc(Evicted);
}

bool JITEngine::loadModule(const ModuleJob &Job, CompileOutcome &Outcome) {
  trace::TraceSpan Span("link", "backend");
  Span.arg("so", Outcome.SoPath);
  telemetry::ScopedTimerUs LinkT(MLinkUs);
  if (!Outcome.Message.empty())
    noteDiag(DiagKind::Warning,
             "C compiler diagnostics for generated module:\n" +
                 Outcome.Message);

  void *Handle = dlopen(Outcome.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle && Outcome.FromCache) {
    // Corrupted or truncated cache entry (e.g. a torn write from a killed
    // process): evict it and rebuild from source.
    const char *DLErr = dlerror();
    noteDiag(DiagKind::Warning,
             "evicting unloadable cached module " + Outcome.SoPath + ": " +
                 (DLErr ? DLErr : "unknown dlopen failure"));
    ::unlink(Outcome.SoPath.c_str());
    Outcome = compileSource(Job.CSource, Job.Cacheable,
                            /*SkipCacheLookup=*/true);
    if (!Outcome.OK) {
      noteDiag(DiagKind::Error,
               "C compiler failed for generated module:\n" + Outcome.Message);
      return false;
    }
    Handle = dlopen(Outcome.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  }
  if (!Handle) {
    const char *DLErr = dlerror();
    noteDiag(DiagKind::Error,
             std::string("dlopen failed for generated module: ") +
                 (DLErr ? DLErr : "unknown error"));
    return false;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Handles.push_back(Handle);
  }
  MModulesLoaded.inc();

  for (TerraFunction *F : Job.Fns) {
    std::string Name = F->mangledName();
    void *Sym = dlsym(Handle, Name.c_str());
    void *EntrySym = dlsym(Handle, (Name + "_entry").c_str());
    if (!Sym || !EntrySym) {
      noteDiag(DiagKind::Error,
               "dlsym failed for '" + Name + "' in generated module");
      return false;
    }
    F->RawPtr = Sym;
    using EntryFnC = void (*)(void **, void *);
    EntryFnC EP = reinterpret_cast<EntryFnC>(EntrySym);
    F->Entry = [EP](void **Args, void *Ret) { EP(Args, Ret); };
  }
  return true;
}

bool JITEngine::addModule(const std::string &CSource,
                          const std::vector<TerraFunction *> &Fns,
                          bool Cacheable) {
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    LastSource = CSource;
  }
  ModuleJob Job{CSource, Fns, Cacheable};
  CompileOutcome Outcome =
      compileSource(Job.CSource, Job.Cacheable, /*SkipCacheLookup=*/false);
  if (!Outcome.OK) {
    noteDiag(DiagKind::Error,
             "C compiler failed for generated module:\n" + Outcome.Message);
    return false;
  }
  return loadModule(Job, Outcome);
}

bool JITEngine::compileAndResolve(const std::string &CSource, bool Cacheable,
                                  const std::vector<std::string> &Syms,
                                  std::vector<ResolvedFn> &Out,
                                  std::string &Err) {
  trace::TraceSpan Span("compileAndResolve", "backend");
  CompileOutcome Outcome =
      compileSource(CSource, Cacheable, /*SkipCacheLookup=*/false);
  if (!Outcome.OK) {
    Err = "C compiler failed for generated module:\n" + Outcome.Message;
    return false;
  }

  void *Handle = dlopen(Outcome.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle && Outcome.FromCache) {
    // Same corrupted-cache-entry recovery as loadModule: evict and rebuild.
    ::unlink(Outcome.SoPath.c_str());
    Outcome = compileSource(CSource, Cacheable, /*SkipCacheLookup=*/true);
    if (!Outcome.OK) {
      Err = "C compiler failed for generated module:\n" + Outcome.Message;
      return false;
    }
    Handle = dlopen(Outcome.SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  }
  if (!Handle) {
    const char *DLErr = dlerror();
    Err = std::string("dlopen failed for generated module: ") +
          (DLErr ? DLErr : "unknown error");
    return false;
  }

  {
    std::lock_guard<std::mutex> Lock(Mutex);
    Handles.push_back(Handle);
  }
  MModulesLoaded.inc();

  Out.clear();
  Out.reserve(Syms.size());
  for (const std::string &Name : Syms) {
    ResolvedFn R;
    R.Raw = dlsym(Handle, Name.c_str());
    R.Entry = dlsym(Handle, (Name + "_entry").c_str());
    if (!R.Raw || !R.Entry) {
      Err = "dlsym failed for '" + Name + "' in generated module";
      return false;
    }
    Out.push_back(R);
  }
  return true;
}

bool JITEngine::addModules(std::vector<ModuleJob> Jobs_) {
  if (Jobs_.empty())
    return true;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    LastSource = Jobs_.back().CSource;
  }

  Timer Batch;
  std::vector<CompileOutcome> Outcomes(Jobs_.size());

  if (Jobs_.size() == 1 || Jobs <= 1) {
    for (size_t I = 0; I != Jobs_.size(); ++I)
      Outcomes[I] = compileSource(Jobs_[I].CSource, Jobs_[I].Cacheable,
                                  /*SkipCacheLookup=*/false);
  } else {
    ThreadPool &P = pool();
    Latch Done(Jobs_.size());
    for (size_t I = 0; I != Jobs_.size(); ++I) {
      unsigned Depth = ++InFlight;
      MQueueDepthHwm.max(Depth);
      P.enqueue([this, &Jobs_, &Outcomes, &Done, I] {
        Outcomes[I] = compileSource(Jobs_[I].CSource, Jobs_[I].Cacheable,
                                    /*SkipCacheLookup=*/false);
        --InFlight;
        Done.done();
      });
    }
    Done.wait();
  }

  // dlopen/dlsym and diagnostics run serially on the calling thread, in
  // submission order, so results are deterministic regardless of which
  // worker finished first.
  bool AllOK = true;
  for (size_t I = 0; I != Jobs_.size(); ++I) {
    if (!Outcomes[I].OK) {
      noteDiag(DiagKind::Error, "C compiler failed for generated module:\n" +
                                    Outcomes[I].Message);
      AllOK = false;
      continue;
    }
    if (!loadModule(Jobs_[I], Outcomes[I]))
      AllOK = false;
  }

  MBatchWallUs.record(static_cast<uint64_t>(Batch.seconds() * 1e6));
  return AllOK;
}

ThreadPool &JITEngine::pool() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (!Pool)
    Pool = std::make_unique<ThreadPool>(Jobs);
  return *Pool;
}

JITEngine::Stats JITEngine::stats() const {
  Stats S;
  S.ModulesLoaded = static_cast<unsigned>(MModulesLoaded.value());
  S.CompilerLaunches = static_cast<unsigned>(MCompilerLaunches.value());
  S.CacheHits = static_cast<unsigned>(MCacheHits.value());
  S.CacheMisses = static_cast<unsigned>(MCacheMisses.value());
  S.CacheBypassed = static_cast<unsigned>(MCacheBypassed.value());
  S.CacheEvicted = static_cast<unsigned>(MCacheEvicted.value());
  S.MaxQueueDepth = static_cast<unsigned>(MQueueDepthHwm.value());
  S.CompilerSeconds = static_cast<double>(MCcUs.snapshot().Sum) / 1e6;
  S.BatchWallSeconds = static_cast<double>(MBatchWallUs.snapshot().Sum) / 1e6;
  return S;
}

bool JITEngine::saveObject(const std::string &Path,
                           const std::string &CSource) {
  auto EndsWith = [&](const char *Suffix) {
    size_t N = strlen(Suffix);
    return Path.size() >= N && Path.compare(Path.size() - N, N, Suffix) == 0;
  };
  if (EndsWith(".c")) {
    if (!writeFile(Path, CSource)) {
      noteDiag(DiagKind::Error, "cannot write " + Path);
      return false;
    }
    return true;
  }
  std::string SrcPath =
      TempDir + "/save" + std::to_string(ModuleCounter++) + ".c";
  if (!writeFile(SrcPath, CSource)) {
    noteDiag(DiagKind::Error, "cannot write generated source " + SrcPath);
    return false;
  }
  const char *ExtraFlags = nullptr;
  if (EndsWith(".o"))
    ExtraFlags = "-c -fPIC";
  else if (EndsWith(".so"))
    ExtraFlags = "-shared -fPIC";
  else {
    noteDiag(DiagKind::Error, "saveobj: unsupported extension on " + Path +
                                  " (use .c, .o, or .so)");
    return false;
  }
  std::string Err;
  double Seconds = 0;
  bool OK = runCompiler(SrcPath, Path, ExtraFlags, Err, Seconds);
  if (!OK) {
    noteDiag(DiagKind::Error,
             "C compiler failed for saved object " + Path + ":\n" + Err);
    return false;
  }
  if (!Err.empty())
    noteDiag(DiagKind::Warning,
             "C compiler diagnostics for saved object " + Path + ":\n" + Err);
  return true;
}
