//===- TerraExternDispatch.h - Shared slow-path runtime helpers -*- C++ -*-===//
//
// Scalar load/store helpers and the libc extern registry shared by the two
// non-native execution engines: the tree-walking reference evaluator
// (TerraInterpBackend) and the tier-0 register VM (TerraVM). Keeping one
// implementation is what makes the engines bit-identical on the FFI
// boundary — the differential tests (test_backends, test_fuzz) rely on it.
//
// Value representation convention (both engines): a scalar of prim kind PK
// lives in memory with exactly PK's size and C layout; loadAsInt widens to
// int64 with PK's signedness, loadAsDouble widens to double, and the store
// helpers truncate back. 64-bit integer kinds round-trip exactly through
// storeFromInt (the double path would lose precision).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAEXTERNDISPATCH_H
#define TERRACPP_CORE_TERRAEXTERNDISPATCH_H

#include "core/TerraType.h"

#include <string>
#include <vector>

namespace terracpp {

class TerraFunction;

namespace interpruntime {

/// Reads a scalar of prim kind \p PK from \p P widened to double.
double loadAsDouble(PrimType::PrimKind PK, const void *P);

/// Reads a scalar widened to int64 (sign- or zero-extended by PK; floats
/// truncate toward zero).
int64_t loadAsInt(PrimType::PrimKind PK, const void *P);

/// Stores \p V into \p P truncated to PK (C cast semantics).
void storeFromDouble(PrimType::PrimKind PK, void *P, double V);

/// Integer-exact variant: 64-bit kinds store V directly, narrower kinds go
/// through the double path (identical bits for in-range values).
void storeFromInt(PrimType::PrimKind PK, void *P, int64_t V);

/// Size in bytes of a scalar of kind \p PK.
size_t primSizeOf(PrimType::PrimKind PK);

/// Calls the named libc extern with already-evaluated argument values
/// (Args[i] points at the i-th value; ArgTypes are the static call-site
/// types, needed for the printf mini-formatter). Returns false with \p Err
/// set when the extern is not in the registry.
bool dispatchExtern(const TerraFunction *F, void **Args,
                    const std::vector<Type *> &ArgTypes, void *Ret,
                    std::string &Err);

} // namespace interpruntime
} // namespace terracpp

#endif // TERRACPP_CORE_TERRAEXTERNDISPATCH_H
