//===- TerraPasses.h - Midend passes over typed Terra trees -----*- C++ -*-===//
//
// Small optimization/cleanup pipeline run between typechecking and code
// generation:
//   * constant folding of arithmetic/comparisons on literals;
//   * dead-branch elimination (`if true/false` from staged parameters);
//   * trivially unreachable-statement removal after `return`/`break`;
//   * a verifier that asserts the tree is fully typed and escape-free.
//
// Heavy optimization is deliberately left to the downstream C compiler (the
// LLVM substitute); these passes exist to clean up staging residue (e.g.
// `if [cond] then` where cond was a host constant) and to catch backend
// precondition violations early.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRAPASSES_H
#define TERRACPP_CORE_TERRAPASSES_H

#include "core/TerraAST.h"

namespace terracpp {

/// Runs the standard pipeline over a typechecked function. Idempotent.
void runMidendPasses(TerraContext &Ctx, TerraFunction *F);

/// Verifies backend preconditions (fully typed, no escapes, no method
/// calls). Returns false and reports through \p Diags on violation.
bool verifyFunction(DiagnosticEngine &Diags, TerraFunction *F);

} // namespace terracpp

#endif // TERRACPP_CORE_TERRAPASSES_H
