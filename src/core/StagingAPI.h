//===- StagingAPI.h - C++ builder for staged Terra code ---------*- C++ -*-===//
//
// A programmatic staging interface mirroring what Lua code does with
// quotations and escapes: substrate libraries (the GEMM auto-tuner, the
// Orion stencil DSL, the class system, the DataTable generator) build
// specialized Terra trees directly from C++ and hand them to the normal
// typecheck/compile pipeline. Nodes built here are already "specialized":
// every variable carries a unique TerraSymbol (the builder gensyms them, the
// same mechanism as the paper's symbol()).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_STAGINGAPI_H
#define TERRACPP_CORE_STAGINGAPI_H

#include "core/TerraAST.h"
#include "core/TerraType.h"

#include <initializer_list>
#include <string>
#include <vector>

namespace terracpp {
namespace stage {

/// Builds specialized Terra AST nodes. All returned nodes live in the
/// TerraContext arena.
class Builder {
public:
  explicit Builder(TerraContext &Ctx) : Ctx(Ctx) {}

  TerraContext &context() { return Ctx; }
  TypeContext &types() { return Ctx.types(); }

  //===--------------------------------------------------------------------===
  // Symbols
  //===--------------------------------------------------------------------===
  TerraSymbol *sym(Type *T, const std::string &Name = "v") {
    return Ctx.freshSymbol(Ctx.intern(Name), T);
  }

  //===--------------------------------------------------------------------===
  // Expressions
  //===--------------------------------------------------------------------===
  TerraExpr *var(TerraSymbol *S);
  TerraExpr *litInt(int64_t V, Type *T = nullptr); ///< Default int32.
  TerraExpr *litI64(int64_t V) { return litInt(V, types().int64()); }
  TerraExpr *litFloat(double V, Type *T = nullptr); ///< Default double.
  TerraExpr *litBool(bool V);
  TerraExpr *litString(const std::string &S);
  TerraExpr *nullPtr(Type *PointerTy);

  TerraExpr *binop(BinOpKind Op, TerraExpr *L, TerraExpr *R);
  TerraExpr *add(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Add, L, R);
  }
  TerraExpr *sub(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Sub, L, R);
  }
  TerraExpr *mul(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Mul, L, R);
  }
  TerraExpr *div(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Div, L, R);
  }
  TerraExpr *mod(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Mod, L, R);
  }
  TerraExpr *shl(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Shl, L, R);
  }
  TerraExpr *shr(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Shr, L, R);
  }
  TerraExpr *lt(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Lt, L, R);
  }
  TerraExpr *le(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Le, L, R);
  }
  TerraExpr *gt(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Gt, L, R);
  }
  TerraExpr *ge(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Ge, L, R);
  }
  TerraExpr *eq(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Eq, L, R);
  }
  TerraExpr *ne(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Ne, L, R);
  }
  TerraExpr *logicalAnd(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::And, L, R);
  }
  TerraExpr *logicalOr(TerraExpr *L, TerraExpr *R) {
    return binop(BinOpKind::Or, L, R);
  }

  TerraExpr *neg(TerraExpr *E);
  TerraExpr *logicalNot(TerraExpr *E);
  TerraExpr *deref(TerraExpr *Ptr);
  TerraExpr *addrOf(TerraExpr *LValue);
  TerraExpr *index(TerraExpr *Base, TerraExpr *Idx);
  TerraExpr *index(TerraExpr *Base, int64_t Idx) {
    return index(Base, litI64(Idx));
  }
  TerraExpr *select(TerraExpr *Base, const std::string &Field);
  TerraExpr *cast(Type *To, TerraExpr *E);
  TerraExpr *construct(StructType *ST, std::vector<TerraExpr *> Inits);
  TerraExpr *call(TerraFunction *F, std::vector<TerraExpr *> Args);
  TerraExpr *callIndirect(TerraExpr *Callee, std::vector<TerraExpr *> Args);
  TerraExpr *methodCall(TerraExpr *Obj, const std::string &Method,
                        std::vector<TerraExpr *> Args);
  TerraExpr *funcLit(TerraFunction *F);
  TerraExpr *globalRef(TerraGlobal *G);
  TerraExpr *sizeOf(Type *T);
  /// prefetch(addr, rw, locality) — emits __builtin_prefetch (paper Fig. 5).
  TerraExpr *prefetch(TerraExpr *Addr, int RW = 0, int Locality = 3);
  /// Elementwise min/max (scalars and SIMD vectors).
  TerraExpr *minExpr(TerraExpr *A, TerraExpr *B2);
  TerraExpr *maxExpr(TerraExpr *A, TerraExpr *B2);

  //===--------------------------------------------------------------------===
  // Statements
  //===--------------------------------------------------------------------===
  BlockStmt *block(std::vector<TerraStmt *> Stmts);
  TerraStmt *varDecl(TerraSymbol *S, TerraExpr *Init = nullptr);
  TerraStmt *assign(TerraExpr *LHS, TerraExpr *RHS);
  TerraStmt *assignMany(std::vector<TerraExpr *> LHS,
                        std::vector<TerraExpr *> RHS);
  /// Terra numeric for: exclusive limit.
  TerraStmt *forNum(TerraSymbol *IVar, TerraExpr *Lo, TerraExpr *Hi,
                    BlockStmt *Body, TerraExpr *Step = nullptr);
  TerraStmt *whileLoop(TerraExpr *Cond, BlockStmt *Body);
  TerraStmt *ifStmt(TerraExpr *Cond, BlockStmt *Then,
                    BlockStmt *Else = nullptr);
  TerraStmt *ret(TerraExpr *Val = nullptr);
  TerraStmt *exprStmt(TerraExpr *E);
  TerraStmt *breakStmt();

  //===--------------------------------------------------------------------===
  // Functions
  //===--------------------------------------------------------------------===
  /// Defines a Terra function; RetTy null means "infer from returns".
  TerraFunction *function(const std::string &Name,
                          std::vector<TerraSymbol *> Params, Type *RetTy,
                          BlockStmt *Body);

private:
  TerraContext &Ctx;
};

} // namespace stage
} // namespace terracpp

#endif // TERRACPP_CORE_STAGINGAPI_H
