//===- TerraBytecode.cpp - AST -> register bytecode compiler --------------===//
//
// Compiles a typechecked, midend-run Terra function into the tier-0 format
// described in TerraBytecode.h. The compiler mirrors the tree-walking
// evaluator's semantics exactly (canonical int64/double forms, wrap-on-store
// re-canonicalization, short-circuit and/or, exclusive for-loop limits,
// parallel assignment); any construct it does not model makes compile()
// return null and the caller fall back to the tree-walker.
//
//===----------------------------------------------------------------------===//

#include "core/TerraBytecode.h"

#include "analysis/Interval.h"
#include "core/TerraAST.h"
#include "core/TerraType.h"

#include <cstring>
#include <map>
#include <set>
#include <sstream>

using namespace terracpp;
using namespace terracpp::bytecode;

namespace {

bool isScalarTy(const Type *T) {
  if (!T)
    return false;
  if (T->isPointer() || T->isFunction())
    return true;
  if (const auto *P = dyn_cast<PrimType>(T))
    return P->primKind() != PrimType::Void;
  return false;
}

bool isSignedPK(PrimType::PrimKind PK) {
  return PK >= PrimType::Int8 && PK <= PrimType::Int64;
}

bool isFloatPK(PrimType::PrimKind PK) {
  return PK == PrimType::Float32 || PK == PrimType::Float64;
}

RetKind retKindOf(const Type *T) {
  if (T->isPointer() || T->isFunction())
    return RetKind::Ptr;
  switch (cast<PrimType>(T)->primKind()) {
  case PrimType::Bool:
    return RetKind::Bool;
  case PrimType::Int8:
    return RetKind::I8;
  case PrimType::Int16:
    return RetKind::I16;
  case PrimType::Int32:
    return RetKind::I32;
  case PrimType::Int64:
    return RetKind::I64;
  case PrimType::UInt8:
    return RetKind::U8;
  case PrimType::UInt16:
    return RetKind::U16;
  case PrimType::UInt32:
    return RetKind::U32;
  case PrimType::UInt64:
    return RetKind::U64;
  case PrimType::Float32:
    return RetKind::F32;
  case PrimType::Float64:
    return RetKind::F64;
  case PrimType::Void:
    return RetKind::None;
  }
  return RetKind::None;
}

//===----------------------------------------------------------------------===//
// Pre-pass: find locals, address-taken roots, and unsupported constructs
//===----------------------------------------------------------------------===//

struct Prepass {
  std::vector<std::pair<const TerraSymbol *, Type *>> Decls;
  std::set<const TerraSymbol *> AddrTaken;
  bool Bailed = false;

  void bail() { Bailed = true; }

  void declare(const TerraSymbol *S) {
    if (!S || !S->DeclaredType) {
      bail();
      return;
    }
    if (S->DeclaredType->isVector()) {
      bail();
      return;
    }
    Decls.push_back({S, S->DeclaredType});
  }

  /// &lvalue pins the root variable of the lvalue chain to the frame.
  void markAddrRoot(const TerraExpr *E) {
    while (E) {
      if (const auto *S = dyn_cast<SelectExpr>(E)) {
        E = S->Base;
        continue;
      }
      if (const auto *X = dyn_cast<IndexExpr>(E)) {
        if (X->Base->Ty && X->Base->Ty->isPointer())
          return; // Address lives behind a pointer, not in a local.
        E = X->Base;
        continue;
      }
      if (const auto *C = dyn_cast<CastExpr>(E)) {
        E = C->Operand;
        continue;
      }
      if (const auto *U = dyn_cast<UnOpExpr>(E)) {
        if (U->Op == UnOpKind::Deref)
          return;
        return;
      }
      if (const auto *V = dyn_cast<VarExpr>(E)) {
        AddrTaken.insert(V->Sym);
        return;
      }
      return; // GlobalRef and friends: storage is already memory.
    }
  }

  void walkExpr(const TerraExpr *E) {
    if (!E || Bailed)
      return;
    if (E->Ty && E->Ty->isVector()) {
      bail();
      return;
    }
    switch (E->kind()) {
    case TerraNode::NK_Lit:
    case TerraNode::NK_Var:
    case TerraNode::NK_FuncLit:
    case TerraNode::NK_GlobalRef:
      return;
    case TerraNode::NK_Select:
      walkExpr(cast<SelectExpr>(E)->Base);
      return;
    case TerraNode::NK_Apply: {
      const auto *A = cast<ApplyExpr>(E);
      if (!isa<FuncLitExpr>(A->Callee) || A->NumArgs > MaxCallArgs) {
        bail(); // Indirect call: tree-walker territory.
        return;
      }
      for (unsigned I = 0; I != A->NumArgs; ++I)
        walkExpr(A->Args[I]);
      return;
    }
    case TerraNode::NK_BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      walkExpr(B->LHS);
      walkExpr(B->RHS);
      return;
    }
    case TerraNode::NK_UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      if (U->Op == UnOpKind::AddrOf)
        markAddrRoot(U->Operand);
      walkExpr(U->Operand);
      return;
    }
    case TerraNode::NK_Index: {
      const auto *X = cast<IndexExpr>(E);
      walkExpr(X->Base);
      walkExpr(X->Idx);
      return;
    }
    case TerraNode::NK_Constructor: {
      const auto *C = cast<ConstructorExpr>(E);
      for (unsigned I = 0; I != C->NumInits; ++I)
        walkExpr(C->Inits[I]);
      return;
    }
    case TerraNode::NK_Cast:
      walkExpr(cast<CastExpr>(E)->Operand);
      return;
    case TerraNode::NK_Intrinsic: {
      const auto *N = cast<IntrinsicExpr>(E);
      for (unsigned I = 0; I != N->NumArgs; ++I)
        walkExpr(N->Args[I]);
      return;
    }
    default:
      bail(); // MethodCall, Escape: never in typechecked trees we accept.
      return;
    }
  }

  void walkStmt(const TerraStmt *S) {
    if (!S || Bailed)
      return;
    switch (S->kind()) {
    case TerraNode::NK_Block: {
      const auto *B = cast<BlockStmt>(S);
      for (unsigned I = 0; I != B->NumStmts; ++I)
        walkStmt(B->Stmts[I]);
      return;
    }
    case TerraNode::NK_VarDecl: {
      const auto *D = cast<VarDeclStmt>(S);
      for (unsigned I = 0; I != D->NumNames; ++I)
        declare(D->Names[I].Sym);
      for (unsigned I = 0; I != D->NumInits; ++I)
        walkExpr(D->Inits[I]);
      return;
    }
    case TerraNode::NK_Assign: {
      const auto *A = cast<AssignStmt>(S);
      for (unsigned I = 0; I != A->NumRHS; ++I)
        walkExpr(A->RHS[I]);
      for (unsigned I = 0; I != A->NumLHS; ++I)
        walkExpr(A->LHS[I]);
      return;
    }
    case TerraNode::NK_If: {
      const auto *I2 = cast<IfStmt>(S);
      for (unsigned K = 0; K != I2->NumClauses; ++K) {
        walkExpr(I2->Conds[K]);
        walkStmt(I2->Blocks[K]);
      }
      walkStmt(I2->ElseBlock);
      return;
    }
    case TerraNode::NK_While: {
      const auto *W = cast<WhileStmt>(S);
      walkExpr(W->Cond);
      walkStmt(W->Body);
      return;
    }
    case TerraNode::NK_ForNum: {
      const auto *Fo = cast<ForNumStmt>(S);
      declare(Fo->Var.Sym);
      // The loop protocol runs on canonical int64; a non-integral loop
      // variable would need the tree-walker's double round-trip.
      if (Fo->Var.Sym && Fo->Var.Sym->DeclaredType) {
        const auto *P = dyn_cast<PrimType>(Fo->Var.Sym->DeclaredType);
        if (!P || !P->isIntegralPrim())
          bail();
      }
      walkExpr(Fo->Lo);
      walkExpr(Fo->Hi);
      walkExpr(Fo->Step);
      walkStmt(Fo->Body);
      return;
    }
    case TerraNode::NK_Return:
      walkExpr(cast<ReturnStmt>(S)->Val);
      return;
    case TerraNode::NK_Break:
      return;
    case TerraNode::NK_ExprStmt:
      walkExpr(cast<ExprStmt>(S)->E);
      return;
    default:
      bail();
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Compiler
//===----------------------------------------------------------------------===//

struct LocalInfo {
  bool InFrame = false;
  uint16_t Reg = 0;
  uint32_t FrameOff = 0;
  Type *Ty = nullptr;
};

class BCCompiler {
public:
  BCCompiler(TerraContext &Ctx, const TerraFunction *F) : Ctx(Ctx), Src(F) {}

  std::shared_ptr<const Function> run();

private:
  TerraContext &Ctx;
  const TerraFunction *Src;
  Function Out;
  bool Bailed = false;

  std::map<const TerraSymbol *, LocalInfo> Locals;
  uint16_t PersistentRegs = 0;
  uint16_t RegTop = 0, RegMax = 0;
  uint32_t FrameTop = 0, FrameMax = 0;
  std::vector<std::vector<size_t>> BreakStack;

  int bail() {
    Bailed = true;
    return -1;
  }

  size_t emit(Op O, uint16_t A = 0, uint16_t B = 0, uint16_t C = 0,
              int64_t Imm = 0) {
    Out.Code.push_back({O, A, B, C, Imm});
    return Out.Code.size() - 1;
  }
  size_t here() const { return Out.Code.size(); }
  void patch(size_t At, size_t Target) {
    Out.Code[At].Imm = static_cast<int64_t>(Target);
  }

  int tempReg() {
    if (RegTop >= 4096)
      return bail();
    uint16_t R = RegTop++;
    if (RegTop > RegMax)
      RegMax = RegTop;
    return R;
  }
  uint32_t allocScratch(uint64_t Size, uint32_t Align = 16) {
    FrameTop = (FrameTop + Align - 1) & ~(Align - 1);
    uint32_t Off = FrameTop;
    FrameTop += static_cast<uint32_t>(Size);
    if (FrameTop > FrameMax)
      FrameMax = FrameTop;
    if (FrameMax > (1u << 22))
      bail();
    return Off;
  }

  struct Mark {
    uint16_t Regs;
    uint32_t Frame;
  };
  Mark mark() const { return {RegTop, FrameTop}; }
  void release(Mark M) {
    RegTop = M.Regs;
    FrameTop = M.Frame;
  }

  int64_t trapIdx(const std::string &Msg, SourceLoc Loc) {
    Out.Traps.push_back({Msg, Loc});
    return static_cast<int64_t>(Out.Traps.size() - 1);
  }

  // Interval-analysis facts (TerraFunction::RangeFacts): a proven fact lets
  // the compiler skip the runtime guard in front of a division or shift.
  bool provenNonZeroDivisor(const BinOpExpr *B) const {
    return Src->RangeFacts && Src->RangeFacts->NonZeroDivisor.count(B);
  }
  bool provenInRangeShift(const BinOpExpr *B) const {
    return Src->RangeFacts && Src->RangeFacts->InRangeShift.count(B);
  }

  // Typed memory access.
  bool emitLoad(int Dst, const Type *Ty, int Addr, int64_t Off);
  bool emitStore(const Type *Ty, int Addr, int64_t Off, int Val);
  /// Re-canonicalizes the int64 in Src into Dst per PK (storeFromInt+load).
  void emitWrapTo(PrimType::PrimKind PK, int Dst, int Src);

  int compileScalar(const TerraExpr *E);
  bool compileScalarInto(const TerraExpr *E, int Dst);
  int compileAddr(const TerraExpr *E);
  int compileAggValue(const TerraExpr *E);
  bool compileAggInto(const TerraExpr *E, int DstAddr, const Type *Ty);
  int compileCall(const ApplyExpr *A);
  int compileBinOp(const BinOpExpr *B, const TerraExpr *E);
  int compileCast(const CastExpr *C);
  bool storeToLValue(const TerraExpr *L, int Val);
  bool compileStmt(const TerraStmt *S);
  bool compileBlock(const BlockStmt *B);
};

bool BCCompiler::emitLoad(int Dst, const Type *Ty, int Addr, int64_t Off) {
  if (Dst < 0 || Addr < 0)
    return false;
  Op O;
  if (Ty->isPointer() || Ty->isFunction()) {
    O = Op::LdP;
  } else {
    const auto *P = dyn_cast<PrimType>(Ty);
    if (!P)
      return bail() >= 0;
    switch (P->primKind()) {
    case PrimType::Bool:
    case PrimType::UInt8:
      O = Op::LdU8;
      break;
    case PrimType::Int8:
      O = Op::LdI8;
      break;
    case PrimType::Int16:
      O = Op::LdI16;
      break;
    case PrimType::UInt16:
      O = Op::LdU16;
      break;
    case PrimType::Int32:
      O = Op::LdI32;
      break;
    case PrimType::UInt32:
      O = Op::LdU32;
      break;
    case PrimType::Int64:
      O = Op::LdI64;
      break;
    case PrimType::UInt64:
      O = Op::LdU64;
      break;
    case PrimType::Float32:
      O = Op::LdF32;
      break;
    case PrimType::Float64:
      O = Op::LdF64;
      break;
    default:
      return bail() >= 0;
    }
  }
  emit(O, static_cast<uint16_t>(Dst), static_cast<uint16_t>(Addr), 0, Off);
  return true;
}

bool BCCompiler::emitStore(const Type *Ty, int Addr, int64_t Off, int Val) {
  if (Addr < 0 || Val < 0)
    return false;
  Op O;
  if (Ty->isPointer() || Ty->isFunction()) {
    O = Op::StP;
  } else {
    const auto *P = dyn_cast<PrimType>(Ty);
    if (!P)
      return bail() >= 0;
    switch (P->primKind()) {
    case PrimType::Bool:
    case PrimType::Int8:
    case PrimType::UInt8:
      O = Op::StI8;
      break;
    case PrimType::Int16:
    case PrimType::UInt16:
      O = Op::StI16;
      break;
    case PrimType::Int32:
    case PrimType::UInt32:
      O = Op::StI32;
      break;
    case PrimType::Int64:
    case PrimType::UInt64:
      O = Op::StI64;
      break;
    case PrimType::Float32:
      O = Op::StF32;
      break;
    case PrimType::Float64:
      O = Op::StF64;
      break;
    default:
      return bail() >= 0;
    }
  }
  emit(O, static_cast<uint16_t>(Addr), static_cast<uint16_t>(Val), 0, Off);
  return true;
}

void BCCompiler::emitWrapTo(PrimType::PrimKind PK, int Dst, int Src) {
  if (Dst < 0 || Src < 0)
    return;
  uint16_t D = static_cast<uint16_t>(Dst), S = static_cast<uint16_t>(Src);
  switch (PK) {
  case PrimType::Int8:
    emit(Op::WrapI8, D, S);
    return;
  case PrimType::Int16:
    emit(Op::WrapI16, D, S);
    return;
  case PrimType::Int32:
    emit(Op::WrapI32, D, S);
    return;
  case PrimType::UInt8:
    emit(Op::WrapU8, D, S);
    return;
  case PrimType::UInt16:
    emit(Op::WrapU16, D, S);
    return;
  case PrimType::UInt32:
    emit(Op::WrapU32, D, S);
    return;
  case PrimType::Bool:
    emit(Op::WrapBool, D, S);
    return;
  default: // 64-bit kinds are already canonical.
    if (D != S)
      emit(Op::Mov, D, S);
    return;
  }
}

//===----------------------------------------------------------------------===//
// Addresses (lvalues)
//===----------------------------------------------------------------------===//

int BCCompiler::compileAddr(const TerraExpr *E) {
  if (Bailed)
    return -1;
  switch (E->kind()) {
  case TerraNode::NK_Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Locals.find(V->Sym);
    if (It == Locals.end() || !It->second.InFrame)
      return bail();
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    emit(Op::FrameAddr, static_cast<uint16_t>(Dst), 0, 0, It->second.FrameOff);
    return Dst;
  }
  case TerraNode::NK_GlobalRef: {
    TerraGlobal *G = cast<GlobalRefExpr>(E)->Global;
    if (!G || !G->Storage)
      return bail();
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    emit(Op::ConstP, static_cast<uint16_t>(Dst), 0, 0,
         static_cast<int64_t>(reinterpret_cast<uintptr_t>(G->Storage)));
    return Dst;
  }
  case TerraNode::NK_UnOp: {
    const auto *U = cast<UnOpExpr>(E);
    if (U->Op != UnOpKind::Deref)
      return bail();
    int P = compileScalar(U->Operand);
    if (P < 0)
      return -1;
    emit(Op::TrapIfNull, static_cast<uint16_t>(P), 0, 0,
         trapIdx("null pointer dereference", E->loc()));
    return P;
  }
  case TerraNode::NK_Index: {
    const auto *X = cast<IndexExpr>(E);
    // Tree-walker order: index first, then base address.
    int Idx = compileScalar(X->Idx);
    if (Idx < 0)
      return -1;
    int Base = X->Base->Ty->isPointer() ? compileScalar(X->Base)
                                        : compileAddr(X->Base);
    if (Base < 0)
      return -1;
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    emit(Op::PtrAdd, static_cast<uint16_t>(Dst), static_cast<uint16_t>(Base),
         static_cast<uint16_t>(Idx), static_cast<int64_t>(E->Ty->size()));
    return Dst;
  }
  case TerraNode::NK_Select: {
    const auto *S = cast<SelectExpr>(E);
    int Base = compileAddr(S->Base);
    if (Base < 0)
      return -1;
    const auto *ST = dyn_cast<StructType>(S->Base->Ty);
    if (!ST || S->FieldIndex < 0)
      return bail();
    uint64_t Off = ST->fields()[S->FieldIndex].Offset;
    if (Off == 0)
      return Base;
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    emit(Op::PtrAddImm, static_cast<uint16_t>(Dst),
         static_cast<uint16_t>(Base), 0, static_cast<int64_t>(Off));
    return Dst;
  }
  default:
    return bail();
  }
}

//===----------------------------------------------------------------------===//
// Aggregate values
//===----------------------------------------------------------------------===//

int BCCompiler::compileAggValue(const TerraExpr *E) {
  if (Bailed)
    return -1;
  switch (E->kind()) {
  case TerraNode::NK_Constructor: {
    uint32_t Off = allocScratch(E->Ty->size());
    int A = tempReg();
    if (A < 0 || Bailed)
      return -1;
    emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, Off);
    if (!compileAggInto(E, A, E->Ty))
      return -1;
    return A;
  }
  case TerraNode::NK_Apply:
    return compileCall(cast<ApplyExpr>(E));
  case TerraNode::NK_Cast: {
    const auto *C = cast<CastExpr>(E);
    if (C->Operand->Ty == C->Ty)
      return compileAggValue(C->Operand);
    return bail();
  }
  case TerraNode::NK_UnOp: {
    const auto *U = cast<UnOpExpr>(E);
    if (U->Op != UnOpKind::Deref)
      return bail();
    return compileAddr(E);
  }
  default:
    return compileAddr(E); // Var/Global/Select/Index lvalues.
  }
}

bool BCCompiler::compileAggInto(const TerraExpr *E, int DstAddr,
                                const Type *Ty) {
  if (DstAddr < 0 || Bailed)
    return false;
  if (const auto *C = dyn_cast<ConstructorExpr>(E)) {
    const auto *ST = dyn_cast<StructType>(C->Ty);
    if (!ST)
      return bail() >= 0;
    emit(Op::MemZero, static_cast<uint16_t>(DstAddr), 0, 0,
         static_cast<int64_t>(ST->size()));
    for (unsigned I = 0; I != C->NumInits; ++I) {
      int Idx = static_cast<int>(I);
      if (C->FieldNames && C->FieldNames[I])
        Idx = ST->fieldIndex(*C->FieldNames[I]);
      if (Idx < 0 || static_cast<size_t>(Idx) >= ST->fields().size())
        return bail() >= 0;
      uint64_t FOff = ST->fields()[Idx].Offset;
      const TerraExpr *Init = C->Inits[I];
      Mark M = mark();
      if (isScalarTy(Init->Ty)) {
        int V = compileScalar(Init);
        if (!emitStore(Init->Ty, DstAddr, static_cast<int64_t>(FOff), V))
          return false;
      } else {
        int FA = tempReg();
        if (FA < 0)
          return false;
        emit(Op::PtrAddImm, static_cast<uint16_t>(FA),
             static_cast<uint16_t>(DstAddr), 0, static_cast<int64_t>(FOff));
        if (!compileAggInto(Init, FA, Init->Ty))
          return false;
      }
      release(M);
    }
    return true;
  }
  int Srv = compileAggValue(E);
  if (Srv < 0)
    return false;
  emit(Op::MemCpy, static_cast<uint16_t>(DstAddr),
       static_cast<uint16_t>(Srv), 0, static_cast<int64_t>(Ty->size()));
  return true;
}

//===----------------------------------------------------------------------===//
// Calls
//===----------------------------------------------------------------------===//

int BCCompiler::compileCall(const ApplyExpr *A) {
  const auto *FL = dyn_cast<FuncLitExpr>(A->Callee);
  if (!FL || !FL->Fn || A->NumArgs > MaxCallArgs)
    return bail();
  CallSite CS;
  CS.Callee = FL->Fn;
  CS.Loc = A->loc();
  for (unsigned I = 0; I != A->NumArgs; ++I) {
    const TerraExpr *Arg = A->Args[I];
    if (!Arg->Ty)
      return bail();
    int R = isScalarTy(Arg->Ty) ? compileScalar(Arg) : compileAggValue(Arg);
    if (R < 0)
      return -1;
    CS.Args.push_back({static_cast<uint16_t>(R), !isScalarTy(Arg->Ty)});
    CS.ArgTypes.push_back(Arg->Ty);
  }
  Type *RT = A->Ty;
  CS.RetTy = RT;
  int Dst = -2;
  bool AggRet = false;
  if (RT && !RT->isVoid()) {
    uint64_t Sz = RT->size();
    CS.RetFrameOff = allocScratch(Sz < 8 ? 8 : Sz);
    if (isScalarTy(RT)) {
      Dst = tempReg();
      if (Dst < 0)
        return -1;
      CS.DstReg = static_cast<uint16_t>(Dst);
      CS.RetLoad = retKindOf(RT);
    } else {
      AggRet = true;
    }
  }
  if (Bailed)
    return -1;
  Out.Calls.push_back(std::move(CS));
  emit(Op::Call, 0, 0, 0, static_cast<int64_t>(Out.Calls.size() - 1));
  if (AggRet) {
    int Addr = tempReg();
    if (Addr < 0)
      return -1;
    emit(Op::FrameAddr, static_cast<uint16_t>(Addr), 0, 0,
         Out.Calls.back().RetFrameOff);
    return Addr;
  }
  return Dst;
}

//===----------------------------------------------------------------------===//
// Binary operators
//===----------------------------------------------------------------------===//

int BCCompiler::compileBinOp(const BinOpExpr *B, const TerraExpr *E) {
  Type *OpTy = B->LHS->Ty;
  if (!OpTy || !B->RHS->Ty)
    return bail();

  // Short-circuit boolean and/or.
  if ((B->Op == BinOpKind::And || B->Op == BinOpKind::Or) && OpTy->isBool()) {
    int Dst = tempReg();
    if (Dst < 0 || !compileScalarInto(B->LHS, Dst))
      return -1;
    size_t J = emit(B->Op == BinOpKind::And ? Op::JmpIfFalse : Op::JmpIfTrue,
                    static_cast<uint16_t>(Dst), 0, 0, -1);
    if (!compileScalarInto(B->RHS, Dst))
      return -1;
    patch(J, here());
    return Dst;
  }

  // Pointer arithmetic and comparison.
  if (OpTy->isPointer() || B->RHS->Ty->isPointer()) {
    int L = compileScalar(B->LHS);
    int R = compileScalar(B->RHS);
    if (L < 0 || R < 0)
      return -1;
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    uint16_t D = static_cast<uint16_t>(Dst), UL = static_cast<uint16_t>(L),
             UR = static_cast<uint16_t>(R);
    if (OpTy->isPointer() && B->RHS->Ty->isPointer()) {
      switch (B->Op) {
      case BinOpKind::Sub:
        emit(Op::PtrDiff, D, UL, UR,
             static_cast<int64_t>(cast<PointerType>(OpTy)->pointee()->size()));
        return Dst;
      case BinOpKind::Eq:
        emit(Op::EqI, D, UL, UR);
        return Dst;
      case BinOpKind::Ne:
        emit(Op::NeI, D, UL, UR);
        return Dst;
      default:
        return bail();
      }
    }
    // ptr +/- int (typechecker normalized the int side to int64).
    if (!E->Ty->isPointer())
      return bail();
    int64_t ES =
        static_cast<int64_t>(cast<PointerType>(E->Ty)->pointee()->size());
    uint16_t Ptr = OpTy->isPointer() ? UL : UR;
    uint16_t Off = OpTy->isPointer() ? UR : UL;
    switch (B->Op) {
    case BinOpKind::Add:
      emit(Op::PtrAdd, D, Ptr, Off, ES);
      return Dst;
    case BinOpKind::Sub:
      emit(Op::PtrSub, D, Ptr, Off, ES);
      return Dst;
    default:
      return bail();
    }
  }

  const auto *P = dyn_cast<PrimType>(OpTy);
  if (!P)
    return bail();
  PrimType::PrimKind PK = P->primKind();
  int L = compileScalar(B->LHS);
  int R = compileScalar(B->RHS);
  if (L < 0 || R < 0)
    return -1;
  int Dst = tempReg();
  if (Dst < 0)
    return -1;
  uint16_t D = static_cast<uint16_t>(Dst), UL = static_cast<uint16_t>(L),
           UR = static_cast<uint16_t>(R);

  if (isFloatPK(PK)) {
    bool F32 = PK == PrimType::Float32;
    switch (B->Op) {
    case BinOpKind::Add:
      emit(F32 ? Op::AddF32 : Op::AddF, D, UL, UR);
      return Dst;
    case BinOpKind::Sub:
      emit(F32 ? Op::SubF32 : Op::SubF, D, UL, UR);
      return Dst;
    case BinOpKind::Mul:
      emit(F32 ? Op::MulF32 : Op::MulF, D, UL, UR);
      return Dst;
    case BinOpKind::Div:
      emit(F32 ? Op::DivF32 : Op::DivF, D, UL, UR);
      return Dst;
    case BinOpKind::Lt:
      emit(F32 ? Op::LtF32 : Op::LtF, D, UL, UR);
      return Dst;
    case BinOpKind::Le:
      emit(F32 ? Op::LeF32 : Op::LeF, D, UL, UR);
      return Dst;
    case BinOpKind::Gt:
      emit(F32 ? Op::GtF32 : Op::GtF, D, UL, UR);
      return Dst;
    case BinOpKind::Ge:
      emit(F32 ? Op::GeF32 : Op::GeF, D, UL, UR);
      return Dst;
    case BinOpKind::Eq:
      emit(F32 ? Op::EqF32 : Op::EqF, D, UL, UR);
      return Dst;
    case BinOpKind::Ne:
      emit(F32 ? Op::NeF32 : Op::NeF, D, UL, UR);
      return Dst;
    default:
      return bail();
    }
  }
  if (PK == PrimType::Bool) {
    switch (B->Op) {
    case BinOpKind::Eq:
      emit(Op::EqI, D, UL, UR);
      return Dst;
    case BinOpKind::Ne:
      emit(Op::NeI, D, UL, UR);
      return Dst;
    default:
      return bail();
    }
  }

  bool Signed = isSignedPK(PK);
  switch (B->Op) {
  case BinOpKind::Add:
    emit(Op::AddI, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Sub:
    emit(Op::SubI, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Mul:
    emit(Op::MulI, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Div:
    if (!provenNonZeroDivisor(B))
      emit(Op::TrapIfZero, UR, 0, 0,
           trapIdx("integer division by zero", E->loc()));
    emit(Signed ? Op::DivI : Op::DivU, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Mod:
    if (!provenNonZeroDivisor(B))
      emit(Op::TrapIfZero, UR, 0, 0,
           trapIdx("integer modulo by zero", E->loc()));
    emit(Signed ? Op::ModI : Op::ModU, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Shl:
  case BinOpKind::Shr:
    if (!provenInRangeShift(B))
      emit(Op::TrapIfShiftGE, UR, static_cast<uint16_t>(P->size() * 8), 0,
           trapIdx("shift amount out of range", E->loc()));
    if (B->Op == BinOpKind::Shl)
      emit(Op::ShlI, D, UL, UR);
    else
      emit(Signed ? Op::ShrI : Op::ShrU, D, UL, UR);
    emitWrapTo(PK, Dst, Dst);
    return Dst;
  case BinOpKind::Lt:
    emit(Signed ? Op::LtI : Op::LtU, D, UL, UR);
    return Dst;
  case BinOpKind::Le:
    emit(Signed ? Op::LeI : Op::LeU, D, UL, UR);
    return Dst;
  case BinOpKind::Gt:
    emit(Signed ? Op::GtI : Op::GtU, D, UL, UR);
    return Dst;
  case BinOpKind::Ge:
    emit(Signed ? Op::GeI : Op::GeU, D, UL, UR);
    return Dst;
  case BinOpKind::Eq:
    emit(Op::EqI, D, UL, UR);
    return Dst;
  case BinOpKind::Ne:
    emit(Op::NeI, D, UL, UR);
    return Dst;
  default:
    return bail();
  }
}

//===----------------------------------------------------------------------===//
// Casts
//===----------------------------------------------------------------------===//

int BCCompiler::compileCast(const CastExpr *C) {
  Type *From = C->Operand->Ty;
  Type *To = C->Ty;
  if (!From || !To)
    return bail();
  if (From->isArray() && To->isPointer())
    return compileAddr(C->Operand);
  if (From == To)
    return compileScalar(C->Operand);
  if ((From->isPointer() || From->isFunction()) &&
      (To->isPointer() || To->isFunction()))
    return compileScalar(C->Operand);
  if (From->isPointer() && To->isIntegral()) {
    int V = compileScalar(C->Operand);
    if (V < 0)
      return -1;
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    emitWrapTo(cast<PrimType>(To)->primKind(), Dst, V);
    return Dst;
  }
  if (From->isIntegral() && To->isPointer())
    return compileScalar(C->Operand); // Canonical int64 bits are the pointer.

  const auto *PF = dyn_cast<PrimType>(From);
  const auto *PT = dyn_cast<PrimType>(To);
  if (!PF || !PT)
    return bail();
  PrimType::PrimKind FK = PF->primKind(), TK = PT->primKind();
  int Srv = compileScalar(C->Operand);
  if (Srv < 0)
    return -1;
  uint16_t S = static_cast<uint16_t>(Srv);

  if (PF->isIntegralPrim() || FK == PrimType::Bool) {
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    uint16_t D = static_cast<uint16_t>(Dst);
    if (TK == PrimType::Float64) {
      emit(Op::I2F, D, S);
      return Dst;
    }
    if (TK == PrimType::Float32) {
      emit(Op::I2F32, D, S);
      return Dst;
    }
    emitWrapTo(TK, Dst, Srv);
    return Dst;
  }
  if (isFloatPK(FK)) {
    // Widen a float source to double first (exact), as loadAsDouble does.
    if (FK == PrimType::Float32) {
      int W = tempReg();
      if (W < 0)
        return -1;
      emit(Op::F32ToF, static_cast<uint16_t>(W), S);
      Srv = W;
      S = static_cast<uint16_t>(W);
      if (TK == PrimType::Float64)
        return Srv;
    }
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    uint16_t D = static_cast<uint16_t>(Dst);
    switch (TK) {
    case PrimType::Float32:
      emit(Op::FToF32, D, S);
      return Dst;
    case PrimType::Bool:
      emit(Op::F2Bool, D, S);
      return Dst;
    case PrimType::Int8:
      emit(Op::F2I8, D, S);
      return Dst;
    case PrimType::Int16:
      emit(Op::F2I16, D, S);
      return Dst;
    case PrimType::Int32:
      emit(Op::F2I32, D, S);
      return Dst;
    case PrimType::Int64:
      emit(Op::F2I64, D, S);
      return Dst;
    case PrimType::UInt8:
      emit(Op::F2U8, D, S);
      return Dst;
    case PrimType::UInt16:
      emit(Op::F2U16, D, S);
      return Dst;
    case PrimType::UInt32:
      emit(Op::F2U32, D, S);
      return Dst;
    case PrimType::UInt64:
      emit(Op::F2U64, D, S);
      return Dst;
    default:
      return bail();
    }
  }
  return bail();
}

//===----------------------------------------------------------------------===//
// Scalar expressions
//===----------------------------------------------------------------------===//

int BCCompiler::compileScalar(const TerraExpr *E) {
  if (Bailed || !E || !E->Ty)
    return bail();
  switch (E->kind()) {
  case TerraNode::NK_Lit: {
    const auto *L = cast<LitExpr>(E);
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    uint16_t D = static_cast<uint16_t>(Dst);
    switch (L->LK) {
    case LitExpr::LK_Int: {
      const auto *P = dyn_cast<PrimType>(E->Ty);
      if (!P)
        return bail();
      PrimType::PrimKind PK = P->primKind();
      if (PK == PrimType::Float64) {
        double V = static_cast<double>(L->IntVal);
        int64_t Bits;
        memcpy(&Bits, &V, 8);
        emit(Op::ConstF, D, 0, 0, Bits);
        return Dst;
      }
      if (PK == PrimType::Float32) {
        float V = static_cast<float>(L->IntVal);
        int64_t Bits = 0;
        memcpy(&Bits, &V, 4);
        emit(Op::ConstF32, D, 0, 0, Bits);
        return Dst;
      }
      int64_t V = L->IntVal;
      switch (PK) { // Canonicalize at compile time.
      case PrimType::Bool:
        V = V != 0;
        break;
      case PrimType::Int8:
        V = static_cast<int8_t>(V);
        break;
      case PrimType::Int16:
        V = static_cast<int16_t>(V);
        break;
      case PrimType::Int32:
        V = static_cast<int32_t>(V);
        break;
      case PrimType::UInt8:
        V = static_cast<uint8_t>(V);
        break;
      case PrimType::UInt16:
        V = static_cast<uint16_t>(V);
        break;
      case PrimType::UInt32:
        V = static_cast<uint32_t>(V);
        break;
      default:
        break;
      }
      emit(Op::ConstI, D, 0, 0, V);
      return Dst;
    }
    case LitExpr::LK_Float: {
      const auto *P = dyn_cast<PrimType>(E->Ty);
      if (!P)
        return bail();
      if (P->primKind() == PrimType::Float64) {
        int64_t Bits;
        memcpy(&Bits, &L->FloatVal, 8);
        emit(Op::ConstF, D, 0, 0, Bits);
        return Dst;
      }
      if (P->primKind() == PrimType::Float32) {
        float V = static_cast<float>(L->FloatVal);
        int64_t Bits = 0;
        memcpy(&Bits, &V, 4);
        emit(Op::ConstF32, D, 0, 0, Bits);
        return Dst;
      }
      return bail(); // Float literal under int type: rare; tree handles it.
    }
    case LitExpr::LK_Bool:
      emit(Op::ConstI, D, 0, 0, L->BoolVal ? 1 : 0);
      return Dst;
    case LitExpr::LK_String: {
      const char *Data = Ctx.internStringData(*L->StrVal);
      emit(Op::ConstP, D, 0, 0,
           static_cast<int64_t>(reinterpret_cast<uintptr_t>(Data)));
      return Dst;
    }
    case LitExpr::LK_Pointer:
      emit(Op::ConstP, D, 0, 0,
           static_cast<int64_t>(reinterpret_cast<uintptr_t>(L->PtrVal)));
      return Dst;
    }
    return bail();
  }
  case TerraNode::NK_Var: {
    const auto *V = cast<VarExpr>(E);
    auto It = Locals.find(V->Sym);
    if (It == Locals.end())
      return bail();
    if (!It->second.InFrame)
      return It->second.Reg;
    int A = compileAddr(E);
    int Dst = tempReg();
    if (A < 0 || Dst < 0 || !emitLoad(Dst, E->Ty, A, 0))
      return -1;
    return Dst;
  }
  case TerraNode::NK_GlobalRef:
  case TerraNode::NK_Select: {
    int A = compileAddr(E);
    int Dst = tempReg();
    if (A < 0 || Dst < 0 || !emitLoad(Dst, E->Ty, A, 0))
      return -1;
    return Dst;
  }
  case TerraNode::NK_Index: {
    const auto *X = cast<IndexExpr>(E);
    if (X->Base->IsLValue || X->Base->Ty->isPointer()) {
      int A = compileAddr(E);
      int Dst = tempReg();
      if (A < 0 || Dst < 0 || !emitLoad(Dst, E->Ty, A, 0))
        return -1;
      return Dst;
    }
    // Rvalue aggregate base: evaluate it, then index (tree order).
    int Base = compileAggValue(X->Base);
    if (Base < 0)
      return -1;
    int Idx = compileScalar(X->Idx);
    if (Idx < 0)
      return -1;
    int Addr = tempReg();
    int Dst = tempReg();
    if (Addr < 0 || Dst < 0)
      return -1;
    emit(Op::PtrAdd, static_cast<uint16_t>(Addr),
         static_cast<uint16_t>(Base), static_cast<uint16_t>(Idx),
         static_cast<int64_t>(E->Ty->size()));
    if (!emitLoad(Dst, E->Ty, Addr, 0))
      return -1;
    return Dst;
  }
  case TerraNode::NK_FuncLit: {
    int Dst = tempReg();
    if (Dst < 0)
      return -1;
    // Resolved at execution time: under tiered execution a materialized
    // function value must be a machine address (native code may call the
    // same bits), which cannot be known at bytecode-compile time.
    emit(Op::FnLit, static_cast<uint16_t>(Dst), 0, 0,
         static_cast<int64_t>(
             reinterpret_cast<uintptr_t>(cast<FuncLitExpr>(E)->Fn)));
    return Dst;
  }
  case TerraNode::NK_UnOp: {
    const auto *U = cast<UnOpExpr>(E);
    switch (U->Op) {
    case UnOpKind::AddrOf:
      return compileAddr(U->Operand);
    case UnOpKind::Deref: {
      int P = compileScalar(U->Operand);
      if (P < 0)
        return -1;
      emit(Op::TrapIfNull, static_cast<uint16_t>(P), 0, 0,
           trapIdx("null pointer dereference", E->loc()));
      int Dst = tempReg();
      if (Dst < 0 || !emitLoad(Dst, E->Ty, P, 0))
        return -1;
      return Dst;
    }
    case UnOpKind::Not: {
      int V = compileScalar(U->Operand);
      int Dst = tempReg();
      if (V < 0 || Dst < 0)
        return -1;
      emit(Op::NotB, static_cast<uint16_t>(Dst), static_cast<uint16_t>(V));
      return Dst;
    }
    case UnOpKind::Neg: {
      const auto *P = dyn_cast<PrimType>(E->Ty);
      if (!P)
        return bail();
      int V = compileScalar(U->Operand);
      int Dst = tempReg();
      if (V < 0 || Dst < 0)
        return -1;
      uint16_t D = static_cast<uint16_t>(Dst), S = static_cast<uint16_t>(V);
      if (P->primKind() == PrimType::Float64) {
        emit(Op::NegF, D, S);
      } else if (P->primKind() == PrimType::Float32) {
        emit(Op::NegF32, D, S);
      } else {
        emit(Op::NegI, D, S);
        emitWrapTo(P->primKind(), Dst, Dst);
      }
      return Dst;
    }
    }
    return bail();
  }
  case TerraNode::NK_BinOp:
    return compileBinOp(cast<BinOpExpr>(E), E);
  case TerraNode::NK_Cast:
    return compileCast(cast<CastExpr>(E));
  case TerraNode::NK_Apply: {
    int R = compileCall(cast<ApplyExpr>(E));
    return R == -2 ? bail() : R;
  }
  case TerraNode::NK_Intrinsic: {
    const auto *N = cast<IntrinsicExpr>(E);
    switch (N->IK) {
    case IntrinsicKind::Sizeof: {
      if (!N->TyRef.Resolved)
        return bail();
      int Dst = tempReg();
      if (Dst < 0)
        return -1;
      emit(Op::ConstI, static_cast<uint16_t>(Dst), 0, 0,
           static_cast<int64_t>(N->TyRef.Resolved->size()));
      return Dst;
    }
    case IntrinsicKind::Min:
    case IntrinsicKind::Max: {
      const auto *P = dyn_cast<PrimType>(E->Ty);
      if (!P || N->NumArgs != 2)
        return bail();
      int A = compileScalar(N->Args[0]);
      int B = compileScalar(N->Args[1]);
      int Dst = tempReg();
      if (A < 0 || B < 0 || Dst < 0)
        return -1;
      bool IsMin = N->IK == IntrinsicKind::Min;
      Op O;
      // The tree-walker compares all integer kinds through signed
      // loadAsInt, so unsigned min/max also compare signed here.
      if (P->primKind() == PrimType::Float64)
        O = IsMin ? Op::MinF : Op::MaxF;
      else if (P->primKind() == PrimType::Float32)
        O = IsMin ? Op::MinF32 : Op::MaxF32;
      else
        O = IsMin ? Op::MinI : Op::MaxI;
      emit(O, static_cast<uint16_t>(Dst), static_cast<uint16_t>(A),
           static_cast<uint16_t>(B));
      return Dst;
    }
    case IntrinsicKind::Prefetch:
      // Evaluate the address for effect parity, then ignore (the VM has no
      // meaningful prefetch; the native backend lowers it for real).
      return compileScalar(N->Args[0]);
    }
    return bail();
  }
  default:
    return bail();
  }
}

bool BCCompiler::compileScalarInto(const TerraExpr *E, int Dst) {
  int R = compileScalar(E);
  if (R < 0 || Dst < 0)
    return false;
  if (R != Dst)
    emit(Op::Mov, static_cast<uint16_t>(Dst), static_cast<uint16_t>(R));
  return true;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

bool BCCompiler::storeToLValue(const TerraExpr *L, int Val) {
  if (Val < 0)
    return false;
  if (const auto *V = dyn_cast<VarExpr>(L)) {
    auto It = Locals.find(V->Sym);
    if (It == Locals.end())
      return bail() >= 0;
    if (!It->second.InFrame) {
      if (It->second.Reg != Val)
        emit(Op::Mov, It->second.Reg, static_cast<uint16_t>(Val));
      return true;
    }
  }
  int A = compileAddr(L);
  if (A < 0)
    return false;
  return emitStore(L->Ty, A, 0, Val);
}

bool BCCompiler::compileBlock(const BlockStmt *B) {
  if (!B)
    return !Bailed;
  for (unsigned I = 0; I != B->NumStmts; ++I) {
    Mark M = mark();
    if (!compileStmt(B->Stmts[I]))
      return false;
    release(M);
  }
  return true;
}

bool BCCompiler::compileStmt(const TerraStmt *S) {
  if (Bailed)
    return false;
  switch (S->kind()) {
  case TerraNode::NK_Block:
    return compileBlock(cast<BlockStmt>(S));
  case TerraNode::NK_VarDecl: {
    const auto *D = cast<VarDeclStmt>(S);
    for (unsigned I = 0; I != D->NumNames; ++I) {
      auto It = Locals.find(D->Names[I].Sym);
      if (It == Locals.end())
        return bail() >= 0;
      LocalInfo &L = It->second;
      Mark M = mark();
      if (I < D->NumInits) {
        if (!L.InFrame) {
          if (!compileScalarInto(D->Inits[I], L.Reg))
            return false;
        } else if (isScalarTy(L.Ty)) {
          int V = compileScalar(D->Inits[I]);
          int A = tempReg();
          if (V < 0 || A < 0)
            return false;
          emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, L.FrameOff);
          if (!emitStore(L.Ty, A, 0, V))
            return false;
        } else {
          int A = tempReg();
          if (A < 0)
            return false;
          emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, L.FrameOff);
          if (!compileAggInto(D->Inits[I], A, L.Ty))
            return false;
        }
      } else {
        if (!L.InFrame) {
          emit(Op::ConstI, L.Reg, 0, 0, 0);
        } else {
          int A = tempReg();
          if (A < 0)
            return false;
          emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, L.FrameOff);
          emit(Op::MemZero, static_cast<uint16_t>(A), 0, 0,
               static_cast<int64_t>(L.Ty->size()));
        }
      }
      release(M);
    }
    return true;
  }
  case TerraNode::NK_Assign: {
    const auto *A = cast<AssignStmt>(S);
    if (A->NumLHS != A->NumRHS)
      return bail() >= 0;
    // Parallel semantics: all RHS evaluated into fresh temps before stores.
    struct RV {
      bool Scalar;
      int Reg;
    };
    std::vector<RV> Vals;
    for (unsigned I = 0; I != A->NumRHS; ++I) {
      const TerraExpr *R = A->RHS[I];
      if (isScalarTy(R->Ty)) {
        int T = tempReg();
        if (T < 0 || !compileScalarInto(R, T))
          return false;
        Vals.push_back({true, T});
      } else {
        int V = compileAggValue(R);
        if (V < 0)
          return false;
        uint32_t Off = allocScratch(R->Ty->size());
        int T = tempReg();
        if (T < 0)
          return false;
        emit(Op::FrameAddr, static_cast<uint16_t>(T), 0, 0, Off);
        emit(Op::MemCpy, static_cast<uint16_t>(T), static_cast<uint16_t>(V),
             0, static_cast<int64_t>(R->Ty->size()));
        Vals.push_back({false, T});
      }
    }
    for (unsigned I = 0; I != A->NumLHS; ++I) {
      const TerraExpr *L = A->LHS[I];
      if (Vals[I].Scalar) {
        if (!storeToLValue(L, Vals[I].Reg))
          return false;
      } else {
        int Addr = compileAddr(L);
        if (Addr < 0)
          return false;
        emit(Op::MemCpy, static_cast<uint16_t>(Addr),
             static_cast<uint16_t>(Vals[I].Reg), 0,
             static_cast<int64_t>(L->Ty->size()));
      }
    }
    return true;
  }
  case TerraNode::NK_If: {
    const auto *I2 = cast<IfStmt>(S);
    std::vector<size_t> EndJumps;
    for (unsigned K = 0; K != I2->NumClauses; ++K) {
      int C = compileScalar(I2->Conds[K]);
      if (C < 0)
        return false;
      size_t J = emit(Op::JmpIfFalse, static_cast<uint16_t>(C), 0, 0, -1);
      if (!compileBlock(I2->Blocks[K]))
        return false;
      EndJumps.push_back(emit(Op::Jmp, 0, 0, 0, -1));
      patch(J, here());
    }
    if (I2->ElseBlock && !compileBlock(I2->ElseBlock))
      return false;
    for (size_t J : EndJumps)
      patch(J, here());
    return true;
  }
  case TerraNode::NK_While: {
    const auto *W = cast<WhileStmt>(S);
    size_t Head = here();
    int C = compileScalar(W->Cond);
    if (C < 0)
      return false;
    size_t Exit = emit(Op::JmpIfFalse, static_cast<uint16_t>(C), 0, 0, -1);
    BreakStack.emplace_back();
    if (!compileBlock(W->Body))
      return false;
    emit(Op::JmpBack, 0, 0, 0, static_cast<int64_t>(Head));
    patch(Exit, here());
    for (size_t J : BreakStack.back())
      patch(J, here());
    BreakStack.pop_back();
    return true;
  }
  case TerraNode::NK_ForNum: {
    const auto *Fo = cast<ForNumStmt>(S);
    auto It = Locals.find(Fo->Var.Sym);
    if (It == Locals.end())
      return bail() >= 0;
    LocalInfo &L = It->second;
    const auto *P = dyn_cast<PrimType>(L.Ty);
    if (!P || !P->isIntegralPrim())
      return bail() >= 0;
    PrimType::PrimKind PK = P->primKind();

    int IReg = tempReg(), HiReg = tempReg(), StepReg = tempReg(),
        CondReg = tempReg();
    if (CondReg < 0)
      return false;
    // Lo/Hi/Step are typed as the loop variable; their canonical register
    // forms already hold the int64 values loadAsInt would produce.
    if (!compileScalarInto(Fo->Lo, IReg) || !compileScalarInto(Fo->Hi, HiReg))
      return false;
    if (Fo->Step) {
      if (!compileScalarInto(Fo->Step, StepReg))
        return false;
      emit(Op::TrapIfZero, static_cast<uint16_t>(StepReg), 0, 0,
           trapIdx("'for' step is zero", S->loc()));
    } else {
      emit(Op::ConstI, static_cast<uint16_t>(StepReg), 0, 0, 1);
    }

    size_t Head = here();
    emit(Op::ForCond, static_cast<uint16_t>(CondReg),
         static_cast<uint16_t>(IReg), static_cast<uint16_t>(HiReg), StepReg);
    size_t Exit = emit(Op::JmpIfFalse, static_cast<uint16_t>(CondReg), 0, 0,
                       -1);
    // Publish the canonical counter into the loop variable.
    if (!L.InFrame) {
      emitWrapTo(PK, L.Reg, IReg);
    } else {
      Mark M = mark();
      int A = tempReg();
      if (A < 0)
        return false;
      emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, L.FrameOff);
      if (!emitStore(L.Ty, A, 0, IReg))
        return false;
      release(M);
    }
    BreakStack.emplace_back();
    if (!compileBlock(Fo->Body))
      return false;
    // Reload (body may mutate the variable), then advance.
    if (!L.InFrame) {
      emit(Op::AddI, static_cast<uint16_t>(IReg), L.Reg,
           static_cast<uint16_t>(StepReg));
    } else {
      Mark M = mark();
      int A = tempReg(), V = tempReg();
      if (V < 0)
        return false;
      emit(Op::FrameAddr, static_cast<uint16_t>(A), 0, 0, L.FrameOff);
      if (!emitLoad(V, L.Ty, A, 0))
        return false;
      emit(Op::AddI, static_cast<uint16_t>(IReg), static_cast<uint16_t>(V),
           static_cast<uint16_t>(StepReg));
      release(M);
    }
    emit(Op::JmpBack, 0, 0, 0, static_cast<int64_t>(Head));
    patch(Exit, here());
    for (size_t J : BreakStack.back())
      patch(J, here());
    BreakStack.pop_back();
    return true;
  }
  case TerraNode::NK_Return: {
    const auto *R = cast<ReturnStmt>(S);
    Type *RT = Src->FnTy->result();
    if (R->Val && RT && !RT->isVoid()) {
      int V = isScalarTy(RT) ? compileScalar(R->Val)
                             : compileAggValue(R->Val);
      if (V < 0)
        return false;
      emit(Op::RetVal, static_cast<uint16_t>(V));
    } else {
      emit(Op::Ret);
    }
    return true;
  }
  case TerraNode::NK_Break: {
    if (BreakStack.empty())
      return bail() >= 0;
    BreakStack.back().push_back(emit(Op::Jmp, 0, 0, 0, -1));
    return true;
  }
  case TerraNode::NK_ExprStmt: {
    const TerraExpr *E = cast<ExprStmt>(S)->E;
    if (!E->Ty)
      return bail() >= 0;
    if (E->Ty->isVoid()) {
      if (const auto *A = dyn_cast<ApplyExpr>(E))
        return compileCall(A) != -1 && !Bailed;
      if (const auto *N = dyn_cast<IntrinsicExpr>(E))
        if (N->IK == IntrinsicKind::Prefetch && N->NumArgs >= 1)
          return compileScalar(N->Args[0]) >= 0;
      return bail() >= 0;
    }
    if (isScalarTy(E->Ty))
      return compileScalar(E) >= 0;
    return compileAggValue(E) >= 0;
  }
  default:
    return bail() >= 0;
  }
}

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

std::shared_ptr<const Function> BCCompiler::run() {
  if (!Src->Body || !Src->FnTy || Src->IsExtern || Src->HostClosure)
    return nullptr;
  if (Src->NumParams > MaxCallArgs)
    return nullptr;

  Prepass Pre;
  for (unsigned I = 0; I != Src->NumParams; ++I)
    Pre.declare(Src->Params[I]);
  Pre.walkStmt(Src->Body);
  if (Pre.Bailed)
    return nullptr;

  // Assign storage: scalars that never have their address taken live in
  // registers; everything else lives in the byte-addressed frame.
  for (auto &D : Pre.Decls) {
    if (Locals.count(D.first))
      continue;
    LocalInfo L;
    L.Ty = D.second;
    if (isScalarTy(D.second) && !Pre.AddrTaken.count(D.first)) {
      if (PersistentRegs >= 4000)
        return nullptr;
      L.Reg = PersistentRegs++;
    } else {
      L.InFrame = true;
      L.FrameOff = allocScratch(D.second->size());
    }
    Locals[D.first] = L;
  }
  // Everything allocated so far is persistent; scratch goes above it.
  RegTop = RegMax = PersistentRegs;
  uint32_t PersistentFrame = FrameTop;
  FrameMax = FrameTop;

  Out.Src = Src;
  Out.Name = Src->Name;
  for (unsigned I = 0; I != Src->NumParams; ++I) {
    const LocalInfo &L = Locals[Src->Params[I]];
    Function::Param P;
    P.Ty = Src->Params[I]->DeclaredType;
    P.InFrame = L.InFrame;
    P.Reg = L.Reg;
    P.FrameOff = L.FrameOff;
    Out.Params.push_back(P);
  }
  Type *RT = Src->FnTy->result();
  if (RT && !RT->isVoid()) {
    Out.Ret = isScalarTy(RT) ? retKindOf(RT) : RetKind::Agg;
    Out.RetBytes = static_cast<uint32_t>(RT->size());
  }

  (void)PersistentFrame;
  if (!compileBlock(Src->Body) || Bailed)
    return nullptr;
  if (RT && !RT->isVoid()) {
    emit(Op::Trap, 0, 0, 0,
         trapIdx("control reached end of non-void function '" + Src->Name +
                     "'",
                 Src->Body->loc()));
  } else {
    emit(Op::Ret);
  }

  Out.NumRegs = RegMax;
  Out.FrameBytes = FrameMax;
  return std::make_shared<const Function>(std::move(Out));
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

namespace terracpp {
namespace bytecode {

const char *opName(Op O) {
  static const char *Names[] = {
#define TERRACPP_BYTECODE_NAME(N) #N,
      TERRACPP_BYTECODE_OPS(TERRACPP_BYTECODE_NAME)
#undef TERRACPP_BYTECODE_NAME
  };
  unsigned I = static_cast<unsigned>(O);
  return I < NumOps ? Names[I] : "<bad-op>";
}

std::shared_ptr<const Function> compile(TerraContext &Ctx,
                                        const TerraFunction *F) {
  BCCompiler C(Ctx, F);
  return C.run();
}

std::string disassemble(const Function &F) {
  std::ostringstream OS;
  OS << "function " << F.Name << ": regs=" << F.NumRegs
     << " frame=" << F.FrameBytes << " insns=" << F.Code.size() << "\n";
  for (size_t I = 0; I != F.Code.size(); ++I) {
    const Insn &In = F.Code[I];
    OS << "  " << I << ":\t" << opName(In.Code) << "\tA=" << In.A
       << " B=" << In.B << " C=" << In.C << " Imm=" << In.Imm;
    if (In.Code == Op::Call &&
        static_cast<size_t>(In.Imm) < F.Calls.size()) {
      const CallSite &CS = F.Calls[In.Imm];
      OS << " ; call " << (CS.Callee ? CS.Callee->Name : "?") << "/"
         << CS.Args.size();
    }
    if ((In.Code == Op::Trap || In.Code == Op::TrapIfNull ||
         In.Code == Op::TrapIfZero || In.Code == Op::TrapIfShiftGE) &&
        static_cast<size_t>(In.Imm) < F.Traps.size())
      OS << " ; \"" << F.Traps[In.Imm].first << "\"";
    OS << "\n";
  }
  return OS.str();
}

} // namespace bytecode
} // namespace terracpp
