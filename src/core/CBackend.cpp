#include "core/CBackend.h"

#include "core/TerraType.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <cctype>

// Host-callback trampoline defined in FFI.cpp; generated wrappers call it
// through a baked absolute address.
extern "C" void terracpp_hostcall_trampoline(void *Ctx, uint64_t ClosureId,
                                             void **Args, void *Ret);

using namespace terracpp;

namespace {

std::string hexPtr(const void *P) {
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "0x%" PRIxPTR "ull",
           reinterpret_cast<uintptr_t>(P));
  return Buf;
}

} // namespace

class CBackend::Emitter {
public:
  Emitter(TerraContext &Ctx) : Ctx(Ctx) {}

  TerraContext &Ctx;
  std::ostringstream Prologue;   // Includes + typedefs.
  std::ostringstream Decls;      // Forward declarations.
  std::ostringstream Body;       // Function definitions.
  std::map<const Type *, std::string> StructNames;
  std::map<const Type *, std::string> VectorNames;
  std::set<const Type *> EmittedStructs;
  std::set<std::string> Headers;
  std::set<const TerraFunction *> ModuleFns;
  std::map<const TerraGlobal *, std::string> GlobalNames;
  unsigned NameCounter = 0;
  /// Set when the module embeds a process-local absolute address (compiled
  /// function, global storage, pointer literal, host trampoline). Such
  /// modules are valid only within this process image, so the JIT must not
  /// reuse them from the persistent cache across runs.
  bool BakedRuntimeAddr = false;

  std::string bakedPtr(const void *P) {
    BakedRuntimeAddr = true;
    return hexPtr(P);
  }
  bool Standalone = false;
  bool Failed = false;

  void fail(const std::string &Msg) {
    if (!Failed)
      Ctx.diags().error(SourceLoc(), "C backend: " + Msg);
    Failed = true;
  }

  //===------------------------------------------------------------------===//
  // Types
  //===------------------------------------------------------------------===//

  /// Emits (once) the typedefs a type needs and returns its C spelling.
  /// Arrays cannot be spelled inline in all positions; cdecl() handles
  /// declarators.
  std::string cType(const Type *T) {
    switch (T->kind()) {
    case Type::TK_Prim: {
      switch (cast<PrimType>(T)->primKind()) {
      case PrimType::Void:
        return "void";
      case PrimType::Bool:
        return "uint8_t"; // 1-byte bool with C ABI stability.
      case PrimType::Int8:
        return "int8_t";
      case PrimType::Int16:
        return "int16_t";
      case PrimType::Int32:
        return "int32_t";
      case PrimType::Int64:
        return "int64_t";
      case PrimType::UInt8:
        return "uint8_t";
      case PrimType::UInt16:
        return "uint16_t";
      case PrimType::UInt32:
        return "uint32_t";
      case PrimType::UInt64:
        return "uint64_t";
      case PrimType::Float32:
        return "float";
      case PrimType::Float64:
        return "double";
      }
      return "void";
    }
    case Type::TK_Pointer: {
      const Type *Pointee = cast<PointerType>(T)->pointee();
      if (Pointee->isVector()) {
        // Pointers to vectors use an element-aligned typedef so loads and
        // stores through them become unaligned SIMD moves.
        return vectorName(cast<VectorType>(Pointee), /*Unaligned=*/true) +
               " *";
      }
      if (Pointee->isFunction()) {
        // Function pointers: T (*)(args).
        const auto *FT = cast<FunctionType>(Pointee);
        return fnPtrType(FT);
      }
      if (Pointee->isArray())
        return cType(cast<ArrayType>(Pointee)->element()) + " *"; // Decay.
      if (Pointee->isStruct()) {
        // Use the tag form so self-referential structs (List { next: &List })
        // and pointer-only uses of incomplete structs work without a layout.
        return "struct " +
               structName(cast<StructType>(Pointee), /*NeedComplete=*/false) +
               " *";
      }
      return cType(Pointee) + " *";
    }
    case Type::TK_Vector:
      return vectorName(cast<VectorType>(T), /*Unaligned=*/false);
    case Type::TK_Struct:
      return structName(cast<StructType>(T));
    case Type::TK_Function:
      // Bare function types appear only behind pointers; treat a bare one
      // as a pointer (Terra functions are pointer values).
      return fnPtrType(cast<FunctionType>(T));
    case Type::TK_Array:
      // Only valid via cdecl(); inline arrays decay.
      return cType(cast<ArrayType>(T)->element()) + " *";
    }
    return "void";
  }

  /// Spelling of a C cast to `T *` (function types need the declarator
  /// spelled inside out: RET (**)(args)).
  std::string ptrToCast(const Type *T) {
    if (T->isFunction()) {
      const auto *FT = cast<FunctionType>(T);
      std::string S = cType(FT->result()) + " (**)(";
      for (size_t I = 0; I != FT->params().size(); ++I) {
        if (I)
          S += ", ";
        S += cType(FT->params()[I]);
      }
      if (FT->params().empty())
        S += "void";
      S += ")";
      return S;
    }
    return cType(T) + " *";
  }

  std::string fnPtrType(const FunctionType *FT) {
    std::string S = cType(FT->result()) + " (*)(";
    for (size_t I = 0; I != FT->params().size(); ++I) {
      if (I)
        S += ", ";
      S += cType(FT->params()[I]);
    }
    if (FT->params().empty())
      S += "void";
    S += ")";
    return S;
  }

  /// C declarator for `Ty Name` handling arrays (e.g. `int x[4][2]`).
  std::string cdecl(const Type *T, const std::string &Name) {
    if (const auto *AT = dyn_cast<ArrayType>(T))
      return cdecl(AT->element(),
                   Name + "[" + std::to_string(AT->length()) + "]");
    if (T->isFunction()) {
      const auto *FT = cast<FunctionType>(T);
      std::string S = cType(FT->result()) + " (*" + Name + ")(";
      for (size_t I = 0; I != FT->params().size(); ++I) {
        if (I)
          S += ", ";
        S += cType(FT->params()[I]);
      }
      S += ")";
      return S;
    }
    return cType(T) + " " + Name;
  }

  std::string vectorName(const VectorType *VT, bool Unaligned) {
    auto It = VectorNames.find(VT);
    std::string Base;
    if (It != VectorNames.end()) {
      Base = It->second;
    } else {
      Base = "v" + std::to_string(VT->length()) +
             (VT->element()->isFloat()
                  ? (VT->element()->size() == 4 ? "f" : "d")
                  : "i" + std::to_string(VT->element()->size() * 8)) +
             "_" + std::to_string(NameCounter++);
      VectorNames[VT] = Base;
      Prologue << "typedef " << cType(VT->element()) << " " << Base
               << " __attribute__((vector_size(" << VT->size() << ")));\n";
      Prologue << "typedef " << cType(VT->element()) << " " << Base
               << "_u __attribute__((vector_size(" << VT->size()
               << "), aligned(" << VT->element()->align() << ")));\n";
      // Splat helper for scalar->vector broadcasts.
      Prologue << "static inline " << Base << " " << Base << "_splat("
               << cType(VT->element()) << " x) { return (" << Base << "){";
      for (uint64_t I = 0; I != VT->length(); ++I)
        Prologue << (I ? ", x" : "x");
      Prologue << "}; }\n";
    }
    return Unaligned ? Base + "_u" : Base;
  }

  std::string structName(const StructType *ST, bool NeedComplete = true) {
    auto It = StructNames.find(ST);
    std::string Name;
    if (It != StructNames.end()) {
      Name = It->second;
    } else {
      Name = "S_" + sanitize(ST->name()) + "_" +
             std::to_string(NameCounter++);
      StructNames[ST] = Name;
      // File-scope tag so `struct Name *` in prototypes refers to one type.
      Prologue << "struct " << Name << ";\n";
    }
    if (NeedComplete && !EmittedStructs.count(ST))
      emitStructDef(ST, Name);
    return Name;
  }

  static std::string sanitize(const std::string &S) {
    std::string Out;
    for (char C : S)
      Out += (isalnum(static_cast<unsigned char>(C)) || C == '_') ? C : '_';
    if (Out.empty())
      Out = "anon";
    return Out;
  }

  void emitStructDef(const StructType *ST, const std::string &Name) {
    if (!ST->isComplete()) {
      fail("struct " + ST->name() + " used by value in codegen without a "
           "layout");
      return;
    }
    EmittedStructs.insert(ST);
    // Emit field types first (recursion terminates: layouts are acyclic).
    std::ostringstream Def;
    Def << "typedef struct " << Name << " {\n";
    unsigned Idx = 0;
    for (const StructField &F : ST->fields()) {
      std::string FieldName = "f" + std::to_string(Idx++) + "_" +
                              sanitize(F.Name);
      Def << "  " << cdecl(F.FieldType, FieldName) << ";\n";
    }
    if (ST->fields().empty())
      Def << "  uint8_t _empty;\n";
    Def << "} " << Name << ";\n";
    Prologue << Def.str();
  }

  std::string fieldName(const StructType *ST, unsigned Idx) {
    return "f" + std::to_string(Idx) + "_" + sanitize(ST->fields()[Idx].Name);
  }

  //===------------------------------------------------------------------===//
  // Functions
  //===------------------------------------------------------------------===//

  std::string fnRefInCall(const TerraFunction *F) {
    if (ModuleFns.count(F))
      return F->mangledName();
    if (F->IsExtern) {
      if (!F->ExternHeader.empty())
        Headers.insert(F->ExternHeader);
      return F->ExternName;
    }
    if (Standalone) {
      fail("saveobj: function '" + F->Name +
           "' is referenced but was not included in the saved module");
      return "0";
    }
    if (F->RawPtr) {
      // Previously compiled: bake the absolute address, JIT-style.
      return "((" + fnPtrCast(F) + ")" + bakedPtr(F->RawPtr) + ")";
    }
    fail("function '" + F->Name + "' referenced before compilation");
    return "0";
  }

  std::string fnPtrCast(const TerraFunction *F) {
    return fnPtrType(F->FnTy);
  }

  void emitFunction(const TerraFunction *F) {
    if (F->HostClosure) {
      if (Standalone) {
        fail("saveobj: '" + F->Name +
             "' wraps a lua function and cannot be saved to an object file");
        return;
      }
      emitHostWrapper(F);
      return;
    }
    std::ostringstream OS;
    OS << signature(F) << " {\n";
    Indent = 1;
    emitBlock(OS, F->Body);
    OS << "}\n\n";
    Body << OS.str();
    emitEntryThunk(F);
  }

  std::string signature(const TerraFunction *F) {
    return signatureWithName(F, F->mangledName());
  }

  std::string signatureWithName(const TerraFunction *F,
                                const std::string &Name) {
    std::string S = cType(F->FnTy->result()) + " " + Name + "(";
    for (unsigned I = 0; I != F->NumParams; ++I) {
      if (I)
        S += ", ";
      S += cdecl(F->Params[I]->DeclaredType, varName(F->Params[I]));
    }
    if (F->NumParams == 0)
      S += "void";
    S += ")";
    return S;
  }

  void emitEntryThunk(const TerraFunction *F) {
    std::ostringstream OS;
    OS << "void " << F->mangledName() << "_entry(void **args, void *ret) {\n";
    std::string Call = F->mangledName() + "(";
    for (unsigned I = 0; I != F->NumParams; ++I) {
      if (I)
        Call += ", ";
      Type *PT = F->Params[I]->DeclaredType;
      Call += "*(" + ptrToCast(PT) + ")args[" + std::to_string(I) + "]";
    }
    Call += ")";
    Type *R = F->FnTy->result();
    if (R->isVoid()) {
      OS << "  (void)ret;\n";
      if (F->NumParams == 0)
        OS << "  (void)args;\n";
      OS << "  " << Call << ";\n";
    } else {
      if (F->NumParams == 0)
        OS << "  (void)args;\n";
      OS << "  *(" << ptrToCast(R) << ")ret = " << Call << ";\n";
    }
    OS << "}\n\n";
    Body << OS.str();
  }

  /// Wrapper that marshals a call back into the host interpreter through a
  /// baked trampoline address (terralib.cast of a Lua function).
  void emitHostWrapper(const TerraFunction *F) {
    std::ostringstream OS;
    OS << signature(F) << " {\n";
    OS << "  void *hc_args[" << std::max(1u, F->NumParams) << "];\n";
    for (unsigned I = 0; I != F->NumParams; ++I)
      OS << "  hc_args[" << I << "] = (void *)&" << varName(F->Params[I])
         << ";\n";
    Type *R = F->FnTy->result();
    if (!R->isVoid())
      OS << "  " << cdecl(R, "hc_ret") << ";\n";
    OS << "  ((void (*)(void *, uint64_t, void **, void *))"
       << bakedPtr(reinterpret_cast<void *>(&terracpp_hostcall_trampoline))
       << ")((void *)" << bakedPtr(HostCallCtx) << ", "
       << F->HostClosureId << "ull, hc_args, "
       << (R->isVoid() ? "0" : "(void *)&hc_ret") << ");\n";
    if (!R->isVoid())
      OS << "  return hc_ret;\n";
    OS << "}\n\n";
    Body << OS.str();
    emitEntryThunk(F);
  }

  void *HostCallCtx = nullptr;

  static std::string varName(const TerraSymbol *S) {
    return sanitize(*S->Name) + "_" + std::to_string(S->Id);
  }

  //===------------------------------------------------------------------===//
  // Statements
  //===------------------------------------------------------------------===//

  unsigned Indent = 0;
  unsigned TempCounter = 0;

  std::string ind() const { return std::string(Indent * 2, ' '); }

  void emitBlock(std::ostringstream &OS, const BlockStmt *B) {
    for (unsigned I = 0; I != B->NumStmts; ++I)
      emitStmt(OS, B->Stmts[I]);
  }

  void emitStmt(std::ostringstream &OS, const TerraStmt *S) {
    switch (S->kind()) {
    case TerraNode::NK_Block:
      // Emitted without braces: every Terra variable has a globally unique
      // name, and spliced statement quotes (paper Fig. 5's [loadc]) must
      // leave their symbol()-named variables visible to later splices.
      emitBlock(OS, cast<BlockStmt>(S));
      return;
    case TerraNode::NK_VarDecl: {
      const auto *D = cast<VarDeclStmt>(S);
      for (unsigned I = 0; I != D->NumNames; ++I) {
        const VarDeclName &N = D->Names[I];
        OS << ind() << cdecl(N.Sym->DeclaredType, varName(N.Sym));
        if (I < D->NumInits)
          OS << " = " << expr(D->Inits[I]);
        OS << ";\n";
      }
      return;
    }
    case TerraNode::NK_Assign: {
      const auto *A = cast<AssignStmt>(S);
      if (A->NumLHS == 1) {
        OS << ind() << expr(A->LHS[0]) << " = " << expr(A->RHS[0]) << ";\n";
        return;
      }
      // Parallel assignment: evaluate all RHS into temps first
      // (`A,B = B,A` must swap).
      OS << ind() << "{\n";
      ++Indent;
      std::vector<std::string> Temps;
      for (unsigned I = 0; I != A->NumRHS; ++I) {
        std::string T = "_pa" + std::to_string(TempCounter++);
        Temps.push_back(T);
        OS << ind() << cdecl(A->RHS[I]->Ty, T) << " = " << expr(A->RHS[I])
           << ";\n";
      }
      for (unsigned I = 0; I != A->NumLHS; ++I)
        OS << ind() << expr(A->LHS[I]) << " = " << Temps[I] << ";\n";
      --Indent;
      OS << ind() << "}\n";
      return;
    }
    case TerraNode::NK_If: {
      const auto *I2 = cast<IfStmt>(S);
      for (unsigned K = 0; K != I2->NumClauses; ++K) {
        OS << ind() << (K ? "} else if (" : "if (") << expr(I2->Conds[K])
           << ") {\n";
        ++Indent;
        emitBlock(OS, I2->Blocks[K]);
        --Indent;
      }
      if (I2->ElseBlock) {
        OS << ind() << "} else {\n";
        ++Indent;
        emitBlock(OS, I2->ElseBlock);
        --Indent;
      }
      OS << ind() << "}\n";
      return;
    }
    case TerraNode::NK_While: {
      const auto *W = cast<WhileStmt>(S);
      OS << ind() << "while (" << expr(W->Cond) << ") {\n";
      ++Indent;
      emitBlock(OS, W->Body);
      --Indent;
      OS << ind() << "}\n";
      return;
    }
    case TerraNode::NK_ForNum: {
      const auto *F = cast<ForNumStmt>(S);
      // Terra 'for' has an exclusive limit; bounds evaluate once.
      std::string IVar = varName(F->Var.Sym);
      std::string HiT = "_hi" + std::to_string(TempCounter++);
      std::string StT = "_st" + std::to_string(TempCounter++);
      Type *IT = F->Var.Sym->DeclaredType;
      OS << ind() << "{\n";
      ++Indent;
      OS << ind() << cdecl(IT, HiT) << " = " << expr(F->Hi) << ";\n";
      if (F->Step) {
        OS << ind() << cdecl(IT, StT) << " = " << expr(F->Step) << ";\n";
        OS << ind() << "for (" << cdecl(IT, IVar) << " = " << expr(F->Lo)
           << "; (" << StT << " > 0) ? (" << IVar << " < " << HiT << ") : ("
           << IVar << " > " << HiT << "); " << IVar << " += " << StT
           << ") {\n";
      } else {
        OS << ind() << "for (" << cdecl(IT, IVar) << " = " << expr(F->Lo)
           << "; " << IVar << " < " << HiT << "; ++" << IVar << ") {\n";
      }
      ++Indent;
      emitBlock(OS, F->Body);
      --Indent;
      OS << ind() << "}\n";
      --Indent;
      OS << ind() << "}\n";
      return;
    }
    case TerraNode::NK_Return: {
      const auto *R = cast<ReturnStmt>(S);
      if (R->Val)
        OS << ind() << "return " << expr(R->Val) << ";\n";
      else
        OS << ind() << "return;\n";
      return;
    }
    case TerraNode::NK_Break:
      OS << ind() << "break;\n";
      return;
    case TerraNode::NK_ExprStmt: {
      const TerraExpr *E = cast<ExprStmt>(S)->E;
      OS << ind();
      if (!E->Ty->isVoid())
        OS << "(void)(";
      OS << expr(E);
      if (!E->Ty->isVoid())
        OS << ")";
      OS << ";\n";
      return;
    }
    default:
      fail("unexpected statement in codegen");
      return;
    }
  }

  //===------------------------------------------------------------------===//
  // Expressions
  //===------------------------------------------------------------------===//

  std::string expr(const TerraExpr *E) {
    switch (E->kind()) {
    case TerraNode::NK_Lit: {
      const auto *L = cast<LitExpr>(E);
      switch (L->LK) {
      case LitExpr::LK_Int: {
        std::string S = "((" + cType(L->Ty) + ")" +
                        std::to_string(L->IntVal) + "ll)";
        return S;
      }
      case LitExpr::LK_Float: {
        char Buf[64];
        snprintf(Buf, sizeof(Buf), "%.17g", L->FloatVal);
        std::string S = Buf;
        if (S.find('.') == std::string::npos &&
            S.find('e') == std::string::npos &&
            S.find("inf") == std::string::npos &&
            S.find("nan") == std::string::npos)
          S += ".0";
        if (L->Ty->size() == 4)
          S = "((float)" + S + ")";
        return "(" + S + ")";
      }
      case LitExpr::LK_Bool:
        return L->BoolVal ? "1" : "0";
      case LitExpr::LK_String: {
        std::string S = "((int8_t*)\"";
        for (char C : *L->StrVal) {
          switch (C) {
          case '\n':
            S += "\\n";
            break;
          case '\t':
            S += "\\t";
            break;
          case '\r':
            S += "\\r";
            break;
          case '"':
            S += "\\\"";
            break;
          case '\\':
            S += "\\\\";
            break;
          case '\0':
            S += "\\0";
            break;
          default:
            S += C;
          }
        }
        S += "\")";
        return S;
      }
      case LitExpr::LK_Pointer:
        return "((" + cType(L->Ty) + ")" + bakedPtr(L->PtrVal) + ")";
      }
      return "0";
    }
    case TerraNode::NK_Var:
      return varName(cast<VarExpr>(E)->Sym);
    case TerraNode::NK_GlobalRef: {
      const auto *G = cast<GlobalRefExpr>(E);
      if (Standalone) {
        // Saved modules get their own zero-initialized global storage.
        auto It = GlobalNames.find(G->Global);
        std::string Name;
        if (It != GlobalNames.end()) {
          Name = It->second;
        } else {
          Name = "g_" + sanitize(G->Global->Name) + "_" +
                 std::to_string(NameCounter++);
          GlobalNames[G->Global] = Name;
          Prologue << "static " << cdecl(G->Global->Ty, Name) << ";\n";
        }
        return "(" + Name + ")";
      }
      return "(*(" + cType(G->Global->Ty) + " *)" +
             bakedPtr(G->Global->Storage) + ")";
    }
    case TerraNode::NK_FuncLit: {
      const auto *F = cast<FuncLitExpr>(E);
      return fnRefInCall(F->Fn);
    }
    case TerraNode::NK_Select: {
      const auto *S = cast<SelectExpr>(E);
      const auto *ST = cast<StructType>(S->Base->Ty);
      structName(ST); // Field access needs the full definition.
      return "(" + expr(S->Base) + ")." +
             fieldName(ST, static_cast<unsigned>(S->FieldIndex));
    }
    case TerraNode::NK_Apply: {
      const auto *A = cast<ApplyExpr>(E);
      std::string Callee;
      if (const auto *F = dyn_cast<FuncLitExpr>(A->Callee))
        Callee = fnRefInCall(F->Fn);
      else
        Callee = "(" + expr(A->Callee) + ")";
      std::string S = Callee + "(";
      for (unsigned I = 0; I != A->NumArgs; ++I) {
        if (I)
          S += ", ";
        S += expr(A->Args[I]);
      }
      S += ")";
      return S;
    }
    case TerraNode::NK_BinOp: {
      const auto *B = cast<BinOpExpr>(E);
      const char *Op = nullptr;
      switch (B->Op) {
      case BinOpKind::Add:
        Op = "+";
        break;
      case BinOpKind::Sub:
        Op = "-";
        break;
      case BinOpKind::Mul:
        Op = "*";
        break;
      case BinOpKind::Div:
        Op = "/";
        break;
      case BinOpKind::Mod:
        Op = "%";
        break;
      case BinOpKind::Shl:
        // Compute in uint64_t: left-shifting a negative value is UB in C,
        // and the low result-width bits are identical either way.
        return "((" + cType(B->Ty) + ")((uint64_t)" + expr(B->LHS) +
               " << (uint64_t)" + expr(B->RHS) + "))";
      case BinOpKind::Shr:
        Op = ">>";
        break;
      case BinOpKind::Lt:
        Op = "<";
        break;
      case BinOpKind::Le:
        Op = "<=";
        break;
      case BinOpKind::Gt:
        Op = ">";
        break;
      case BinOpKind::Ge:
        Op = ">=";
        break;
      case BinOpKind::Eq:
        Op = "==";
        break;
      case BinOpKind::Ne:
        Op = "!=";
        break;
      case BinOpKind::And:
        Op = "&&";
        break;
      case BinOpKind::Or:
        Op = "||";
        break;
      }
      std::string S =
          "(" + expr(B->LHS) + " " + Op + " " + expr(B->RHS) + ")";
      // C's integer promotions widen sub-int arithmetic to int; truncate
      // back to the Terra result type (e.g. uint8 + uint8 wraps at 256).
      if (B->Ty && B->Ty->isIntegral() && B->Ty->size() < 4)
        S = "((" + cType(B->Ty) + ")" + S + ")";
      return S;
    }
    case TerraNode::NK_UnOp: {
      const auto *U = cast<UnOpExpr>(E);
      switch (U->Op) {
      case UnOpKind::Neg: {
        std::string S = "(-" + expr(U->Operand) + ")";
        if (U->Ty && U->Ty->isIntegral() && U->Ty->size() < 4)
          S = "((" + cType(U->Ty) + ")" + S + ")";
        return S;
      }
      case UnOpKind::Not:
        return "(!" + expr(U->Operand) + ")";
      case UnOpKind::Deref:
        return "(*" + expr(U->Operand) + ")";
      case UnOpKind::AddrOf: {
        // &vector lvalue must produce the unaligned pointer type used for
        // &vector in cType.
        if (U->Operand->Ty->isVector())
          return "((" + cType(U->Ty) + ")&" + expr(U->Operand) + ")";
        return "(&" + expr(U->Operand) + ")";
      }
      }
      return "0";
    }
    case TerraNode::NK_Index: {
      const auto *X = cast<IndexExpr>(E);
      return "(" + expr(X->Base) + ")[" + expr(X->Idx) + "]";
    }
    case TerraNode::NK_Cast: {
      const auto *C = cast<CastExpr>(E);
      Type *To = C->Ty;
      Type *From = C->Operand->Ty;
      if (To == From)
        return expr(C->Operand);
      if (auto *VT = dyn_cast<VectorType>(To)) {
        if (From->isArithmetic()) {
          // Broadcast through the splat helper (converting the scalar).
          std::string Base = vectorName(VT, false);
          return Base + "_splat((" + cType(VT->element()) + ")" +
                 expr(C->Operand) + ")";
        }
        if (From->isVector())
          return "__builtin_convertvector(" + expr(C->Operand) + ", " +
                 vectorName(VT, false) + ")";
      }
      if (From->isArray() && To->isPointer()) {
        // Array decay: take the address of the first element.
        return "(&(" + expr(C->Operand) + ")[0])";
      }
      return "((" + cType(To) + ")" + expr(C->Operand) + ")";
    }
    case TerraNode::NK_Constructor: {
      const auto *C = cast<ConstructorExpr>(E);
      const auto *ST = cast<StructType>(C->Ty);
      std::string Name = structName(ST);
      std::string S = "((" + Name + "){";
      bool Any = false;
      for (unsigned I = 0; I != C->NumInits; ++I) {
        int Idx = static_cast<int>(I);
        if (C->FieldNames && C->FieldNames[I])
          Idx = ST->fieldIndex(*C->FieldNames[I]);
        if (Any)
          S += ", ";
        S += "." + fieldName(ST, static_cast<unsigned>(Idx)) + " = " +
             expr(C->Inits[I]);
        Any = true;
      }
      if (!Any)
        S += "0";
      S += "})";
      return S;
    }
    case TerraNode::NK_Intrinsic: {
      const auto *N = cast<IntrinsicExpr>(E);
      switch (N->IK) {
      case IntrinsicKind::Sizeof:
        if (const auto *ST = dyn_cast<StructType>(N->TyRef.Resolved))
          return "((uint64_t)sizeof(" + structName(ST) + "))";
        return "((uint64_t)" + std::to_string(N->TyRef.Resolved->size()) +
               "ull)";
      case IntrinsicKind::Min:
      case IntrinsicKind::Max: {
        // GNU statement expression avoids double evaluation. The vector
        // cond-expr extension is C++-only, so vectors use an elementwise
        // loop the C compiler turns into min/max instructions.
        const char *Cmp = N->IK == IntrinsicKind::Min ? "<" : ">";
        std::string T = cType(N->Ty);
        std::string S = "(__extension__({ " + T + " _ma = " +
                        expr(N->Args[0]) + "; " + T + " _mb = " +
                        expr(N->Args[1]) + "; ";
        if (const auto *VT = dyn_cast<VectorType>(N->Ty)) {
          S += "for (int _i = 0; _i != " + std::to_string(VT->length()) +
               "; ++_i) _ma[_i] = _ma[_i] " + Cmp +
               " _mb[_i] ? _ma[_i] : _mb[_i]; _ma; }))";
        } else {
          S += std::string("_ma ") + Cmp + " _mb ? _ma : _mb; }))";
        }
        return S;
      }
      case IntrinsicKind::Prefetch: {
        std::string S = "__builtin_prefetch((const void *)" +
                        expr(N->Args[0]);
        // rw and locality must be integer constant expressions in C; take
        // literal values when present, defaults otherwise.
        auto LitOr = [&](unsigned I, int64_t Default) {
          if (I < N->NumArgs)
            if (const auto *L = dyn_cast<LitExpr>(N->Args[I]))
              if (L->LK == LitExpr::LK_Int)
                return L->IntVal;
          return Default;
        };
        S += ", " + std::to_string(LitOr(1, 0));
        S += ", " + std::to_string(LitOr(2, 3));
        S += ")";
        return S;
      }
      }
      return "0";
    }
    default:
      fail("unexpected expression in codegen");
      return "0";
    }
  }
};

std::string CBackend::emitModule(
    const std::vector<TerraFunction *> &Fns, void *HostCallCtx,
    bool Standalone,
    const std::map<const TerraFunction *, std::string> *Exports) {
  Emitter Em(Ctx);
  Em.HostCallCtx = HostCallCtx;
  Em.Standalone = Standalone;
  for (const TerraFunction *F : Fns)
    Em.ModuleFns.insert(F);

  std::ostringstream Decls;
  for (const TerraFunction *F : Fns) {
    // Forward declarations enable mutual recursion within the module.
    Decls << Em.signature(F) << ";\n";
  }
  Decls << "\n";

  for (const TerraFunction *F : Fns) {
    Em.emitFunction(F);
    if (Em.Failed)
      return "";
    if (Exports) {
      auto It = Exports->find(F);
      if (It != Exports->end())
        Em.Body << "extern " << Em.signatureWithName(F, It->second)
                << " __attribute__((alias(\"" << F->mangledName()
                << "\")));\n\n";
    }
  }

  std::ostringstream Out;
  Out << "/* generated by terracpp CBackend */\n";
  Out << "#include <stdint.h>\n#include <stddef.h>\n";
  for (const std::string &H : Em.Headers)
    Out << "#include <" << H << ">\n";
  Out << "\n" << Em.Prologue.str() << "\n" << Decls.str() << Em.Body.str();
  LastBakedAddrs = Em.BakedRuntimeAddr;
  return Out.str();
}
