//===- TerraBytecode.h - Register bytecode for typed Terra IR ---*- C++ -*-===//
//
// The tier-0 execution format (DESIGN.md §10). A bytecode::Function is a
// compact, contiguous program compiled from a typechecked + midend-run
// Terra function: fixed-width 16-byte instructions over an array of 8-byte
// untyped register slots, plus a byte-addressed frame for aggregates and
// address-taken locals. The VM (TerraVM.h) executes it with a computed-goto
// dispatch loop roughly an order of magnitude faster than the tree-walking
// evaluator, while preserving the tree-walker's semantics bit for bit — the
// canonical register forms below mirror loadAsInt/loadAsDouble exactly.
//
// Canonical register forms:
//   * signed integers  — sign-extended into Slot.I
//   * unsigned + bool  — zero-extended into Slot.U (bool is 0/1)
//   * float            — Slot.F (operations run in float precision)
//   * double           — Slot.D
//   * pointers         — Slot.P (function values hold TerraFunction* under
//                        the plain interp backend, or the promoted machine
//                        address under tiered execution — see Op::FnLit)
//
// The compiler is deliberately partial: functions using vector types or
// indirect calls (callee is a runtime value rather than a function literal)
// return null from compile() and fall back to the tree-walker, so coverage
// gaps cost speed, never correctness.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRABYTECODE_H
#define TERRACPP_CORE_TERRABYTECODE_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace terracpp {

class TerraContext;
class TerraFunction;
class Type;

namespace bytecode {

/// One untyped 8-byte register. The compiler tracks which member is live;
/// all engines on one platform agree on layout (little-endian), so &Slot
/// doubles as the FFI value pointer for scalar call arguments.
union Slot {
  int64_t I;
  uint64_t U;
  double D;
  float F;
  void *P;
};

// X-macro over every opcode; the VM builds its computed-goto table from the
// same list so the two can never get out of sync.
//
// Operand conventions: A = destination register, B/C = source registers,
// Imm = 64-bit immediate (constant bits, byte offset, jump target, call or
// trap index) unless noted otherwise.
#define TERRACPP_BYTECODE_OPS(X)                                              \
  X(ConstI)     /* r[A].I = Imm (pre-canonicalized by the compiler) */        \
  X(ConstF)     /* r[A].D = bitcast<double>(Imm) */                           \
  X(ConstF32)   /* r[A].F = bitcast<float>(low 32 bits of Imm) */             \
  X(ConstP)     /* r[A].P = (void *)Imm */                                    \
  X(FnLit)      /* r[A].P = value of function (TerraFunction *)Imm: the     \
                   TerraFunction* itself, or its promoted machine address   \
                   under tiered execution */                                 \
  X(Mov)        /* r[A] = r[B] */                                             \
  X(FrameAddr)  /* r[A].P = frame + Imm */                                    \
  X(AddI)       /* r[A].I = r[B].I + r[C].I (wrapping) */                     \
  X(SubI)       /* r[A].I = r[B].I - r[C].I (wrapping) */                     \
  X(MulI)       /* r[A].I = r[B].I * r[C].I (wrapping) */                     \
  X(DivI)       /* r[A].I = r[B].I / r[C].I (unguarded: a TrapIfZero on C   \
                   precedes unless the compiler proved r[C] nonzero) */      \
  X(ModI)       /* r[A].I = r[B].I % r[C].I (unguarded, as DivI) */           \
  X(DivU)       /* r[A].U = r[B].U / r[C].U (unguarded, as DivI) */           \
  X(ModU)       /* r[A].U = r[B].U % r[C].U (unguarded, as DivI) */           \
  X(ShlI)       /* r[A].U = r[B].U << (r[C].U & 63) */                        \
  X(ShrI)       /* r[A].I = r[B].I >> (r[C].U & 63) (arithmetic) */           \
  X(ShrU)       /* r[A].U = r[B].U >> (r[C].U & 63) (logical) */              \
  X(NegI)       /* r[A].I = -r[B].I (wrapping) */                             \
  X(AddF)       /* r[A].D = r[B].D + r[C].D */                                \
  X(SubF)       /* r[A].D = r[B].D - r[C].D */                                \
  X(MulF)       /* r[A].D = r[B].D * r[C].D */                                \
  X(DivF)       /* r[A].D = r[B].D / r[C].D */                                \
  X(NegF)       /* r[A].D = -r[B].D */                                        \
  X(AddF32)     /* r[A].F = r[B].F + r[C].F */                                \
  X(SubF32)     /* r[A].F = r[B].F - r[C].F */                                \
  X(MulF32)     /* r[A].F = r[B].F * r[C].F */                                \
  X(DivF32)     /* r[A].F = r[B].F / r[C].F */                                \
  X(NegF32)     /* r[A].F = -r[B].F */                                        \
  X(NotB)       /* r[A].U = r[B].U ? 0 : 1 */                                 \
  X(LtI)        /* r[A].U = r[B].I < r[C].I (signed) */                       \
  X(LeI)        /* r[A].U = r[B].I <= r[C].I */                               \
  X(GtI)        /* r[A].U = r[B].I > r[C].I */                                \
  X(GeI)        /* r[A].U = r[B].I >= r[C].I */                               \
  X(LtU)        /* r[A].U = r[B].U < r[C].U (unsigned) */                     \
  X(LeU)        /* r[A].U = r[B].U <= r[C].U */                               \
  X(GtU)        /* r[A].U = r[B].U > r[C].U */                                \
  X(GeU)        /* r[A].U = r[B].U >= r[C].U */                               \
  X(EqI)        /* r[A].U = r[B].U == r[C].U (sign-agnostic; pointers too) */ \
  X(NeI)        /* r[A].U = r[B].U != r[C].U */                               \
  X(LtF)        /* r[A].U = r[B].D < r[C].D */                                \
  X(LeF)        /* r[A].U = r[B].D <= r[C].D */                               \
  X(GtF)        /* r[A].U = r[B].D > r[C].D */                                \
  X(GeF)        /* r[A].U = r[B].D >= r[C].D */                               \
  X(EqF)        /* r[A].U = r[B].D == r[C].D */                               \
  X(NeF)        /* r[A].U = r[B].D != r[C].D */                               \
  X(LtF32)      /* r[A].U = r[B].F < r[C].F */                                \
  X(LeF32)      /* r[A].U = r[B].F <= r[C].F */                               \
  X(GtF32)      /* r[A].U = r[B].F > r[C].F */                                \
  X(GeF32)      /* r[A].U = r[B].F >= r[C].F */                               \
  X(EqF32)      /* r[A].U = r[B].F == r[C].F */                               \
  X(NeF32)      /* r[A].U = r[B].F != r[C].F */                               \
  X(MinI)       /* r[A].I = min signed */                                     \
  X(MaxI)       /* r[A].I = max signed */                                     \
  X(MinU)       /* r[A].U = min unsigned */                                   \
  X(MaxU)       /* r[A].U = max unsigned */                                   \
  X(MinF)       /* r[A].D = r[B].D < r[C].D ? B : C */                        \
  X(MaxF)       /* r[A].D = r[B].D > r[C].D ? B : C */                        \
  X(MinF32)     /* r[A].F = r[B].F < r[C].F ? B : C */                        \
  X(MaxF32)     /* r[A].F = r[B].F > r[C].F ? B : C */                        \
  X(WrapI8)     /* r[A].I = (int8)r[B].I (truncate, sign-extend) */           \
  X(WrapI16)    /* r[A].I = (int16)r[B].I */                                  \
  X(WrapI32)    /* r[A].I = (int32)r[B].I */                                  \
  X(WrapU8)     /* r[A].U = (uint8)r[B].U (truncate, zero-extend) */          \
  X(WrapU16)    /* r[A].U = (uint16)r[B].U */                                 \
  X(WrapU32)    /* r[A].U = (uint32)r[B].U */                                 \
  X(WrapBool)   /* r[A].U = r[B].I != 0 */                                    \
  X(I2F)        /* r[A].D = (double)r[B].I */                                 \
  X(I2F32)      /* r[A].F = (float)r[B].I */                                  \
  X(F2I8)       /* r[A].I = (int8)r[B].D */                                   \
  X(F2I16)      /* r[A].I = (int16)r[B].D */                                  \
  X(F2I32)      /* r[A].I = (int32)r[B].D */                                  \
  X(F2I64)      /* r[A].I = (int64)r[B].D */                                  \
  X(F2U8)       /* r[A].U = (uint8)r[B].D */                                  \
  X(F2U16)      /* r[A].U = (uint16)r[B].D */                                 \
  X(F2U32)      /* r[A].U = (uint32)r[B].D */                                 \
  X(F2U64)      /* r[A].U = (uint64)r[B].D */                                 \
  X(F2Bool)     /* r[A].U = r[B].D != 0 */                                    \
  X(F32ToF)     /* r[A].D = (double)r[B].F (exact) */                         \
  X(FToF32)     /* r[A].F = (float)r[B].D */                                  \
  X(LdI8)       /* r[A].I = *(int8 *)(r[B].P + Imm), sign-extended */         \
  X(LdI16)      /* ... */                                                     \
  X(LdI32)                                                                    \
  X(LdI64)                                                                    \
  X(LdU8)       /* r[A].U = *(uint8 *)(r[B].P + Imm), zero-extended */        \
  X(LdU16)                                                                    \
  X(LdU32)                                                                    \
  X(LdU64)                                                                    \
  X(LdF32)      /* r[A].F = *(float *)(r[B].P + Imm) */                       \
  X(LdF64)      /* r[A].D = *(double *)(r[B].P + Imm) */                      \
  X(LdP)        /* r[A].P = *(void **)(r[B].P + Imm) */                       \
  X(StI8)       /* *(int8 *)(r[A].P + Imm) = (int8)r[B].I */                  \
  X(StI16)                                                                    \
  X(StI32)                                                                    \
  X(StI64)                                                                    \
  X(StF32)      /* *(float *)(r[A].P + Imm) = r[B].F */                       \
  X(StF64)      /* *(double *)(r[A].P + Imm) = r[B].D */                      \
  X(StP)        /* *(void **)(r[A].P + Imm) = r[B].P */                       \
  X(MemCpy)     /* memcpy(r[A].P, r[B].P, Imm) */                             \
  X(MemZero)    /* memset(r[A].P, 0, Imm) */                                  \
  X(PtrAdd)     /* r[A].P = r[B].P + r[C].I * Imm (Imm = element size) */     \
  X(PtrSub)     /* r[A].P = r[B].P - r[C].I * Imm */                          \
  X(PtrDiff)    /* r[A].I = (r[B].P - r[C].P) / Imm */                        \
  X(PtrAddImm)  /* r[A].P = r[B].P + Imm (field offsets) */                    \
  X(TrapIfNull) /* if (!r[A].P) trap[Imm] */                                  \
  X(TrapIfZero) /* if (!r[A].I) trap[Imm] (div/mod guard, for-loop step) */   \
  X(TrapIfShiftGE) /* if (r[A].U >= B) trap[Imm] (B = type bit width) */      \
  X(ForCond)    /* r[A].U = r[Imm].I > 0 ? r[B].I < r[C].I                    \
                                         : r[B].I > r[C].I */                 \
  X(Jmp)        /* ip = Imm */                                                \
  X(JmpIfFalse) /* if (!r[A].U) ip = Imm */                                   \
  X(JmpIfTrue)  /* if (r[A].U) ip = Imm */                                    \
  X(JmpBack)    /* ++backedges; ip = Imm (loop latch) */                      \
  X(Call)       /* invoke Calls[Imm] */                                       \
  X(Ret)        /* return (void, or result already staged) */                 \
  X(RetVal)     /* write r[A] (or *r[A].P for aggregates) to Ret; return */   \
  X(Trap)       /* abort execution with Traps[Imm] */

enum class Op : uint16_t {
#define TERRACPP_BYTECODE_ENUM(Name) Name,
  TERRACPP_BYTECODE_OPS(TERRACPP_BYTECODE_ENUM)
#undef TERRACPP_BYTECODE_ENUM
};

/// Number of opcodes (size of the dispatch table).
constexpr unsigned NumOps = 0
#define TERRACPP_BYTECODE_COUNT(Name) +1
    TERRACPP_BYTECODE_OPS(TERRACPP_BYTECODE_COUNT)
#undef TERRACPP_BYTECODE_COUNT
    ;

const char *opName(Op O);

/// Upper bound on call-site arguments the VM stages on its stack; the
/// compiler bails out (tree-walker fallback) beyond this.
constexpr unsigned MaxCallArgs = 32;

/// Fixed-width instruction. 16 bytes; the whole program is one contiguous
/// std::vector<Insn> with no per-op heap allocation.
struct Insn {
  Op Code;
  uint16_t A = 0;
  uint16_t B = 0;
  uint16_t C = 0;
  int64_t Imm = 0;
};

static_assert(sizeof(Insn) == 16, "instructions must stay compact");

/// How the VM writes the function result through the FFI Ret pointer.
enum class RetKind : uint8_t {
  None,  ///< void
  I8, I16, I32, I64, U8, U16, U32, U64, Bool, F32, F64, Ptr,
  Agg,   ///< RetVal register holds the address; memcpy RetBytes.
};

/// One out-of-line call site (Terra-to-Terra, extern, or host closure).
/// Kept out of the instruction stream so Insn stays fixed-width.
struct CallSite {
  TerraFunction *Callee = nullptr;
  /// Per-argument: source register and whether it holds the value address
  /// (aggregates) rather than the value itself (scalars).
  struct Arg {
    uint16_t Reg;
    bool ByAddr;
  };
  std::vector<Arg> Args;
  /// Static call-site argument types (extern printf dispatch needs them).
  std::vector<Type *> ArgTypes;
  Type *RetTy = nullptr;       ///< Null or void type for no result.
  RetKind RetLoad = RetKind::None; ///< How to move Ret bytes into DstReg.
  uint16_t DstReg = 0xFFFF;    ///< Scalar result register; 0xFFFF = none.
  uint32_t RetFrameOff = 0;    ///< Frame scratch the callee writes into.
  SourceLoc Loc;
};

/// A compiled function. Immutable after compile(); shared between the
/// owning TerraFunction and any in-flight executions.
struct Function {
  const TerraFunction *Src = nullptr;
  std::string Name;
  std::vector<Insn> Code;
  uint32_t NumRegs = 0;
  uint32_t FrameBytes = 0;

  struct Param {
    uint16_t Reg = 0;      ///< Scalar destination register.
    uint32_t FrameOff = 0; ///< Aggregate destination (when InFrame).
    Type *Ty = nullptr;
    bool InFrame = false;
  };
  std::vector<Param> Params;

  RetKind Ret = RetKind::None;
  uint32_t RetBytes = 0; ///< For RetKind::Agg.

  std::vector<CallSite> Calls;
  std::vector<std::pair<std::string, SourceLoc>> Traps;
};

/// Compiles a typechecked, midend-run function to bytecode. Returns null
/// when the function uses a construct the bytecode engine does not model
/// (vectors, indirect calls, >32 call arguments); the caller falls back to
/// the tree-walker. Never reports diagnostics.
std::shared_ptr<const Function> compile(TerraContext &Ctx,
                                        const TerraFunction *F);

/// Human-readable disassembly (tests, --dump-bytecode debugging).
std::string disassemble(const Function &F);

} // namespace bytecode
} // namespace terracpp

#endif // TERRACPP_CORE_TERRABYTECODE_H
