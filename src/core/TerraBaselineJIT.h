//===- TerraBaselineJIT.h - Tier-0.5 x86-64 template JIT --------*- C++ -*-===//
//
// One-pass native code emission straight from the register bytecode
// (DESIGN.md §11). This is the middle rung of the tier lattice
//
//   tree-walker -> bytecode VM -> baseline JIT -> cc-compiled native
//
// Emission is microseconds (no external compiler), so the baseline replaces
// the VM on a function's very first dispatch; the optimizing C backend
// still lands in the background exactly as before. Semantics are the VM's
// bit for bit: the same canonical Slot forms, the same out-of-line call/
// trap side tables (calls and traps run through vm::execCallSite /
// vm::execTrap so source locations and FFI behavior are tier-invariant),
// the same "terra interpreter: ..." diagnostics. Bytecode the emitter
// cannot handle bails permanently to the VM, mirroring how the VM bails to
// the tree-walker.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_TERRABASELINEJIT_H
#define TERRACPP_CORE_TERRABASELINEJIT_H

#include "support/CodeBuffer.h"

#include <cstdint>
#include <vector>

namespace terracpp {

class TerraFunction;

namespace telemetry {
class Registry;
class Histogram;
class Gauge;
class Counter;
} // namespace telemetry

namespace vm {
struct ExecEnv;
} // namespace vm

/// Emits and caches baseline machine code per TerraFunction. Thread-safe:
/// entries are CAS-published on TerraFunction::BaselineEntry, and racing
/// emitters at worst waste a few hundred bytes of code buffer.
class BaselineJIT {
public:
  /// Emitted-function signature: the two entry-thunk arguments plus the
  /// execution environment for out-of-line helpers. Returns the number of
  /// loop back edges executed (profile signal for cc promotion). Failures
  /// are signaled through Env->Failed / diagnostics, never the return.
  using Fn = uint64_t (*)(void **Args, void *Ret, vm::ExecEnv *Env);

  explicit BaselineJIT(telemetry::Registry &Metrics);

  /// Returns the baseline entry for \p F, emitting it on first use. Null
  /// when \p F has no bytecode or uses a construct the emitter bails on;
  /// the failure is remembered, so callers can probe on every dispatch.
  Fn entryFor(TerraFunction *F);

  /// Depth units one activation of \p F's baseline code costs against
  /// vm::MaxCallDepth. Unlike VM frames (heap-allocated), baseline frames
  /// live on the native stack, so large frames are charged more — at 16 KiB
  /// per unit a full budget stays under ~6.5 MiB of native stack, inside a
  /// default 8 MiB thread stack. Every call of a BaselineJIT::Fn must sit
  /// under a vm::CallDepthScope charged with this value.
  static unsigned depthUnits(const TerraFunction *F);

  /// True iff the host architecture is supported (x86-64 only).
  static bool supported();

  /// TERRACPP_JIT_BASELINE knob (validated; default on).
  static bool enabledFromEnv();

  /// Emits baseline code for \p F's bytecode into \p Out without publishing
  /// executable pages. Returns false when \p F has no bytecode or the
  /// emitter bails. Tests use this to assert properties of the exact
  /// instruction bytes (e.g. that analysis-elided guards are truly absent).
  static bool emitBytesForTest(const TerraFunction *F,
                               std::vector<uint8_t> &Out);

private:
  CodeBuffer Code;
  telemetry::Histogram &MEmitUs;  ///< jit.baseline_emit_us
  telemetry::Gauge &MCodeBytes;   ///< jit.baseline_code_bytes
  telemetry::Counter &MFunctions; ///< jit.baseline_functions
  telemetry::Counter &MBailouts;  ///< jit.baseline_bailouts
};

} // namespace terracpp

#endif // TERRACPP_CORE_TERRABASELINEJIT_H
