//===- Lexer.h - Tokenizer for the combined Lua/Terra language --*- C++ -*-===//
//
// One lexer serves both languages; the parser decides which grammar a token
// stream region belongs to. Terra-only reserved words (`terra`, `quote`,
// `struct`, `var`) are reserved globally, as in the real implementation.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_CORE_LEXER_H
#define TERRACPP_CORE_LEXER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace terracpp {

enum class Tok : uint8_t {
  Eof,
  Error,
  Ident,
  Number,
  String,
  // Keywords.
  KwAnd,
  KwBreak,
  KwDo,
  KwElse,
  KwElseif,
  KwEnd,
  KwFalse,
  KwFor,
  KwFunction,
  KwIf,
  KwIn,
  KwLocal,
  KwNil,
  KwNot,
  KwOr,
  KwRepeat,
  KwReturn,
  KwThen,
  KwTrue,
  KwUntil,
  KwWhile,
  KwTerra,
  KwQuote,
  KwStruct,
  KwVar,
  // Punctuation / operators.
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  Caret,
  Hash,
  EqEq,
  NotEq, // ~=
  LessEq,
  GreaterEq,
  Less,
  Greater,
  Shl, // <<
  Shr, // >>
  Assign,
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Colon,
  Comma,
  Dot,
  DotDot,
  Ellipsis,
  Amp,      // &
  At,       // @
  Backtick, // `
  Arrow,    // ->
};

/// Suffix attached to a numeric literal, Terra-style.
enum class NumSuffix : uint8_t { None, F, LL, ULL };

struct Token {
  Tok Kind = Tok::Eof;
  /// True when at least one newline separates this token from the previous
  /// one. Used to disambiguate `a[i]` indexing from a `[e]` escape starting
  /// a new statement (and Lua's ambiguous-call case).
  bool AfterNewline = false;
  SourceLoc Loc;
  std::string Text;   ///< Identifier name or decoded string contents.
  double Num = 0;     ///< Numeric value.
  bool IsInt = false; ///< Literal had no '.', exponent, or hex float.
  NumSuffix Suffix = NumSuffix::None;
};

const char *tokenKindName(Tok Kind);

class Lexer {
public:
  Lexer(const std::string &Src, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

private:
  SourceLoc here() const;
  char cur() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char peek(size_t N = 1) const {
    return Pos + N < Src.size() ? Src[Pos + N] : '\0';
  }
  void advance();
  void skipTrivia();
  bool skipLongBracket(); ///< --[[ ... ]] style comments/strings.
  Token lexOne();
  Token lexNumber();
  Token lexString(char Quote);
  Token lexIdent();
  Token makeSimple(Tok Kind, unsigned Len);

  const std::string &Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
  uint32_t BufferId;
  bool SawNewline = false;
  DiagnosticEngine &Diags;
};

} // namespace terracpp

#endif // TERRACPP_CORE_LEXER_H
