#include "autotuner/Gemm.h"

#include "core/StagingAPI.h"
#include "core/TerraType.h"
#include "support/Telemetry.h"
#include "support/Timer.h"
#include "support/Trace.h"

#include <cstring>
#include <vector>

using namespace terracpp;
using namespace terracpp::autotuner;
using stage::Builder;

//===----------------------------------------------------------------------===//
// L1 kernel generator — a direct transcription of paper Fig. 5
//===----------------------------------------------------------------------===//

TerraFunction *autotuner::generateKernel(Engine &E, Type *ElemTy,
                                         const KernelParams &P) {
  assert(P.valid() && "invalid kernel parameters");
  Builder B(E.context());
  TypeContext &TC = B.types();

  Type *VecTy = TC.vector(ElemTy, P.V);       // vector(double, V)
  Type *VecPtr = TC.pointer(VecTy);           // &vector(double, V)
  Type *PtrTy = TC.pointer(ElemTy);
  Type *I64 = TC.int64();

  // Parameters (paper: terra([A] : &double, [B], [C], [lda], [ldb], [ldc])).
  TerraSymbol *A = B.sym(PtrTy, "A");
  TerraSymbol *Bp = B.sym(PtrTy, "B");
  TerraSymbol *C = B.sym(PtrTy, "C");
  TerraSymbol *Lda = B.sym(I64, "lda");
  TerraSymbol *Ldb = B.sym(I64, "ldb");
  TerraSymbol *Ldc = B.sym(I64, "ldc");

  // symmat-style grids of symbols (paper lines 4-9).
  std::vector<std::vector<TerraSymbol *>> Caddr(P.RM), Cacc(P.RM);
  for (int M = 0; M != P.RM; ++M)
    for (int N = 0; N != P.RN; ++N) {
      Caddr[M].push_back(B.sym(VecPtr, "caddr"));
      Cacc[M].push_back(B.sym(VecTy, "c"));
    }
  std::vector<TerraSymbol *> Avec(P.RM), Bvec(P.RN);
  for (int M = 0; M != P.RM; ++M)
    Avec[M] = B.sym(VecTy, "a");
  for (int N = 0; N != P.RN; ++N)
    Bvec[N] = B.sym(VecTy, "b");

  auto VecLoad = [&](TerraExpr *Addr) { return B.deref(B.cast(VecPtr, Addr)); };

  // loadc (paper lines 10-20): caddr[m][n] = C + m*ldc + n*V;
  // c[m][n] = @caddr[m][n] (alpha = 1).
  std::vector<TerraStmt *> LoadC;
  for (int M = 0; M != P.RM; ++M)
    for (int N = 0; N != P.RN; ++N) {
      TerraExpr *Addr = B.add(B.var(C), B.add(B.mul(B.litI64(M), B.var(Ldc)),
                                              B.litI64(N * P.V)));
      LoadC.push_back(B.varDecl(Caddr[M][N], B.cast(VecPtr, Addr)));
      LoadC.push_back(B.varDecl(Cacc[M][N], B.deref(B.var(Caddr[M][N]))));
    }

  // storec (paper lines 17-19): @caddr[m][n] = c[m][n].
  std::vector<TerraStmt *> StoreC;
  for (int M = 0; M != P.RM; ++M)
    for (int N = 0; N != P.RN; ++N)
      StoreC.push_back(
          B.assign(B.deref(B.var(Caddr[M][N])), B.var(Cacc[M][N])));

  // calcc (paper lines 21-36): load B vectors, broadcast A scalars, FMA grid.
  std::vector<TerraStmt *> CalcC;
  if (P.Prefetch)
    CalcC.push_back(B.exprStmt(B.prefetch(
        B.add(B.var(Bp), B.mul(B.litI64(4), B.var(Ldb))), 0, 3)));
  for (int N = 0; N != P.RN; ++N)
    CalcC.push_back(B.varDecl(
        Bvec[N], VecLoad(B.addrOf(B.index(B.var(Bp), B.litI64(N * P.V))))));
  for (int M = 0; M != P.RM; ++M)
    CalcC.push_back(B.varDecl(
        Avec[M],
        B.cast(VecTy, B.index(B.var(A), B.mul(B.litI64(M), B.var(Lda))))));
  for (int M = 0; M != P.RM; ++M)
    for (int N = 0; N != P.RN; ++N)
      CalcC.push_back(
          B.assign(B.var(Cacc[M][N]),
                   B.add(B.var(Cacc[M][N]),
                         B.mul(B.var(Avec[M]), B.var(Bvec[N])))));
  // B,A = B + ldb, A + 1 (paper line 45).
  CalcC.push_back(B.assignMany(
      {B.var(Bp), B.var(A)},
      {B.add(B.var(Bp), B.var(Ldb)), B.add(B.var(A), B.litI64(1))}));

  TerraSymbol *K = B.sym(I64, "k");
  TerraStmt *KLoop =
      B.forNum(K, B.litI64(0), B.litI64(P.NB), B.block(std::move(CalcC)));

  // Inner nn loop body: loadc; k-loop; storec; pointer bump (paper line 48):
  // A,B,C = A - NB, B - ldb*NB + RN*V, C + RN*V.
  std::vector<TerraStmt *> NNBody = std::move(LoadC);
  NNBody.push_back(KLoop);
  for (TerraStmt *S : StoreC)
    NNBody.push_back(S);
  NNBody.push_back(B.assignMany(
      {B.var(A), B.var(Bp), B.var(C)},
      {B.sub(B.var(A), B.litI64(P.NB)),
       B.add(B.sub(B.var(Bp), B.mul(B.var(Ldb), B.litI64(P.NB))),
             B.litI64(P.RN * P.V)),
       B.add(B.var(C), B.litI64(P.RN * P.V))}));

  TerraSymbol *NN = B.sym(I64, "nn");
  TerraStmt *NNLoop = B.forNum(NN, B.litI64(0), B.litI64(P.NB),
                               B.block(std::move(NNBody)),
                               B.litI64(P.RN * P.V));

  // Outer mm loop body: nn-loop; pointer bump (paper line 50):
  // A,B,C = A + lda*RM, B - NB, C + RM*ldc - NB.
  std::vector<TerraStmt *> MMBody;
  MMBody.push_back(NNLoop);
  MMBody.push_back(B.assignMany(
      {B.var(A), B.var(Bp), B.var(C)},
      {B.add(B.var(A), B.mul(B.var(Lda), B.litI64(P.RM))),
       B.sub(B.var(Bp), B.litI64(P.NB)),
       B.add(B.var(C),
             B.sub(B.mul(B.litI64(P.RM), B.var(Ldc)), B.litI64(P.NB)))}));

  TerraSymbol *MM = B.sym(I64, "mm");
  TerraStmt *MMLoop = B.forNum(MM, B.litI64(0), B.litI64(P.NB),
                               B.block(std::move(MMBody)), B.litI64(P.RM));

  return B.function("l1kernel", {A, Bp, C, Lda, Ldb, Ldc},
                    E.context().types().voidType(), B.block({MMLoop}));
}

//===----------------------------------------------------------------------===//
// Two-level blocked multiply over the L1 kernel
//===----------------------------------------------------------------------===//

TerraFunction *autotuner::generateGemm(Engine &E, Type *ElemTy,
                                       const KernelParams &P) {
  TerraFunction *Kernel = generateKernel(E, ElemTy, P);
  Builder B(E.context());
  TypeContext &TC = B.types();
  Type *PtrTy = TC.pointer(ElemTy);
  Type *I64 = TC.int64();

  TerraSymbol *A = B.sym(PtrTy, "A");
  TerraSymbol *Bp = B.sym(PtrTy, "B");
  TerraSymbol *C = B.sym(PtrTy, "C");
  TerraSymbol *N = B.sym(I64, "N");
  TerraSymbol *Ib = B.sym(I64, "ib");
  TerraSymbol *Jb = B.sym(I64, "jb");
  TerraSymbol *Kb = B.sym(I64, "kb");

  auto At = [&](TerraSymbol *Base, TerraExpr *Row, TerraExpr *Col) {
    return B.addrOf(
        B.index(B.var(Base), B.add(B.mul(Row, B.var(N)), Col)));
  };

  TerraStmt *Call = B.exprStmt(B.call(
      Kernel, {At(A, B.var(Ib), B.var(Kb)), At(Bp, B.var(Kb), B.var(Jb)),
               At(C, B.var(Ib), B.var(Jb)), B.var(N), B.var(N), B.var(N)}));

  TerraStmt *JbLoop = B.forNum(Jb, B.litI64(0), B.var(N), B.block({Call}),
                               B.litI64(P.NB));
  TerraStmt *KbLoop = B.forNum(Kb, B.litI64(0), B.var(N), B.block({JbLoop}),
                               B.litI64(P.NB));
  TerraStmt *IbLoop = B.forNum(Ib, B.litI64(0), B.var(N), B.block({KbLoop}),
                               B.litI64(P.NB));

  return B.function("gemm", {A, Bp, C, N}, TC.voidType(), B.block({IbLoop}));
}

//===----------------------------------------------------------------------===//
// Auto-tuner
//===----------------------------------------------------------------------===//

namespace {

/// Times one compiled gemm on a TestN multiply; returns GFLOP/s.
template <typename T>
double timeGemm(void *Fn, int64_t N, std::vector<T> &A, std::vector<T> &B,
                std::vector<T> &C) {
  auto *G = reinterpret_cast<void (*)(const T *, const T *, T *, int64_t)>(Fn);
  memset(C.data(), 0, C.size() * sizeof(T));
  // Warm up once, then time the best of two runs.
  G(A.data(), B.data(), C.data(), N);
  double BestSec = 1e30;
  for (int R = 0; R != 2; ++R) {
    Timer Tm;
    G(A.data(), B.data(), C.data(), N);
    BestSec = std::min(BestSec, Tm.seconds());
  }
  return 2.0 * static_cast<double>(N) * N * N / BestSec / 1e9;
}

} // namespace

TuneResult autotuner::tuneGemm(Engine &E, Type *ElemTy, int64_t TestN,
                               bool Quick) {
  TuneResult Result;
  Timer SearchT;
  bool IsFloat = ElemTy->size() == 4;

  // Parameter grid (paper: "searches over reasonable values").
  std::vector<int> NBs = Quick ? std::vector<int>{64}
                               : std::vector<int>{32, 64, 128};
  std::vector<int> RMs = Quick ? std::vector<int>{4} : std::vector<int>{2, 4};
  std::vector<int> RNs = Quick ? std::vector<int>{2} : std::vector<int>{1, 2};
  std::vector<int> Vs = IsFloat ? std::vector<int>{4, 8}
                                : std::vector<int>{2, 4};
  if (Quick)
    Vs = {IsFloat ? 8 : 4};

  std::vector<double> Ad, Bd, Cd;
  std::vector<float> Af, Bf, Cf;
  size_t Elems = static_cast<size_t>(TestN) * TestN;
  if (IsFloat) {
    Af.resize(Elems);
    Bf.resize(Elems);
    Cf.resize(Elems);
    for (size_t I = 0; I != Elems; ++I) {
      Af[I] = static_cast<float>((I * 37 % 97) / 97.0);
      Bf[I] = static_cast<float>((I * 71 % 89) / 89.0);
    }
  } else {
    Ad.resize(Elems);
    Bd.resize(Elems);
    Cd.resize(Elems);
    for (size_t I = 0; I != Elems; ++I) {
      Ad[I] = (I * 37 % 97) / 97.0;
      Bd[I] = (I * 71 % 89) / 89.0;
    }
  }

  // Stage 1: generate every candidate variant up front. Generation is pure
  // staging (no typechecking or native compilation), so it is cheap and
  // lets the whole grid compile as one batch.
  struct Candidate {
    KernelParams P;
    TerraFunction *Fn;
  };
  std::vector<Candidate> Candidates;
  for (int NB : NBs) {
    if (TestN % NB != 0)
      continue;
    for (int RM : RMs)
      for (int RN : RNs)
        for (int V : Vs) {
          KernelParams P{NB, RM, RN, V, /*Prefetch=*/true};
          if (!P.valid())
            continue;
          // Keep the accumulator grid within the architectural register
          // budget (16 SIMD registers): RM*RN accumulators + RM + RN
          // operands.
          if (RM * RN + RM + RN > 14)
            continue;
          Candidates.push_back({P, generateGemm(E, ElemTy, P)});
        }
  }
  Result.Candidates = static_cast<unsigned>(Candidates.size());

  // Stage 2: batch-compile all variants through the parallel
  // content-addressed pipeline. Failed variants are simply skipped below
  // (RawPtr stays null); a rerun with an identical grid hits the on-disk
  // cache and performs zero compiler invocations.
  JITEngine &JIT = E.compiler().jit();
  JITEngine::Stats Before = JIT.stats();
  std::vector<TerraFunction *> Roots;
  Roots.reserve(Candidates.size());
  for (const Candidate &C : Candidates)
    Roots.push_back(C.Fn);
  Timer CompileT;
  {
    trace::TraceSpan Span("compile_batch", "autotune");
    Span.arg("variants", std::to_string(Candidates.size()));
    telemetry::ScopedTimerUs BatchT(
        telemetry::Registry::global().histogram("autotune.compile_batch_us"));
    E.compileAll(Roots);
  }
  Result.CompileWallSeconds = CompileT.seconds();
  JITEngine::Stats After = JIT.stats();
  Result.CompileCpuSeconds = After.CompilerSeconds - Before.CompilerSeconds;
  Result.CacheHits = After.CacheHits - Before.CacheHits;
  Result.CacheMisses = After.CacheMisses - Before.CacheMisses;
  Result.CompileJobs = JIT.compileJobs();

  // Stage 3: time each compiled variant serially — timing shares the
  // machine, so it stays single-threaded for stable measurements.
  telemetry::Histogram &VariantRunUs =
      telemetry::Registry::global().histogram("autotune.variant_run_us");
  for (const Candidate &C : Candidates) {
    // Under tiered execution compileAll leaves RawPtr null (functions start
    // on the tier-0 VM); rawPointer forces native promotion, and is a no-op
    // when the batch pipeline already produced machine code.
    void *Raw = E.rawPointer(C.Fn);
    if (!Raw)
      continue;
    trace::TraceSpan Span("variant_run", "autotune");
    Span.arg("params", "NB=" + std::to_string(C.P.NB) +
                           " RM=" + std::to_string(C.P.RM) +
                           " RN=" + std::to_string(C.P.RN) +
                           " V=" + std::to_string(C.P.V));
    telemetry::ScopedTimerUs RunT(VariantRunUs);
    double GF = IsFloat ? timeGemm(Raw, TestN, Af, Bf, Cf)
                        : timeGemm(Raw, TestN, Ad, Bd, Cd);
    Result.Trials.emplace_back(C.P, GF);
    if (GF > Result.BestGFlops) {
      Result.BestGFlops = GF;
      Result.Best = C.P;
      Result.Fn = C.Fn;
      Result.RawFn = Raw;
    }
  }
  Result.SearchSeconds = SearchT.seconds();
  return Result;
}
