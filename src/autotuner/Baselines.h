//===- Baselines.h - Native GEMM comparators (paper Fig. 6) -----*- C++ -*-===//
//
// The baselines the paper's Fig. 6 compares against, rebuilt as native C++
// (DESIGN.md §4): a naive triple loop ("Naive"), a cache-blocked triple loop
// ("Blocked"), and a hand-tuned register-blocked vectorized kernel standing
// in for ATLAS/MKL ("TunedC"). All compute C += A * B on square row-major
// matrices.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_AUTOTUNER_BASELINES_H
#define TERRACPP_AUTOTUNER_BASELINES_H

#include <algorithm>
#include <cstdint>
#include <cstring>

namespace terracpp {
namespace autotuner {

/// Naive triple loop (paper's "Naive" curve; "over 65 times slower than the
/// best-tuned algorithm").
template <typename T>
void naiveGemm(const T *A, const T *B, T *C, int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      T Acc = C[I * N + J];
      for (int64_t K = 0; K < N; ++K)
        Acc += A[I * N + K] * B[K * N + J];
      C[I * N + J] = Acc;
    }
}

/// Cache-blocked triple loop (paper's "Blocked" curve: better than naive for
/// large matrices but still well below peak).
template <typename T>
void blockedGemm(const T *A, const T *B, T *C, int64_t N, int64_t NB = 64) {
  for (int64_t Ib = 0; Ib < N; Ib += NB)
    for (int64_t Kb = 0; Kb < N; Kb += NB)
      for (int64_t Jb = 0; Jb < N; Jb += NB) {
        int64_t IMax = std::min(Ib + NB, N);
        int64_t KMax = std::min(Kb + NB, N);
        int64_t JMax = std::min(Jb + NB, N);
        for (int64_t I = Ib; I < IMax; ++I)
          for (int64_t K = Kb; K < KMax; ++K) {
            T Av = A[I * N + K];
            for (int64_t J = Jb; J < JMax; ++J)
              C[I * N + J] += Av * B[K * N + J];
          }
      }
}

namespace detail {

template <typename T, int V> struct VecOf;
template <> struct VecOf<double, 4> {
  typedef double Ty __attribute__((vector_size(32), aligned(8)));
};
template <> struct VecOf<float, 8> {
  typedef float Ty __attribute__((vector_size(32), aligned(4)));
};

} // namespace detail

/// Hand-tuned register-blocked, vectorized, prefetching kernel — the
/// ATLAS/MKL stand-in ("TunedC"). Same optimization family the paper's
/// staged kernel generates, written by hand with fixed parameters
/// (NB=64, RM=4, RN=2).
template <typename T>
void tunedGemm(const T *A, const T *B, T *C, int64_t N) {
  constexpr int NB = 64;
  constexpr int RM = 4;
  constexpr int RN = 2;
  constexpr int V = std::is_same_v<T, float> ? 8 : 4;
  using Vec = typename detail::VecOf<T, V>::Ty;

  for (int64_t Ib = 0; Ib < N; Ib += NB)
    for (int64_t Kb = 0; Kb < N; Kb += NB)
      for (int64_t Jb = 0; Jb < N; Jb += NB) {
        // L1 kernel on the NB x NB block.
        for (int64_t I = Ib; I < std::min<int64_t>(Ib + NB, N); I += RM)
          for (int64_t J = Jb; J < std::min<int64_t>(Jb + NB, N);
               J += RN * V) {
            Vec Acc[RM][RN];
            for (int M = 0; M != RM; ++M)
              for (int R = 0; R != RN; ++R)
                Acc[M][R] = *(const Vec *)&C[(I + M) * N + J + R * V];
            for (int64_t K = Kb; K < std::min<int64_t>(Kb + NB, N); ++K) {
              __builtin_prefetch(&B[(K + 4) * N + J], 0, 3);
              Vec Bv[RN];
              for (int R = 0; R != RN; ++R)
                Bv[R] = *(const Vec *)&B[K * N + J + R * V];
              for (int M = 0; M != RM; ++M) {
                T Av = A[(I + M) * N + K];
                Vec Avv;
                for (int X = 0; X != V; ++X)
                  Avv[X] = Av;
                for (int R = 0; R != RN; ++R)
                  Acc[M][R] += Avv * Bv[R];
              }
            }
            for (int M = 0; M != RM; ++M)
              for (int R = 0; R != RN; ++R)
                *(Vec *)&C[(I + M) * N + J + R * V] = Acc[M][R];
          }
      }
}

} // namespace autotuner
} // namespace terracpp

#endif // TERRACPP_AUTOTUNER_BASELINES_H
