//===- Gemm.h - Staged matrix-multiply generator (paper §6.1) ---*- C++ -*-===//
//
// Reimplements the paper's Terra DGEMM auto-tuner: a staged generator for an
// L1-sized matrix-multiply kernel (paper Fig. 5) parameterized by block size
// NB, register blocking RM x RN, and vector width V, wrapped in a two-level
// cache-blocking scheme, plus a search harness that JIT-compiles candidate
// configurations, times them, and keeps the best (paper: "around 200 lines
// of code").
//
// The generated kernel performs exactly the paper's optimizations: register
// blocking of the innermost loops (a grid of RM x RN vector accumulators),
// vectorization through Terra vector types, and software prefetch of the B
// panel.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_AUTOTUNER_GEMM_H
#define TERRACPP_AUTOTUNER_GEMM_H

#include "core/Engine.h"

#include <string>
#include <vector>

namespace terracpp {
namespace autotuner {

/// Tunable parameters of the staged kernel (paper Fig. 5's NB, RM, RN, V).
struct KernelParams {
  int NB = 64;        ///< L1 block size (block is NB x NB).
  int RM = 2;         ///< Register-block rows.
  int RN = 2;         ///< Register-block columns, in vectors.
  int V = 2;          ///< Vector width (1 = scalar).
  bool Prefetch = true;

  bool valid() const {
    return NB > 0 && RM > 0 && RN > 0 && V > 0 && NB % RM == 0 &&
           NB % (RN * V) == 0;
  }
  std::string str() const {
    return "NB=" + std::to_string(NB) + " RM=" + std::to_string(RM) +
           " RN=" + std::to_string(RN) + " V=" + std::to_string(V) +
           (Prefetch ? " pf" : "");
  }
};

/// gemm(A, B, C, N): C += A*B for square row-major N x N matrices where
/// N is a multiple of Params.NB.
using GemmFn = void (*)(const void *A, const void *B, void *C, int64_t N);

/// Generates the L1 kernel (paper Fig. 5): C-block += A-block * B-block for
/// an NB x NB block with row strides lda/ldb/ldc.
TerraFunction *generateKernel(Engine &E, Type *ElemTy,
                              const KernelParams &Params);

/// Generates the full blocked multiply that invokes the L1 kernel per block.
TerraFunction *generateGemm(Engine &E, Type *ElemTy,
                            const KernelParams &Params);

/// Result of auto-tuning.
struct TuneResult {
  KernelParams Best;
  double BestGFlops = 0;
  TerraFunction *Fn = nullptr;
  void *RawFn = nullptr; ///< Cast to GemmFn-with-elem-type.
  /// Every configuration evaluated, for reporting.
  std::vector<std::pair<KernelParams, double>> Trials;

  /// Search instrumentation (bench_gemm reports these in BENCH_gemm.json).
  unsigned Candidates = 0;        ///< Variants staged for compilation.
  double SearchSeconds = 0;       ///< Total tuneGemm wall-clock.
  double CompileWallSeconds = 0;  ///< Wall-clock of the batch compile.
  double CompileCpuSeconds = 0;   ///< Summed per-variant cc seconds.
  unsigned CacheHits = 0;         ///< Variants served from the JIT cache.
  unsigned CacheMisses = 0;       ///< Variants that invoked cc.
  unsigned CompileJobs = 1;       ///< Concurrency the pipeline ran with.
};

/// Auto-tunes over a parameter grid using TestN x TestN multiplies (paper:
/// "searches over reasonable values for the parameters, JIT-compiles the
/// code, runs it on a user-provided test case, and chooses the
/// best-performing configuration").
TuneResult tuneGemm(Engine &E, Type *ElemTy, int64_t TestN,
                    bool Quick = false);

} // namespace autotuner
} // namespace terracpp

#endif // TERRACPP_AUTOTUNER_GEMM_H
