//===- Diagnostics.h - Error reporting --------------------------*- C++ -*-===//
//
// terracpp is built without exceptions, so all phases (parsing,
// specialization, typechecking, linking, code generation, execution) report
// failures through a DiagnosticEngine and return null/false to their caller.
// Diagnostics accumulate; callers test hasErrors() at phase boundaries.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_DIAGNOSTICS_H
#define TERRACPP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <set>
#include <string>
#include <vector>

namespace terracpp {

enum class DiagKind { Error, Warning, Note };

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
  /// Stable diagnostic code ("TA003"); empty for uncoded diagnostics.
  std::string Code;
};

/// Accumulates diagnostics for one compilation context.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager *SM = nullptr) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  /// Coded variants. A coded diagnostic is deduplicated: reporting the same
  /// (code, location) pair twice keeps only the first instance — the
  /// compile pipeline may analyze a function once per entry point it is
  /// reachable from.
  void error(const char *Code, SourceLoc Loc, std::string Message);
  void warning(const char *Code, SourceLoc Loc, std::string Message);

  /// The source manager used for rendering, when one was attached (the
  /// analysis suppression-comment lookup reads source lines through it).
  const SourceManager *sourceManager() const { return SM; }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  unsigned warningCount() const { return NumWarnings; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Caps on *stored* diagnostics of each kind; once a cap is hit a single
  /// "too many ..." note is emitted and further diagnostics of that kind are
  /// counted but dropped. 0 means unlimited.
  void setMaxErrors(unsigned N) { MaxErrors = N; }
  void setMaxWarnings(unsigned N) { MaxWarnings = N; }

  /// Drops all accumulated diagnostics (used between REPL-style statements
  /// and by tests).
  void clear() {
    Diags.clear();
    SeenCoded.clear();
    NumErrors = 0;
    NumWarnings = 0;
    ErrorLimitNoted = false;
    WarningLimitNoted = false;
  }

  /// Checkpoint/rollback support for speculative operations (e.g. trying
  /// one __cast metamethod before another during typechecking).
  size_t checkpoint() const { return Diags.size(); }
  void rollback(size_t Checkpoint) {
    while (Diags.size() > Checkpoint) {
      const Diagnostic &D = Diags.back();
      if (D.Kind == DiagKind::Error)
        --NumErrors;
      else if (D.Kind == DiagKind::Warning)
        --NumWarnings;
      if (!D.Code.empty())
        SeenCoded.erase(dedupKey(D.Code, D.Loc));
      Diags.pop_back();
    }
  }

  /// Renders one diagnostic as "file:line:col: error: message" with the
  /// source line appended when available.
  std::string render(const Diagnostic &D) const;

  /// Renders every accumulated diagnostic, one per line.
  std::string renderAll() const;

  /// When set, errors are also printed to stderr as they are reported.
  void setPrintToStderr(bool Print) { PrintToStderr = Print; }

private:
  void report(DiagKind Kind, SourceLoc Loc, std::string Message,
              const char *Code = nullptr);
  static std::string dedupKey(const std::string &Code, SourceLoc Loc);

  const SourceManager *SM;
  std::vector<Diagnostic> Diags;
  std::set<std::string> SeenCoded;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
  unsigned MaxErrors = 0;
  unsigned MaxWarnings = 0;
  bool ErrorLimitNoted = false;
  bool WarningLimitNoted = false;
  bool PrintToStderr = false;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_DIAGNOSTICS_H
