//===- Diagnostics.h - Error reporting --------------------------*- C++ -*-===//
//
// terracpp is built without exceptions, so all phases (parsing,
// specialization, typechecking, linking, code generation, execution) report
// failures through a DiagnosticEngine and return null/false to their caller.
// Diagnostics accumulate; callers test hasErrors() at phase boundaries.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_DIAGNOSTICS_H
#define TERRACPP_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace terracpp {

enum class DiagKind { Error, Warning, Note };

/// A single reported diagnostic.
struct Diagnostic {
  DiagKind Kind;
  SourceLoc Loc;
  std::string Message;
};

/// Accumulates diagnostics for one compilation context.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager *SM = nullptr) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Drops all accumulated diagnostics (used between REPL-style statements
  /// and by tests).
  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

  /// Checkpoint/rollback support for speculative operations (e.g. trying
  /// one __cast metamethod before another during typechecking).
  size_t checkpoint() const { return Diags.size(); }
  void rollback(size_t Checkpoint) {
    while (Diags.size() > Checkpoint) {
      if (Diags.back().Kind == DiagKind::Error)
        --NumErrors;
      Diags.pop_back();
    }
  }

  /// Renders one diagnostic as "file:line:col: error: message" with the
  /// source line appended when available.
  std::string render(const Diagnostic &D) const;

  /// Renders every accumulated diagnostic, one per line.
  std::string renderAll() const;

  /// When set, errors are also printed to stderr as they are reported.
  void setPrintToStderr(bool Print) { PrintToStderr = Print; }

private:
  void report(DiagKind Kind, SourceLoc Loc, std::string Message);

  const SourceManager *SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  bool PrintToStderr = false;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_DIAGNOSTICS_H
