//===- Timer.h - Wall-clock timing helpers ----------------------*- C++ -*-===//

#ifndef TERRACPP_SUPPORT_TIMER_H
#define TERRACPP_SUPPORT_TIMER_H

#include <chrono>

namespace terracpp {

/// Measures elapsed wall-clock time from construction (or the last reset).
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  void reset() { Start = Clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_TIMER_H
