#include "support/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace terracpp;
using namespace terracpp::json;

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

std::string json::escape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

static void dumpNumber(double N, std::string &Out) {
  // JSON has no NaN/Inf; emit null like most serializers.
  if (std::isnan(N) || std::isinf(N)) {
    Out += "null";
    return;
  }
  // Integers up to 2^53 print exactly, without a trailing ".000000".
  if (N == std::floor(N) && std::fabs(N) < 9007199254740992.0) {
    char Buf[32];
    snprintf(Buf, sizeof(Buf), "%.0f", N);
    Out += Buf;
    return;
  }
  char Buf[40];
  snprintf(Buf, sizeof(Buf), "%.17g", N);
  Out += Buf;
}

static void dumpValue(const Value &V, std::string &Out) {
  switch (V.kind()) {
  case Value::K_Null:
    Out += "null";
    break;
  case Value::K_Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case Value::K_Number:
    dumpNumber(V.asNumber(), Out);
    break;
  case Value::K_String:
    Out += '"';
    Out += escape(V.asString());
    Out += '"';
    break;
  case Value::K_Array: {
    Out += '[';
    bool First = true;
    for (const Value &E : V.elements()) {
      if (!First)
        Out += ',';
      First = false;
      dumpValue(E, Out);
    }
    Out += ']';
    break;
  }
  case Value::K_Object: {
    Out += '{';
    bool First = true;
    for (const auto &M : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Out += '"';
      Out += escape(M.first);
      Out += "\":";
      dumpValue(M.second, Out);
    }
    Out += '}';
    break;
  }
  }
}

std::string Value::dump() const {
  std::string Out;
  dumpValue(*this, Out);
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, std::string &Err) : Text(Text), Err(Err) {}

  bool run(Value &Out) {
    skipWS();
    if (!parseValue(Out, 0))
      return false;
    skipWS();
    if (Pos != Text.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int MaxDepth = 64;

  bool fail(const std::string &Msg) {
    Err = Msg + " at byte " + std::to_string(Pos);
    return false;
  }

  void skipWS() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C != ' ' && C != '\t' && C != '\n' && C != '\r')
        break;
      ++Pos;
    }
  }

  bool literal(const char *Lit) {
    size_t N = strlen(Lit);
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseValue(Value &Out, int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case 'n':
      Out = Value::null();
      return literal("null");
    case 't':
      Out = Value::boolean(true);
      return literal("true");
    case 'f':
      Out = Value::boolean(false);
      return literal("false");
    case '"':
      return parseString(Out);
    case '[':
      return parseArray(Out, Depth);
    case '{':
      return parseObject(Out, Depth);
    default:
      return parseNumber(Out);
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if ((C >= '0' && C <= '9') || C == '.' || C == 'e' || C == 'E' ||
          C == '+' || C == '-')
        ++Pos;
      else
        break;
    }
    if (Pos == Start)
      return fail("invalid value");
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double D = strtod(Num.c_str(), &End);
    if (!End || *End != '\0') {
      Pos = Start;
      return fail("invalid number");
    }
    Out = Value::number(D);
    return true;
  }

  /// Appends \p Code as UTF-8.
  static void appendCodepoint(std::string &S, unsigned Code) {
    if (Code < 0x80) {
      S += static_cast<char>(Code);
    } else if (Code < 0x800) {
      S += static_cast<char>(0xC0 | (Code >> 6));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else if (Code < 0x10000) {
      S += static_cast<char>(0xE0 | (Code >> 12));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      S += static_cast<char>(0xF0 | (Code >> 18));
      S += static_cast<char>(0x80 | ((Code >> 12) & 0x3F));
      S += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      S += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I != 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape");
    }
    return true;
  }

  bool parseString(Value &Out) {
    std::string S;
    if (!parseRawString(S))
      return false;
    Out = Value::string(std::move(S));
    return true;
  }

  bool parseRawString(std::string &S) {
    ++Pos; // Opening quote.
    while (true) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos];
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C == '\\') {
        ++Pos;
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          S += '"';
          break;
        case '\\':
          S += '\\';
          break;
        case '/':
          S += '/';
          break;
        case 'b':
          S += '\b';
          break;
        case 'f':
          S += '\f';
          break;
        case 'n':
          S += '\n';
          break;
        case 'r':
          S += '\r';
          break;
        case 't':
          S += '\t';
          break;
        case 'u': {
          unsigned Code;
          if (!parseHex4(Code))
            return false;
          // Surrogate pair.
          if (Code >= 0xD800 && Code <= 0xDBFF &&
              Text.compare(Pos, 2, "\\u") == 0) {
            size_t Save = Pos;
            Pos += 2;
            unsigned Low;
            if (!parseHex4(Low))
              return false;
            if (Low >= 0xDC00 && Low <= 0xDFFF)
              Code = 0x10000 + ((Code - 0xD800) << 10) + (Low - 0xDC00);
            else
              Pos = Save; // Unpaired; emit the high surrogate as-is.
          }
          appendCodepoint(S, Code);
          break;
        }
        default:
          return fail("invalid escape character");
        }
      } else {
        S += C;
        ++Pos;
      }
    }
  }

  bool parseArray(Value &Out, int Depth) {
    ++Pos; // '['.
    Out = Value::array();
    skipWS();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      Value Elem;
      skipWS();
      if (!parseValue(Elem, Depth + 1))
        return false;
      Out.push(std::move(Elem));
      skipWS();
      if (Pos >= Text.size())
        return fail("unterminated array");
      char C = Text[Pos++];
      if (C == ']')
        return true;
      if (C != ',') {
        --Pos;
        return fail("expected ',' or ']'");
      }
    }
  }

  bool parseObject(Value &Out, int Depth) {
    ++Pos; // '{'.
    Out = Value::object();
    skipWS();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWS();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseRawString(Key))
        return false;
      skipWS();
      if (Pos >= Text.size() || Text[Pos] != ':')
        return fail("expected ':'");
      ++Pos;
      skipWS();
      Value Member;
      if (!parseValue(Member, Depth + 1))
        return false;
      Out.set(std::move(Key), std::move(Member));
      skipWS();
      if (Pos >= Text.size())
        return fail("unterminated object");
      char C = Text[Pos++];
      if (C == '}')
        return true;
      if (C != ',') {
        --Pos;
        return fail("expected ',' or '}'");
      }
    }
  }

  const std::string &Text;
  std::string &Err;
  size_t Pos = 0;
};

} // namespace

bool json::parse(const std::string &Text, Value &Out, std::string &Err) {
  Parser P(Text, Err);
  return P.run(Out);
}
