//===- Subprocess.h - posix_spawn command execution -------------*- C++ -*-===//
//
// Replaces the JIT's original system() calls: runs a command by argv via
// posix_spawnp with stdout/stderr redirected to files, so compiler
// diagnostics can be captured and attached to the DiagnosticEngine instead
// of leaking to the terminal. No shell is involved, so paths with spaces
// and metacharacters are safe, and many compiles can run concurrently.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_SUBPROCESS_H
#define TERRACPP_SUPPORT_SUBPROCESS_H

#include <string>
#include <vector>

namespace terracpp {

struct SpawnResult {
  bool Spawned = false; ///< False if the process could not be started.
  int ExitCode = -1;    ///< Exit status; -1 if killed by a signal.
  int TermSignal = 0;   ///< Terminating signal number, if any.
  int SpawnErrno = 0;   ///< errno from posix_spawnp when !Spawned.
  std::string Stdout;   ///< Captured stdout (empty unless requested).
  std::string Stderr;   ///< Captured stderr (empty unless requested).
  std::string Error;    ///< Spawn-level failure description.

  bool ok() const { return Spawned && ExitCode == 0; }

  /// True when the command itself could not be started (e.g. the binary is
  /// not installed), as opposed to it running and failing.
  bool spawnFailed() const { return !Spawned; }

  /// One-line structured description of what went wrong, suitable for a
  /// diagnostic: distinguishes "could not start <cmd>" (with errno text and
  /// an install hint for ENOENT) from nonzero exits and signal deaths.
  std::string describe(const std::string &Command) const;
};

/// Runs Argv[0] (searched on PATH) with the given arguments. When
/// \p CaptureDir is non-empty, stdout/stderr are redirected into scratch
/// files under it (which must exist and be writable) and returned in the
/// result; otherwise the streams are inherited. Blocks until exit.
SpawnResult runCommand(const std::vector<std::string> &Argv,
                       const std::string &CaptureDir);

/// Splits a flag string on whitespace ("-O3 -march=native" -> 2 args).
std::vector<std::string> splitCommandFlags(const std::string &Flags);

/// A long-running child process (a terrad shard spawned by the fleet
/// router): posix_spawnp without waiting, liveness polling, signal-based
/// termination, and bounded reaping. Unlike runCommand, the child is a
/// daemon — callers interact with it over its socket, not its stdio.
class DaemonProcess {
public:
  DaemonProcess() = default;
  ~DaemonProcess(); ///< terminate(SIGKILL) + reap if still running.
  DaemonProcess(const DaemonProcess &) = delete;
  DaemonProcess &operator=(const DaemonProcess &) = delete;
  DaemonProcess(DaemonProcess &&O) noexcept;
  DaemonProcess &operator=(DaemonProcess &&O) noexcept;

  /// Starts Argv[0] (searched on PATH). \p EnvOverrides entries
  /// ("KEY=VALUE") replace or extend the inherited environment — how the
  /// router points every spawned shard at one shared TERRACPP_CACHE_DIR.
  /// False on failure (\p Err set).
  bool spawn(const std::vector<std::string> &Argv,
             const std::vector<std::string> &EnvOverrides, std::string &Err);

  /// True while the child has not exited (waitpid WNOHANG; reaps and
  /// latches the exit status once it does exit).
  bool alive();

  /// Sends \p Sig (default SIGTERM — terrad drains on it). No-op when not
  /// running.
  void terminate(int Sig = 15);

  /// Waits up to \p TimeoutMs for exit (polling). Returns the exit code,
  /// 128+signal for signal deaths, or -1 on timeout.
  int waitExit(int TimeoutMs);

  int pid() const { return Pid; }
  bool started() const { return Pid > 0; }

private:
  void reapNow(int Status);

  int Pid = -1;
  bool Exited = false;
  int ExitCode = -1;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_SUBPROCESS_H
