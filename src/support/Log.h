//===- Log.h - Leveled structured logging -----------------------*- C++ -*-===//
//
// Minimal process-wide logger for long-running components (terrad). Two
// output shapes on stderr, selected at startup:
//
//   text:  [info] request_rejected reason="queue full" op=call
//   json:  {"ts":1754450000.123,"level":"info","event":"request_rejected",
//           "reason":"queue full","op":"call"}
//
// Levels: debug < info < warn < error < off. The threshold comes from
// setLevel() (terrad --log-level) or the TERRAD_LOG_LEVEL environment
// variable; JSON mode from setJsonOutput() (terrad --log-json) or
// TERRAD_LOG_JSON=1. Each emit
// builds the full line first and writes it with one fprintf, so lines from
// concurrent threads never interleave mid-record.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_LOG_H
#define TERRACPP_SUPPORT_LOG_H

#include <initializer_list>
#include <string>
#include <utility>

namespace terracpp {
namespace logging {

enum class Level { Debug = 0, Info, Warn, Error, Off };

void setLevel(Level L);
Level level();
void setJsonOutput(bool Json);
bool jsonOutput();

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive); returns
/// false and leaves \p Out untouched on anything else.
bool parseLevel(const std::string &S, Level &Out);

/// Applies TERRAD_LOG_LEVEL (if valid) and TERRAD_LOG_JSON.
void configureFromEnv();

bool enabled(Level L);

/// One structured record: an event name plus key/value fields.
void emit(Level L, const std::string &Event,
          std::initializer_list<std::pair<const char *, std::string>> Fields =
              {});

} // namespace logging
} // namespace terracpp

#endif // TERRACPP_SUPPORT_LOG_H
