#include "support/Subprocess.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <spawn.h>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace terracpp;

std::vector<std::string> terracpp::splitCommandFlags(const std::string &Flags) {
  std::vector<std::string> Out;
  std::istringstream SS(Flags);
  std::string Tok;
  while (SS >> Tok)
    Out.push_back(Tok);
  return Out;
}

std::string SpawnResult::describe(const std::string &Command) const {
  if (!Spawned) {
    std::string Out = "could not start '" + Command + "'";
    if (SpawnErrno != 0) {
      Out += ": ";
      Out += strerror(SpawnErrno);
      if (SpawnErrno == ENOENT)
        Out += " (is it installed and on PATH? terracpp keeps running on "
               "the baseline JIT / interpreter tiers without it)";
    }
    return Out;
  }
  if (TermSignal != 0)
    return "'" + Command + "' was killed by signal " +
           std::to_string(TermSignal) +
           (TermSignal == SIGSEGV ? " (segmentation fault)" : "");
  if (ExitCode != 0)
    return "'" + Command + "' exited with status " + std::to_string(ExitCode);
  return "'" + Command + "' succeeded";
}

static std::string slurpAndRemove(const std::string &Path) {
  std::string Out;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    Out = SS.str();
  }
  ::unlink(Path.c_str());
  return Out;
}

SpawnResult terracpp::runCommand(const std::vector<std::string> &Argv,
                                 const std::string &CaptureDir) {
  SpawnResult R;
  if (Argv.empty()) {
    R.Error = "empty argv";
    return R;
  }

  // Unique capture files: the same directory may host concurrent spawns
  // from the compile pool.
  static std::atomic<unsigned> Serial{0};
  std::string OutPath, ErrPath;
  if (!CaptureDir.empty()) {
    unsigned Id = Serial++;
    std::string Stem = CaptureDir + "/spawn" + std::to_string(::getpid()) +
                       "-" + std::to_string(Id);
    OutPath = Stem + ".out";
    ErrPath = Stem + ".err";
  }

  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  if (!CaptureDir.empty()) {
    posix_spawn_file_actions_addopen(&Actions, STDOUT_FILENO, OutPath.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_addopen(&Actions, STDERR_FILENO, ErrPath.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }

  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  pid_t Pid = -1;
  int RC = posix_spawnp(&Pid, Args[0], &Actions, nullptr, Args.data(),
                        environ);
  posix_spawn_file_actions_destroy(&Actions);
  if (RC != 0) {
    R.SpawnErrno = RC;
    R.Error = R.describe(Argv[0]);
    if (!CaptureDir.empty()) {
      ::unlink(OutPath.c_str());
      ::unlink(ErrPath.c_str());
    }
    return R;
  }
  R.Spawned = true;

  int Status = 0;
  pid_t Waited;
  do {
    Waited = ::waitpid(Pid, &Status, 0);
  } while (Waited < 0 && errno == EINTR);
  if (Waited == Pid && WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
  } else {
    R.ExitCode = -1; // Signal or wait failure.
    if (Waited == Pid && WIFSIGNALED(Status))
      R.TermSignal = WTERMSIG(Status);
  }

  if (!CaptureDir.empty()) {
    R.Stdout = slurpAndRemove(OutPath);
    R.Stderr = slurpAndRemove(ErrPath);
  }
  return R;
}
