#include "support/Subprocess.h"

#include <atomic>
#include <cerrno>
#include <csignal>
#include <cstring>
#include <fcntl.h>
#include <fstream>
#include <spawn.h>
#include <sstream>
#include <sys/wait.h>
#include <unistd.h>

extern char **environ;

using namespace terracpp;

std::vector<std::string> terracpp::splitCommandFlags(const std::string &Flags) {
  std::vector<std::string> Out;
  std::istringstream SS(Flags);
  std::string Tok;
  while (SS >> Tok)
    Out.push_back(Tok);
  return Out;
}

std::string SpawnResult::describe(const std::string &Command) const {
  if (!Spawned) {
    std::string Out = "could not start '" + Command + "'";
    if (SpawnErrno != 0) {
      Out += ": ";
      Out += strerror(SpawnErrno);
      if (SpawnErrno == ENOENT)
        Out += " (is it installed and on PATH? terracpp keeps running on "
               "the baseline JIT / interpreter tiers without it)";
    }
    return Out;
  }
  if (TermSignal != 0)
    return "'" + Command + "' was killed by signal " +
           std::to_string(TermSignal) +
           (TermSignal == SIGSEGV ? " (segmentation fault)" : "");
  if (ExitCode != 0)
    return "'" + Command + "' exited with status " + std::to_string(ExitCode);
  return "'" + Command + "' succeeded";
}

static std::string slurpAndRemove(const std::string &Path) {
  std::string Out;
  {
    std::ifstream In(Path, std::ios::binary);
    std::ostringstream SS;
    SS << In.rdbuf();
    Out = SS.str();
  }
  ::unlink(Path.c_str());
  return Out;
}

SpawnResult terracpp::runCommand(const std::vector<std::string> &Argv,
                                 const std::string &CaptureDir) {
  SpawnResult R;
  if (Argv.empty()) {
    R.Error = "empty argv";
    return R;
  }

  // Unique capture files: the same directory may host concurrent spawns
  // from the compile pool.
  static std::atomic<unsigned> Serial{0};
  std::string OutPath, ErrPath;
  if (!CaptureDir.empty()) {
    unsigned Id = Serial++;
    std::string Stem = CaptureDir + "/spawn" + std::to_string(::getpid()) +
                       "-" + std::to_string(Id);
    OutPath = Stem + ".out";
    ErrPath = Stem + ".err";
  }

  posix_spawn_file_actions_t Actions;
  posix_spawn_file_actions_init(&Actions);
  if (!CaptureDir.empty()) {
    posix_spawn_file_actions_addopen(&Actions, STDOUT_FILENO, OutPath.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
    posix_spawn_file_actions_addopen(&Actions, STDERR_FILENO, ErrPath.c_str(),
                                     O_WRONLY | O_CREAT | O_TRUNC, 0644);
  }

  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  pid_t Pid = -1;
  int RC = posix_spawnp(&Pid, Args[0], &Actions, nullptr, Args.data(),
                        environ);
  posix_spawn_file_actions_destroy(&Actions);
  if (RC != 0) {
    R.SpawnErrno = RC;
    R.Error = R.describe(Argv[0]);
    if (!CaptureDir.empty()) {
      ::unlink(OutPath.c_str());
      ::unlink(ErrPath.c_str());
    }
    return R;
  }
  R.Spawned = true;

  int Status = 0;
  pid_t Waited;
  do {
    Waited = ::waitpid(Pid, &Status, 0);
  } while (Waited < 0 && errno == EINTR);
  if (Waited == Pid && WIFEXITED(Status)) {
    R.ExitCode = WEXITSTATUS(Status);
  } else {
    R.ExitCode = -1; // Signal or wait failure.
    if (Waited == Pid && WIFSIGNALED(Status))
      R.TermSignal = WTERMSIG(Status);
  }

  if (!CaptureDir.empty()) {
    R.Stdout = slurpAndRemove(OutPath);
    R.Stderr = slurpAndRemove(ErrPath);
  }
  return R;
}

//===----------------------------------------------------------------------===//
// DaemonProcess
//===----------------------------------------------------------------------===//

DaemonProcess::DaemonProcess(DaemonProcess &&O) noexcept
    : Pid(O.Pid), Exited(O.Exited), ExitCode(O.ExitCode) {
  O.Pid = -1;
  O.Exited = false;
}

DaemonProcess &DaemonProcess::operator=(DaemonProcess &&O) noexcept {
  if (this != &O) {
    if (Pid > 0 && !Exited) {
      terminate(SIGKILL);
      waitExit(2000);
    }
    Pid = O.Pid;
    Exited = O.Exited;
    ExitCode = O.ExitCode;
    O.Pid = -1;
    O.Exited = false;
  }
  return *this;
}

DaemonProcess::~DaemonProcess() {
  if (Pid > 0 && !Exited) {
    terminate(SIGKILL);
    waitExit(2000);
  }
}

bool DaemonProcess::spawn(const std::vector<std::string> &Argv,
                          const std::vector<std::string> &EnvOverrides,
                          std::string &Err) {
  if (Argv.empty()) {
    Err = "empty argv";
    return false;
  }
  if (Pid > 0 && !Exited) {
    Err = "process already running";
    return false;
  }
  Pid = -1;
  Exited = false;
  ExitCode = -1;

  std::vector<char *> Args;
  Args.reserve(Argv.size() + 1);
  for (const std::string &A : Argv)
    Args.push_back(const_cast<char *>(A.c_str()));
  Args.push_back(nullptr);

  // Child environment: the inherited environment minus any key an override
  // replaces, plus the overrides. getenv takes the first match, so simply
  // appending would not reliably override.
  std::vector<std::string> EnvStorage;
  for (char **E = environ; E && *E; ++E) {
    const char *Entry = *E;
    const char *Eq = strchr(Entry, '=');
    size_t KeyLen = Eq ? static_cast<size_t>(Eq - Entry) : strlen(Entry);
    bool Overridden = false;
    for (const std::string &O : EnvOverrides)
      if (O.size() > KeyLen && O[KeyLen] == '=' &&
          O.compare(0, KeyLen, Entry, KeyLen) == 0) {
        Overridden = true;
        break;
      }
    if (!Overridden)
      EnvStorage.push_back(Entry);
  }
  for (const std::string &O : EnvOverrides)
    EnvStorage.push_back(O);
  std::vector<char *> Envp;
  Envp.reserve(EnvStorage.size() + 1);
  for (const std::string &E : EnvStorage)
    Envp.push_back(const_cast<char *>(E.c_str()));
  Envp.push_back(nullptr);

  pid_t P = -1;
  int RC = posix_spawnp(&P, Args[0], nullptr, nullptr, Args.data(),
                        Envp.data());
  if (RC != 0) {
    SpawnResult SR;
    SR.SpawnErrno = RC;
    Err = SR.describe(Argv[0]);
    return false;
  }
  Pid = P;
  return true;
}

void DaemonProcess::reapNow(int Status) {
  Exited = true;
  if (WIFEXITED(Status))
    ExitCode = WEXITSTATUS(Status);
  else if (WIFSIGNALED(Status))
    ExitCode = 128 + WTERMSIG(Status);
  else
    ExitCode = -1;
}

bool DaemonProcess::alive() {
  if (Pid <= 0 || Exited)
    return false;
  int Status = 0;
  pid_t W = ::waitpid(Pid, &Status, WNOHANG);
  if (W == Pid) {
    reapNow(Status);
    return false;
  }
  if (W < 0 && errno != EINTR) {
    // ECHILD: someone else reaped it; treat as exited with unknown status.
    Exited = true;
    return false;
  }
  return true;
}

void DaemonProcess::terminate(int Sig) {
  if (Pid > 0 && !Exited)
    ::kill(Pid, Sig);
}

int DaemonProcess::waitExit(int TimeoutMs) {
  if (Pid <= 0)
    return -1;
  if (Exited)
    return ExitCode;
  int Waited = 0;
  for (;;) {
    int Status = 0;
    pid_t W = ::waitpid(Pid, &Status, WNOHANG);
    if (W == Pid) {
      reapNow(Status);
      return ExitCode;
    }
    if (W < 0 && errno != EINTR) {
      Exited = true;
      return ExitCode;
    }
    if (Waited >= TimeoutMs)
      return -1;
    ::usleep(10 * 1000);
    Waited += 10;
  }
}
