#include "support/Trace.h"

#include "support/Telemetry.h"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace terracpp;
using namespace terracpp::trace;

/// Chrome's tid field is a plain integer; fold the opaque std::thread::id
/// into one. Collisions would merely merge two flame rows.
static uint32_t currentTid() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffff);
}

static void flushGlobalAtExit() { Recorder::global().flush(); }

Recorder::Recorder() : BaseUs(telemetry::nowMicros()) {}

void Recorder::enable(std::string Path) {
  {
    std::lock_guard<std::mutex> Lock(M);
    OutPath = std::move(Path);
  }
  Enabled.store(true, std::memory_order_release);
}

uint64_t Recorder::nowUs() const {
  return telemetry::nowMicros() - BaseUs;
}

void Recorder::add(Event E) {
  E.Tid = currentTid();
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void Recorder::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Events.clear();
}

size_t Recorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

json::Value Recorder::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Root = json::Value::object();
  json::Value Arr = json::Value::array();
  double Pid = static_cast<double>(::getpid());
  for (const Event &E : Events) {
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(E.Name));
    V.set("cat", json::Value::string(E.Category.empty() ? "terracpp"
                                                        : E.Category));
    V.set("ph", json::Value::string("X"));
    V.set("ts", json::Value::number(static_cast<double>(E.StartUs)));
    V.set("dur", json::Value::number(static_cast<double>(E.DurUs)));
    V.set("pid", json::Value::number(Pid));
    V.set("tid", json::Value::number(static_cast<double>(E.Tid)));
    if (!E.Args.empty()) {
      json::Value Args = json::Value::object();
      for (const auto &A : E.Args)
        Args.set(A.first, json::Value::string(A.second));
      V.set("args", std::move(Args));
    }
    Arr.push(std::move(V));
  }
  Root.set("traceEvents", std::move(Arr));
  Root.set("displayTimeUnit", json::Value::string("ms"));
  return Root;
}

bool Recorder::write(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << toJson().dump() << "\n";
  return static_cast<bool>(Out);
}

bool Recorder::flush() const {
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(M);
    Path = OutPath;
  }
  if (Path.empty())
    return false;
  return write(Path);
}

Recorder &Recorder::global() {
  static Recorder *G = [] {
    auto *R = new Recorder();
    if (const char *Env = getenv("TERRACPP_TRACE")) {
      if (*Env) {
        R->enable(Env);
        ::atexit(flushGlobalAtExit);
      }
    }
    return R;
  }();
  return *G;
}
