#include "support/Trace.h"

#include "support/Telemetry.h"

#include <cstdlib>
#include <fstream>
#include <functional>
#include <thread>
#include <unistd.h>

using namespace terracpp;
using namespace terracpp::trace;

/// Chrome's tid field is a plain integer; fold the opaque std::thread::id
/// into one. Collisions would merely merge two flame rows.
static uint32_t currentTid() {
  return static_cast<uint32_t>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) & 0x7fffffff);
}

static void flushGlobalAtExit() { Recorder::global().flush(); }

uint64_t trace::nextSpanId() {
  // Starts at 1: span id 0 means "no span" everywhere.
  static std::atomic<uint64_t> Next{1};
  return Next.fetch_add(1, std::memory_order_relaxed);
}

std::string trace::spanRef(uint64_t SpanId) {
  // One process-wide prefix; a getpid() syscall per span would be
  // measurable on the warm request path.
  static const std::string PidPrefix = std::to_string(::getpid()) + "-";
  return PidPrefix + std::to_string(SpanId);
}

ThreadContext &trace::threadContext() {
  thread_local ThreadContext TC;
  return TC;
}

Recorder::Recorder() : BaseUs(telemetry::nowMicros()) {}

void Recorder::enable(std::string Path) {
  {
    std::lock_guard<std::mutex> Lock(M);
    OutPath = std::move(Path);
  }
  Enabled.store(true, std::memory_order_release);
}

uint64_t Recorder::nowUs() const {
  return telemetry::nowMicros() - BaseUs;
}

void Recorder::add(Event E) {
  E.Tid = currentTid();
  std::lock_guard<std::mutex> Lock(M);
  Events.push_back(std::move(E));
}

void Recorder::addInterval(const char *Name, const char *Category,
                           uint64_t AbsStartUs, uint64_t AbsEndUs) {
  if (!enabled())
    return;
  Event E;
  E.Name = Name;
  E.Category = Category;
  E.StartUs = AbsStartUs > BaseUs ? AbsStartUs - BaseUs : 0;
  E.DurUs = AbsEndUs > AbsStartUs ? AbsEndUs - AbsStartUs : 0;
  E.SpanId = nextSpanId();
  ThreadContext &TC = threadContext();
  E.ParentSpan = TC.CurrentSpan;
  if (!E.ParentSpan)
    E.RemoteParent = TC.RemoteParent;
  E.TraceId = TC.TraceId;
  add(std::move(E));
}

void Recorder::clear() {
  std::lock_guard<std::mutex> Lock(M);
  Events.clear();
}

size_t Recorder::eventCount() const {
  std::lock_guard<std::mutex> Lock(M);
  return Events.size();
}

void Recorder::setProcessName(std::string Name) {
  std::lock_guard<std::mutex> Lock(M);
  ProcessName = std::move(Name);
}

std::string Recorder::processName() const {
  std::lock_guard<std::mutex> Lock(M);
  return ProcessName;
}

/// Shared arg encoding: span identity, parentage, trace id, user args.
static void setEventArgs(json::Value &V, const Recorder::Event &E) {
  if (E.SpanId == 0 && E.TraceId.empty() && E.Args.empty())
    return;
  json::Value Args = json::Value::object();
  if (E.SpanId)
    Args.set("span", json::Value::string(spanRef(E.SpanId)));
  if (!E.RemoteParent.empty())
    Args.set("parent", json::Value::string(E.RemoteParent));
  else if (E.ParentSpan)
    Args.set("parent", json::Value::string(spanRef(E.ParentSpan)));
  if (!E.TraceId.empty())
    Args.set("trace_id", json::Value::string(E.TraceId));
  for (const auto &A : E.Args)
    Args.set(A.first, json::Value::string(A.second));
  V.set("args", std::move(Args));
}

json::Value Recorder::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Root = json::Value::object();
  json::Value Arr = json::Value::array();
  double Pid = static_cast<double>(::getpid());
  if (!ProcessName.empty()) {
    // Perfetto process-lane label.
    json::Value Meta = json::Value::object();
    Meta.set("name", json::Value::string("process_name"));
    Meta.set("ph", json::Value::string("M"));
    Meta.set("pid", json::Value::number(Pid));
    json::Value MArgs = json::Value::object();
    MArgs.set("name", json::Value::string(ProcessName));
    Meta.set("args", std::move(MArgs));
    Arr.push(std::move(Meta));
  }
  for (const Event &E : Events) {
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(E.Name));
    V.set("cat", json::Value::string(E.Category.empty() ? "terracpp"
                                                        : E.Category));
    V.set("ph", json::Value::string("X"));
    V.set("ts", json::Value::number(static_cast<double>(E.StartUs)));
    V.set("dur", json::Value::number(static_cast<double>(E.DurUs)));
    V.set("pid", json::Value::number(Pid));
    V.set("tid", json::Value::number(static_cast<double>(E.Tid)));
    setEventArgs(V, E);
    Arr.push(std::move(V));
  }
  Root.set("traceEvents", std::move(Arr));
  Root.set("displayTimeUnit", json::Value::string("ms"));
  return Root;
}

json::Value Recorder::dumpAbsolute() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Root = json::Value::object();
  Root.set("pid", json::Value::number(static_cast<double>(::getpid())));
  Root.set("process_name", json::Value::string(ProcessName));
  Root.set("clock_us",
           json::Value::number(static_cast<double>(telemetry::nowMicros())));
  json::Value Arr = json::Value::array();
  for (const Event &E : Events) {
    json::Value V = json::Value::object();
    V.set("name", json::Value::string(E.Name));
    V.set("cat", json::Value::string(E.Category.empty() ? "terracpp"
                                                        : E.Category));
    V.set("ts", json::Value::number(static_cast<double>(BaseUs + E.StartUs)));
    V.set("dur", json::Value::number(static_cast<double>(E.DurUs)));
    V.set("tid", json::Value::number(static_cast<double>(E.Tid)));
    setEventArgs(V, E);
    Arr.push(std::move(V));
  }
  Root.set("events", std::move(Arr));
  return Root;
}

bool Recorder::write(const std::string &Path) const {
  std::ofstream Out(Path, std::ios::trunc);
  if (!Out)
    return false;
  Out << toJson().dump() << "\n";
  return static_cast<bool>(Out);
}

bool Recorder::flush() const {
  std::string Path;
  {
    std::lock_guard<std::mutex> Lock(M);
    Path = OutPath;
  }
  if (Path.empty())
    return false;
  return write(Path);
}

Recorder &Recorder::global() {
  static Recorder *G = [] {
    auto *R = new Recorder();
    if (const char *Env = getenv("TERRACPP_TRACE")) {
      if (*Env) {
        // "-" records in memory without a file: the fleet router spawns
        // shards this way and pulls their buffers with trace_dump.
        R->enable(std::string(Env) == "-" ? std::string() : Env);
        ::atexit(flushGlobalAtExit);
      }
    }
    return R;
  }();
  return *G;
}
