//===- ThreadPool.h - Fixed-size worker pool --------------------*- C++ -*-===//
//
// A minimal task pool for the parallel compilation pipeline: the JIT
// enqueues one C-compiler invocation per generated module and joins on a
// per-batch Latch. Tasks are plain std::function<void()>; error reporting
// happens through state captured by the task itself (the project builds
// with -fno-exceptions, so nothing propagates out of a worker).
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_THREADPOOL_H
#define TERRACPP_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace terracpp {

/// Counts down to zero; wait() blocks until every registered task called
/// done(). Used to join one batch without draining the whole pool (two
/// engines may share a process and batch independently).
class Latch {
public:
  explicit Latch(size_t Count) : Count(Count) {}

  void done() {
    std::lock_guard<std::mutex> Lock(M);
    if (Count > 0 && --Count == 0)
      CV.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> Lock(M);
    CV.wait(Lock, [&] { return Count == 0; });
  }

private:
  std::mutex M;
  std::condition_variable CV;
  size_t Count;
};

class ThreadPool {
public:
  /// Spawns \p Threads workers (at least one). Every task's queue-wait and
  /// run time land in the global telemetry registry
  /// (threadpool.queue_wait_us / threadpool.task_run_us).
  explicit ThreadPool(unsigned Threads);

  /// Signals shutdown and joins the workers. Queued-but-unstarted tasks are
  /// discarded, so callers must join their batches (Latch) before
  /// destroying the pool.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  void enqueue(std::function<void()> Task);

  unsigned threadCount() const { return static_cast<unsigned>(Workers.size()); }

  /// Tasks enqueued but not yet picked up by a worker.
  size_t queuedTasks();

private:
  void workerLoop();

  struct QueuedTask {
    std::function<void()> Fn;
    uint64_t EnqueuedUs; ///< telemetry::nowMicros() at enqueue.
  };

  std::mutex M;
  std::condition_variable CV;
  std::deque<QueuedTask> Queue;
  bool Stop = false;
  std::vector<std::thread> Workers;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_THREADPOOL_H
