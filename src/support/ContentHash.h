//===- ContentHash.h - Streaming FNV-1a content hashing ---------*- C++ -*-===//
//
// A 64-bit FNV-1a hasher used to content-address compilation artifacts:
// the JIT's persistent cache keys modules by hash(C source + flags +
// compiler identity) so identical specializations reuse a cached shared
// object. FNV-1a is not cryptographic; a collision costs a wrong cache hit,
// which the loader detects only if the .so fails to load, so keys should
// always include every input that affects the artifact.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_CONTENTHASH_H
#define TERRACPP_SUPPORT_CONTENTHASH_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace terracpp {

class ContentHash {
public:
  ContentHash &update(const void *Data, size_t Len) {
    const auto *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I != Len; ++I) {
      H ^= P[I];
      H *= 0x100000001b3ull;
    }
    return *this;
  }

  ContentHash &update(std::string_view S) { return update(S.data(), S.size()); }

  /// Hashes the length before the bytes so concatenation points are
  /// unambiguous ("ab"+"c" != "a"+"bc").
  ContentHash &updateField(std::string_view S) {
    uint64_t N = S.size();
    update(&N, sizeof(N));
    return update(S);
  }

  uint64_t value() const { return H; }

  /// 16 lowercase hex digits — stable filename for the cache entry.
  std::string hex() const {
    static const char Digits[] = "0123456789abcdef";
    std::string Out(16, '0');
    uint64_t V = H;
    for (int I = 15; I >= 0; --I, V >>= 4)
      Out[static_cast<size_t>(I)] = Digits[V & 0xf];
    return Out;
  }

private:
  uint64_t H = 0xcbf29ce484222325ull;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_CONTENTHASH_H
