//===- SourceLoc.h - Source locations and buffers ---------------*- C++ -*-===//
//
// Source locations for diagnostics. A SourceLoc names a buffer (by id), a
// 1-based line, and a 1-based column. The SourceManager owns buffer contents
// so diagnostics can print the offending line.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_SOURCELOC_H
#define TERRACPP_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>
#include <vector>

namespace terracpp {

/// A position in a source buffer. Line/column are 1-based; 0 means unknown.
struct SourceLoc {
  uint32_t BufferId = 0;
  uint32_t Line = 0;
  uint32_t Column = 0;

  bool isValid() const { return Line != 0; }
  static SourceLoc unknown() { return SourceLoc(); }
};

/// Owns source buffers and maps buffer ids back to names and contents.
class SourceManager {
public:
  /// Registers a buffer and returns its id (ids start at 1).
  uint32_t addBuffer(std::string Name, std::string Contents);

  const std::string &bufferName(uint32_t Id) const;
  const std::string &bufferContents(uint32_t Id) const;

  /// Returns the text of line \p Line (1-based) in buffer \p Id, without the
  /// trailing newline. Returns an empty string for out-of-range requests.
  std::string lineText(uint32_t Id, uint32_t Line) const;

private:
  struct Buffer {
    std::string Name;
    std::string Contents;
  };
  std::vector<Buffer> Buffers;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_SOURCELOC_H
