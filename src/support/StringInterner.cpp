#include "support/StringInterner.h"

using namespace terracpp;

const std::string *StringInterner::intern(std::string_view S) {
  auto It = Pool.emplace(S).first;
  return &*It;
}
