//===- Arena.h - Bump-pointer allocation ------------------------*- C++ -*-===//
//
// A simple bump-pointer arena. ASTs, types, and IR nodes in terracpp are
// allocated in arenas owned by their context object and are never
// individually freed; destructors of arena-allocated objects are not run, so
// such objects must be trivially destructible or hold only arena-allocated
// state.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_ARENA_H
#define TERRACPP_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace terracpp {

/// Bump-pointer allocator backed by geometrically growing slabs.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align);

  /// Allocates and constructs a T in the arena. T's destructor never runs.
  template <typename T, typename... Args> T *create(Args &&...CtorArgs) {
    void *Mem = allocate(sizeof(T), alignof(T));
    return new (Mem) T(std::forward<Args>(CtorArgs)...);
  }

  /// Copies \p Count objects of trivially-copyable T into the arena and
  /// returns the new array (null when Count is zero).
  template <typename T> T *copyArray(const T *Data, size_t Count) {
    if (Count == 0)
      return nullptr;
    T *Mem = static_cast<T *>(allocate(sizeof(T) * Count, alignof(T)));
    for (size_t I = 0; I != Count; ++I)
      new (Mem + I) T(Data[I]);
    return Mem;
  }

  /// Total bytes handed out, for statistics.
  size_t bytesAllocated() const { return BytesAllocated; }

private:
  void addSlab(size_t MinSize);

  static constexpr size_t DefaultSlabSize = 64 * 1024;

  std::vector<std::unique_ptr<char[]>> Slabs;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t NextSlabSize = DefaultSlabSize;
  size_t BytesAllocated = 0;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_ARENA_H
