#include "support/Log.h"

#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace terracpp;
using namespace terracpp::logging;

static std::atomic<int> GLevel{static_cast<int>(Level::Info)};
static std::atomic<bool> GJson{false};

void logging::setLevel(Level L) {
  GLevel.store(static_cast<int>(L), std::memory_order_relaxed);
}

Level logging::level() {
  return static_cast<Level>(GLevel.load(std::memory_order_relaxed));
}

void logging::setJsonOutput(bool Json) {
  GJson.store(Json, std::memory_order_relaxed);
}

bool logging::jsonOutput() { return GJson.load(std::memory_order_relaxed); }

bool logging::parseLevel(const std::string &S, Level &Out) {
  if (S == "debug")
    Out = Level::Debug;
  else if (S == "info")
    Out = Level::Info;
  else if (S == "warn")
    Out = Level::Warn;
  else if (S == "error")
    Out = Level::Error;
  else if (S == "off")
    Out = Level::Off;
  else
    return false;
  return true;
}

void logging::configureFromEnv() {
  if (const char *Env = getenv("TERRAD_LOG_LEVEL")) {
    Level L;
    if (parseLevel(Env, L))
      setLevel(L);
  }
  if (const char *Env = getenv("TERRAD_LOG_JSON"))
    setJsonOutput(*Env && std::string(Env) != "0");
}

bool logging::enabled(Level L) {
  return static_cast<int>(L) >= GLevel.load(std::memory_order_relaxed) &&
         level() != Level::Off;
}

static const char *levelName(Level L) {
  switch (L) {
  case Level::Debug:
    return "debug";
  case Level::Info:
    return "info";
  case Level::Warn:
    return "warn";
  case Level::Error:
    return "error";
  case Level::Off:
    return "off";
  }
  return "?";
}

void logging::emit(
    Level L, const std::string &Event,
    std::initializer_list<std::pair<const char *, std::string>> Fields) {
  if (!enabled(L))
    return;
  std::string Line;
  if (jsonOutput()) {
    double Ts = std::chrono::duration<double>(
                    std::chrono::system_clock::now().time_since_epoch())
                    .count();
    char TsBuf[32];
    snprintf(TsBuf, sizeof(TsBuf), "%.3f", Ts);
    Line = "{\"ts\":";
    Line += TsBuf;
    Line += ",\"level\":\"";
    Line += levelName(L);
    Line += "\",\"event\":\"";
    Line += json::escape(Event);
    Line += "\"";
    for (const auto &F : Fields) {
      Line += ",\"";
      Line += json::escape(F.first);
      Line += "\":\"";
      Line += json::escape(F.second);
      Line += "\"";
    }
    Line += "}";
  } else {
    Line = "[";
    Line += levelName(L);
    Line += "] ";
    Line += Event;
    for (const auto &F : Fields) {
      Line += " ";
      Line += F.first;
      Line += "=\"";
      Line += F.second;
      Line += "\"";
    }
  }
  fprintf(stderr, "%s\n", Line.c_str());
}
