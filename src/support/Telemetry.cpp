#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace terracpp;
using namespace terracpp::telemetry;

uint64_t telemetry::nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketIndex(uint64_t Value) {
  if (Value < 4)
    return static_cast<unsigned>(Value);
  // Most significant bit position (>= 2 here), then the next two bits pick
  // one of four sub-buckets inside the octave.
  unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(Value));
  unsigned Sub = static_cast<unsigned>((Value >> (Msb - 2)) & 3);
  return 4 + (Msb - 2) * 4 + Sub;
}

uint64_t Histogram::bucketLowerBound(unsigned Index) {
  if (Index < 4)
    return Index;
  unsigned Msb = 2 + (Index - 4) / 4;
  unsigned Sub = (Index - 4) % 4;
  return (uint64_t(1) << (Msb - 2)) * (4 + Sub);
}

void Histogram::record(uint64_t Value) {
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Cur = MinV.load(std::memory_order_relaxed);
  while (Value < Cur &&
         !MinV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
  Cur = MaxV.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !MaxV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  uint64_t Counts[NumBuckets];
  for (unsigned I = 0; I != NumBuckets; ++I)
    Counts[I] = Buckets[I].load(std::memory_order_relaxed);
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  uint64_t Mn = MinV.load(std::memory_order_relaxed);
  S.Min = Mn == UINT64_MAX ? 0 : Mn;
  S.Max = MaxV.load(std::memory_order_relaxed);
  if (S.Count == 0)
    return S;
  S.Mean = static_cast<double>(S.Sum) / static_cast<double>(S.Count);

  // Derive each quantile by walking the buckets to the target rank and
  // interpolating linearly inside the landing bucket. Clamp to the
  // observed min/max so degenerate single-bucket distributions report
  // exact values.
  auto Quantile = [&](double Q) {
    // Nearest-rank: the smallest value with at least ceil(Q*Count) samples
    // at or below it, so e.g. p95 of 4 samples is the 4th, not the 3rd.
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(Q * static_cast<double>(S.Count)));
    Rank = std::min(std::max<uint64_t>(Rank, 1), S.Count);
    uint64_t Cum = 0;
    for (unsigned I = 0; I != NumBuckets; ++I) {
      if (Counts[I] == 0)
        continue;
      if (Cum + Counts[I] >= Rank) {
        uint64_t Lo = bucketLowerBound(I);
        uint64_t Hi = I + 1 < NumBuckets ? bucketLowerBound(I + 1) : UINT64_MAX;
        double Frac = static_cast<double>(Rank - Cum) /
                      static_cast<double>(Counts[I]);
        double V = static_cast<double>(Lo) +
                   Frac * static_cast<double>(Hi - Lo);
        V = std::max(V, static_cast<double>(S.Min));
        V = std::min(V, static_cast<double>(S.Max));
        return V;
      }
      Cum += Counts[I];
    }
    return static_cast<double>(S.Max);
  };
  S.P50 = Quantile(0.50);
  S.P90 = Quantile(0.90);
  S.P95 = Quantile(0.95);
  S.P99 = Quantile(0.99);
  return S;
}

std::vector<std::pair<uint64_t, uint64_t>> Histogram::cumulativeBuckets() const {
  std::vector<std::pair<uint64_t, uint64_t>> Out;
  uint64_t Cum = 0;
  for (unsigned I = 0; I != NumBuckets; ++I) {
    uint64_t C = Buckets[I].load(std::memory_order_relaxed);
    if (C == 0)
      continue;
    Cum += C;
    // Bucket I holds integer values in [lowerBound(I), lowerBound(I+1));
    // its inclusive Prometheus `le` bound is therefore lowerBound(I+1)-1.
    // The last bucket's bound is +Inf, which callers emit from Count.
    uint64_t Le =
        I + 1 < NumBuckets ? bucketLowerBound(I + 1) - 1 : UINT64_MAX;
    Out.emplace_back(Le, Cum);
  }
  return Out;
}

json::Value Histogram::Snapshot::toJson() const {
  json::Value V = json::Value::object();
  auto N = [](double X) { return json::Value::number(X); };
  V.set("count", N(static_cast<double>(Count)));
  V.set("sum", N(static_cast<double>(Sum)));
  V.set("min", N(static_cast<double>(Min)));
  V.set("max", N(static_cast<double>(Max)));
  V.set("mean", N(Mean));
  V.set("p50", N(P50));
  V.set("p90", N(P90));
  V.set("p95", N(P95));
  V.set("p99", N(P99));
  return V;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Counter> &C = Counters[Name];
  if (!C)
    C = std::make_unique<Counter>();
  return *C;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Gauge> &G = Gauges[Name];
  if (!G)
    G = std::make_unique<Gauge>();
  return *G;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Histogram> &H = Histograms[Name];
  if (!H)
    H = std::make_unique<Histogram>();
  return *H;
}

json::Value Registry::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Root = json::Value::object();
  json::Value Cs = json::Value::object();
  for (const auto &E : Counters)
    Cs.set(E.first,
           json::Value::number(static_cast<double>(E.second->value())));
  json::Value Gs = json::Value::object();
  for (const auto &E : Gauges)
    Gs.set(E.first,
           json::Value::number(static_cast<double>(E.second->value())));
  json::Value Hs = json::Value::object();
  for (const auto &E : Histograms)
    Hs.set(E.first, E.second->snapshot().toJson());
  Root.set("counters", std::move(Cs));
  Root.set("gauges", std::move(Gs));
  Root.set("histograms", std::move(Hs));
  return Root;
}

Registry &Registry::global() {
  static Registry G;
  return G;
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition (format version 0.0.4)
//===----------------------------------------------------------------------===//

/// Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; dotted registry names
/// ("server.op.call.latency_us") fold their separators into underscores.
static std::string sanitizeMetricName(const std::string &Name) {
  std::string Out;
  Out.reserve(Name.size());
  for (size_t I = 0; I != Name.size(); ++I) {
    char C = Name[I];
    bool OK = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
              C == ':' || (I > 0 && C >= '0' && C <= '9');
    Out.push_back(OK ? C : '_');
  }
  return Out;
}

static void appendEscapedLabelValue(std::string &Out, const std::string &V) {
  for (char C : V) {
    if (C == '\\')
      Out += "\\\\";
    else if (C == '"')
      Out += "\\\"";
    else if (C == '\n')
      Out += "\\n";
    else
      Out.push_back(C);
  }
}

/// Renders {k="v",...}; \p Extra (the histogram `le` label) is appended
/// last when non-empty. Empty when there are no labels at all.
static std::string renderLabels(const std::vector<PromLabel> &Labels,
                                const std::string &ExtraKey = std::string(),
                                const std::string &ExtraVal = std::string()) {
  if (Labels.empty() && ExtraKey.empty())
    return std::string();
  std::string Out = "{";
  bool First = true;
  for (const PromLabel &L : Labels) {
    if (!First)
      Out += ",";
    First = false;
    Out += sanitizeMetricName(L.first);
    Out += "=\"";
    appendEscapedLabelValue(Out, L.second);
    Out += "\"";
  }
  if (!ExtraKey.empty()) {
    if (!First)
      Out += ",";
    Out += ExtraKey;
    Out += "=\"";
    appendEscapedLabelValue(Out, ExtraVal);
    Out += "\"";
  }
  Out += "}";
  return Out;
}

static std::string formatUint(uint64_t V) { return std::to_string(V); }

static std::string formatInt(int64_t V) { return std::to_string(V); }

std::string telemetry::toPrometheusText(const Registry &R,
                                        const std::vector<PromLabel> &Labels,
                                        const std::string &Prefix) {
  std::string Out;
  const std::string LabelStr = renderLabels(Labels);
  R.forEachCounter([&](const std::string &Name, const Counter &C) {
    std::string N = sanitizeMetricName(Prefix + Name);
    Out += "# TYPE " + N + " counter\n";
    Out += N + LabelStr + " " + formatUint(C.value()) + "\n";
  });
  R.forEachGauge([&](const std::string &Name, const Gauge &G) {
    std::string N = sanitizeMetricName(Prefix + Name);
    Out += "# TYPE " + N + " gauge\n";
    Out += N + LabelStr + " " + formatInt(G.value()) + "\n";
  });
  R.forEachHistogram([&](const std::string &Name, const Histogram &H) {
    std::string N = sanitizeMetricName(Prefix + Name);
    Histogram::Snapshot S = H.snapshot();
    Out += "# TYPE " + N + " histogram\n";
    for (const auto &B : H.cumulativeBuckets()) {
      if (B.first == UINT64_MAX)
        continue; // The top bucket folds into +Inf below.
      Out += N + "_bucket" + renderLabels(Labels, "le", formatUint(B.first)) +
             " " + formatUint(B.second) + "\n";
    }
    Out += N + "_bucket" + renderLabels(Labels, "le", "+Inf") + " " +
           formatUint(S.Count) + "\n";
    Out += N + "_sum" + LabelStr + " " + formatUint(S.Sum) + "\n";
    Out += N + "_count" + LabelStr + " " + formatUint(S.Count) + "\n";
  });
  return Out;
}

std::string telemetry::mergeExpositions(const std::vector<std::string> &Parts) {
  // A family's samples must be contiguous and its TYPE line unique, so we
  // regroup by family: each part is already grouped (every sample line
  // follows its family's TYPE header), letting a single pass bucket lines
  // by the most recent header.
  std::vector<std::string> Order;        ///< Families, first-seen order.
  std::map<std::string, std::string> TypeLine; ///< family -> "# TYPE ..." line.
  std::map<std::string, std::string> Body;     ///< family -> sample lines.
  std::string Preamble; ///< Lines before any TYPE header (kept verbatim).

  for (const std::string &Part : Parts) {
    std::istringstream In(Part);
    std::string Line, Family;
    while (std::getline(In, Line)) {
      if (Line.empty())
        continue;
      if (Line.compare(0, 7, "# TYPE ") == 0) {
        size_t NameEnd = Line.find(' ', 7);
        Family = Line.substr(7, NameEnd == std::string::npos
                                    ? std::string::npos
                                    : NameEnd - 7);
        if (!TypeLine.count(Family)) {
          TypeLine[Family] = Line;
          Order.push_back(Family);
        }
        continue;
      }
      if (Line[0] == '#')
        continue; // Drop HELP/comments: families may repeat across parts.
      if (Family.empty())
        Preamble += Line + "\n";
      else
        Body[Family] += Line + "\n";
    }
  }

  std::string Out = Preamble;
  for (const std::string &F : Order) {
    Out += TypeLine[F] + "\n";
    Out += Body[F];
  }
  return Out;
}
