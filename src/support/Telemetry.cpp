#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace terracpp;
using namespace terracpp::telemetry;

uint64_t telemetry::nowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

unsigned Histogram::bucketIndex(uint64_t Value) {
  if (Value < 4)
    return static_cast<unsigned>(Value);
  // Most significant bit position (>= 2 here), then the next two bits pick
  // one of four sub-buckets inside the octave.
  unsigned Msb = 63u - static_cast<unsigned>(__builtin_clzll(Value));
  unsigned Sub = static_cast<unsigned>((Value >> (Msb - 2)) & 3);
  return 4 + (Msb - 2) * 4 + Sub;
}

uint64_t Histogram::bucketLowerBound(unsigned Index) {
  if (Index < 4)
    return Index;
  unsigned Msb = 2 + (Index - 4) / 4;
  unsigned Sub = (Index - 4) % 4;
  return (uint64_t(1) << (Msb - 2)) * (4 + Sub);
}

void Histogram::record(uint64_t Value) {
  Buckets[bucketIndex(Value)].fetch_add(1, std::memory_order_relaxed);
  Count.fetch_add(1, std::memory_order_relaxed);
  Sum.fetch_add(Value, std::memory_order_relaxed);
  uint64_t Cur = MinV.load(std::memory_order_relaxed);
  while (Value < Cur &&
         !MinV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
  Cur = MaxV.load(std::memory_order_relaxed);
  while (Value > Cur &&
         !MaxV.compare_exchange_weak(Cur, Value, std::memory_order_relaxed))
    ;
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot S;
  uint64_t Counts[NumBuckets];
  for (unsigned I = 0; I != NumBuckets; ++I)
    Counts[I] = Buckets[I].load(std::memory_order_relaxed);
  S.Count = Count.load(std::memory_order_relaxed);
  S.Sum = Sum.load(std::memory_order_relaxed);
  uint64_t Mn = MinV.load(std::memory_order_relaxed);
  S.Min = Mn == UINT64_MAX ? 0 : Mn;
  S.Max = MaxV.load(std::memory_order_relaxed);
  if (S.Count == 0)
    return S;
  S.Mean = static_cast<double>(S.Sum) / static_cast<double>(S.Count);

  // Derive each quantile by walking the buckets to the target rank and
  // interpolating linearly inside the landing bucket. Clamp to the
  // observed min/max so degenerate single-bucket distributions report
  // exact values.
  auto Quantile = [&](double Q) {
    // Nearest-rank: the smallest value with at least ceil(Q*Count) samples
    // at or below it, so e.g. p95 of 4 samples is the 4th, not the 3rd.
    uint64_t Rank = static_cast<uint64_t>(
        std::ceil(Q * static_cast<double>(S.Count)));
    Rank = std::min(std::max<uint64_t>(Rank, 1), S.Count);
    uint64_t Cum = 0;
    for (unsigned I = 0; I != NumBuckets; ++I) {
      if (Counts[I] == 0)
        continue;
      if (Cum + Counts[I] >= Rank) {
        uint64_t Lo = bucketLowerBound(I);
        uint64_t Hi = I + 1 < NumBuckets ? bucketLowerBound(I + 1) : UINT64_MAX;
        double Frac = static_cast<double>(Rank - Cum) /
                      static_cast<double>(Counts[I]);
        double V = static_cast<double>(Lo) +
                   Frac * static_cast<double>(Hi - Lo);
        V = std::max(V, static_cast<double>(S.Min));
        V = std::min(V, static_cast<double>(S.Max));
        return V;
      }
      Cum += Counts[I];
    }
    return static_cast<double>(S.Max);
  };
  S.P50 = Quantile(0.50);
  S.P90 = Quantile(0.90);
  S.P95 = Quantile(0.95);
  S.P99 = Quantile(0.99);
  return S;
}

json::Value Histogram::Snapshot::toJson() const {
  json::Value V = json::Value::object();
  auto N = [](double X) { return json::Value::number(X); };
  V.set("count", N(static_cast<double>(Count)));
  V.set("sum", N(static_cast<double>(Sum)));
  V.set("min", N(static_cast<double>(Min)));
  V.set("max", N(static_cast<double>(Max)));
  V.set("mean", N(Mean));
  V.set("p50", N(P50));
  V.set("p90", N(P90));
  V.set("p95", N(P95));
  V.set("p99", N(P99));
  return V;
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

Counter &Registry::counter(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Counter> &C = Counters[Name];
  if (!C)
    C = std::make_unique<Counter>();
  return *C;
}

Gauge &Registry::gauge(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Gauge> &G = Gauges[Name];
  if (!G)
    G = std::make_unique<Gauge>();
  return *G;
}

Histogram &Registry::histogram(const std::string &Name) {
  std::lock_guard<std::mutex> Lock(M);
  std::unique_ptr<Histogram> &H = Histograms[Name];
  if (!H)
    H = std::make_unique<Histogram>();
  return *H;
}

json::Value Registry::toJson() const {
  std::lock_guard<std::mutex> Lock(M);
  json::Value Root = json::Value::object();
  json::Value Cs = json::Value::object();
  for (const auto &E : Counters)
    Cs.set(E.first,
           json::Value::number(static_cast<double>(E.second->value())));
  json::Value Gs = json::Value::object();
  for (const auto &E : Gauges)
    Gs.set(E.first,
           json::Value::number(static_cast<double>(E.second->value())));
  json::Value Hs = json::Value::object();
  for (const auto &E : Histograms)
    Hs.set(E.first, E.second->snapshot().toJson());
  Root.set("counters", std::move(Cs));
  Root.set("gauges", std::move(Gs));
  Root.set("histograms", std::move(Hs));
  return Root;
}

Registry &Registry::global() {
  static Registry G;
  return G;
}
