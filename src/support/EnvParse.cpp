//===- EnvParse.cpp - Validated environment-variable configuration --------===//

#include "support/EnvParse.h"
#include "support/Log.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <set>
#include <string>

using namespace terracpp;

namespace {

/// Warns once per (variable) for the process: repeated Engine constructions
/// in one process (tests, terrad) must not spam the log.
void warnOnce(const char *Name, const char *Value, const char *Why) {
  static std::mutex M;
  static std::set<std::string> Warned;
  std::lock_guard<std::mutex> Lock(M);
  if (!Warned.insert(Name).second)
    return;
  logging::emit(logging::Level::Warn, "env.invalid",
                {{"var", Name}, {"value", Value}, {"why", Why}});
}

} // namespace

uint64_t envcfg::parseUInt(const char *Name, uint64_t Default, uint64_t Min,
                           uint64_t Max) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Default;
  // Reject leading whitespace/signs up front: strtoull accepts "-1" by
  // wrapping it, which is exactly the silent corruption this guards against.
  if (!std::isdigit(static_cast<unsigned char>(*E))) {
    warnOnce(Name, E, "not a decimal number; using default");
    return Default;
  }
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(E, &End, 10);
  if (errno == ERANGE) {
    warnOnce(Name, E, "overflows; using default");
    return Default;
  }
  if (!End || *End != '\0') {
    warnOnce(Name, E, "trailing garbage; using default");
    return Default;
  }
  if (V < Min || V > Max) {
    warnOnce(Name, E, "out of range; using default");
    return Default;
  }
  return V;
}

bool envcfg::parseBool(const char *Name, bool Default) {
  const char *E = std::getenv(Name);
  if (!E || !*E)
    return Default;
  std::string S;
  for (const char *P = E; *P; ++P)
    S += static_cast<char>(std::tolower(static_cast<unsigned char>(*P)));
  if (S == "1" || S == "true" || S == "on" || S == "yes")
    return true;
  if (S == "0" || S == "false" || S == "off" || S == "no")
    return false;
  warnOnce(Name, E, "not a boolean; using default");
  return Default;
}
