#include "support/SourceLoc.h"

#include <cassert>

using namespace terracpp;

uint32_t SourceManager::addBuffer(std::string Name, std::string Contents) {
  Buffers.push_back({std::move(Name), std::move(Contents)});
  return static_cast<uint32_t>(Buffers.size());
}

// Diagnostics can carry a line/column without a registered buffer (e.g.
// synthesized locations); answer those with a placeholder rather than
// indexing out of bounds.
const std::string &SourceManager::bufferName(uint32_t Id) const {
  static const std::string Unknown = "<unknown>";
  if (Id < 1 || Id > Buffers.size())
    return Unknown;
  return Buffers[Id - 1].Name;
}

const std::string &SourceManager::bufferContents(uint32_t Id) const {
  static const std::string Empty;
  if (Id < 1 || Id > Buffers.size())
    return Empty;
  return Buffers[Id - 1].Contents;
}

std::string SourceManager::lineText(uint32_t Id, uint32_t Line) const {
  if (Id < 1 || Id > Buffers.size() || Line == 0)
    return "";
  const std::string &Text = Buffers[Id - 1].Contents;
  size_t Pos = 0;
  for (uint32_t L = 1; L < Line; ++L) {
    Pos = Text.find('\n', Pos);
    if (Pos == std::string::npos)
      return "";
    ++Pos;
  }
  size_t LineEnd = Text.find('\n', Pos);
  if (LineEnd == std::string::npos)
    LineEnd = Text.size();
  return Text.substr(Pos, LineEnd - Pos);
}
