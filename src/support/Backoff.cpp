#include "support/Backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

using namespace terracpp;
using namespace terracpp::backoff;

int Policy::delayForAttempt(unsigned Attempt) const {
  double D = InitialDelayMs;
  for (unsigned I = 0; I != Attempt; ++I) {
    D *= Multiplier;
    if (D >= MaxDelayMs)
      return std::max(0, MaxDelayMs);
  }
  return std::max(0, std::min(static_cast<int>(D), MaxDelayMs));
}

int Policy::totalBudgetMs() const {
  int Total = 0;
  for (unsigned I = 0; I + 1 < MaxAttempts; ++I)
    Total += delayForAttempt(I);
  return Total;
}

bool backoff::retry(const Policy &P, const std::function<bool()> &Try,
                    const std::atomic<bool> *Cancel) {
  unsigned Attempts = std::max(1u, P.MaxAttempts);
  for (unsigned I = 0; I != Attempts; ++I) {
    if (Cancel && Cancel->load(std::memory_order_relaxed))
      return false;
    if (Try())
      return true;
    if (I + 1 == Attempts)
      break;
    // Sleep in short slices so cancellation is responsive even at the top
    // of the schedule.
    int Left = P.delayForAttempt(I);
    while (Left > 0) {
      if (Cancel && Cancel->load(std::memory_order_relaxed))
        return false;
      int Slice = std::min(Left, 10);
      std::this_thread::sleep_for(std::chrono::milliseconds(Slice));
      Left -= Slice;
    }
  }
  return false;
}
