//===- Trace.h - Hierarchical phase tracing (Chrome trace format) -*- C++ -*-===//
//
// A thread-safe span recorder for the staged-compilation pipeline
// (DESIGN.md §8) and the fleet (DESIGN.md §13). Every stage boundary —
// parse, specialize, typecheck, codegen, the cc subprocess, dlopen/link,
// terrad request execution, fleet route hops — opens an RAII TraceSpan;
// completed spans become Chrome trace-event "X" (complete) events, so the
// emitted JSON loads directly in chrome://tracing or Perfetto. Nesting is
// implicit: events on the same thread whose intervals contain each other
// render as a flame graph.
//
// Distributed tracing (PR 8): each span carries a process-unique span id
// and a parent reference. Within a thread, parentage follows TraceSpan
// nesting; across processes, a request's protocol frame carries
// {trace_id, parent_span} and the receiving side installs them with a
// RequestContext, so the shard's server.op span parents to the router's
// route.hop span. Span references are "pid-id" strings, unique across the
// fleet. The `trace_dump` op serializes the in-memory buffer with
// absolute timestamps (dumpAbsolute) so a router can merge per-process
// buffers into one timeline after clock-offset alignment.
//
// Recording is off by default and costs one relaxed atomic load per span
// when disabled. Enable programmatically (terracpp --trace=out.json), or
// with the TERRACPP_TRACE environment variable, which also registers an
// at-exit flush so any process in the tree (tests, benches, terrad) can
// be traced without code changes. TERRACPP_TRACE=- records in memory only
// (no file): the form the fleet router uses for spawned shards it will
// trace_dump over the protocol.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_TRACE_H
#define TERRACPP_SUPPORT_TRACE_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace terracpp {
namespace trace {

/// Allocates a process-unique span id (never 0; 0 means "no span").
uint64_t nextSpanId();

/// The fleet-wide reference form of a span: "<pid>-<id>". This is what the
/// protocol's parent_span member and the trace args carry.
std::string spanRef(uint64_t SpanId);

class Recorder {
public:
  Recorder();

  struct Event {
    std::string Name;
    std::string Category;
    uint64_t StartUs = 0; ///< Relative to the recorder's time base.
    uint64_t DurUs = 0;
    uint32_t Tid = 0;
    uint64_t SpanId = 0;      ///< Process-unique identity (0 = anonymous).
    uint64_t ParentSpan = 0;  ///< Local parent span id (0 = none).
    std::string TraceId;      ///< Request correlation id ("" = none).
    std::string RemoteParent; ///< Cross-process parent ref ("pid-id").
    std::vector<std::pair<std::string, std::string>> Args;
  };

  /// Starts recording. \p OutPath may be empty (in-memory only, written by
  /// an explicit write() call); when set, flush() and the process-exit
  /// hook write there.
  void enable(std::string OutPath);
  void disable() { Enabled.store(false, std::memory_order_release); }
  bool enabled() const { return Enabled.load(std::memory_order_acquire); }

  /// Microseconds since the recorder's time base (process start).
  uint64_t nowUs() const;

  /// The telemetry::nowMicros() value the relative timestamps are measured
  /// from (fixed at construction).
  uint64_t baseUs() const { return BaseUs; }

  void add(Event E);

  /// Records a completed span over an absolute [\p AbsStartUs, \p AbsEndUs)
  /// telemetry::nowMicros() interval, inheriting the calling thread's
  /// propagation context (trace id + parent). Used for intervals measured
  /// outside an RAII scope, e.g. terrad's queue_wait. No-op when disabled.
  void addInterval(const char *Name, const char *Category,
                   uint64_t AbsStartUs, uint64_t AbsEndUs);

  void clear();
  size_t eventCount() const;

  /// Stamps the process lane name emitted as trace metadata ("terrad
  /// /tmp/x.sock", "terrafleet ..."). Also surfaced by dumpAbsolute so a
  /// merging router can label each process's lane.
  void setProcessName(std::string Name);
  std::string processName() const;

  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...}]}
  json::Value toJson() const;

  /// The `trace_dump` payload: {"pid":..,"process_name":..,"clock_us":..,
  /// "events":[{name,cat,ts,dur,tid,span,parent,trace_id,args}...]} where
  /// ts is ABSOLUTE (telemetry::nowMicros clock) so a merger can align
  /// buffers from different processes, and clock_us samples that clock at
  /// dump time for offset estimation cross-checks.
  json::Value dumpAbsolute() const;

  /// Serializes to \p Path; false on I/O failure.
  bool write(const std::string &Path) const;

  /// write() to the enable()-time path, if any. Safe to call repeatedly.
  bool flush() const;

  const std::string &outPath() const { return OutPath; }

  /// The process-wide recorder. Its first use honours TERRACPP_TRACE
  /// (a path, or "-" for in-memory recording without a file).
  static Recorder &global();

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex M;
  std::vector<Event> Events;
  std::string OutPath;
  std::string ProcessName;
  uint64_t BaseUs; ///< Fixed at construction; nowUs() reads it lock-free.
};

/// Per-thread propagation context: the innermost live span (for implicit
/// parentage) plus the request-scope trace id and cross-process parent
/// installed by RequestContext. Only consulted when tracing is enabled.
struct ThreadContext {
  uint64_t CurrentSpan = 0;
  std::string TraceId;
  std::string RemoteParent;
};
ThreadContext &threadContext();

/// RAII request scope: installs {trace_id, parent_span} from an incoming
/// protocol frame on the current thread, so every TraceSpan opened while
/// handling the request is tagged with the trace id and the outermost one
/// parents to the remote span. Restores the previous context (worker
/// threads are pooled and reused across requests) on destruction.
/// Near-free when tracing is off.
class RequestContext {
public:
  RequestContext(const std::string &TraceId, const std::string &RemoteParent)
      : Active(Recorder::global().enabled()) {
    if (Active) {
      ThreadContext &TC = threadContext();
      Saved = TC;
      TC.CurrentSpan = 0;
      TC.TraceId = TraceId;
      TC.RemoteParent = RemoteParent;
    }
  }
  ~RequestContext() {
    if (Active)
      threadContext() = std::move(Saved);
  }
  RequestContext(const RequestContext &) = delete;
  RequestContext &operator=(const RequestContext &) = delete;

private:
  bool Active;
  ThreadContext Saved;
};

/// RAII span: captures the interval from construction to destruction and
/// records it on the global recorder. Near-free when tracing is off.
/// Parentage: the innermost enclosing TraceSpan on this thread; with none,
/// the RequestContext's cross-process parent (if any).
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Category = "terracpp")
      : Active(Recorder::global().enabled()) {
    if (Active) {
      E.Name = Name;
      E.Category = Category;
      E.SpanId = nextSpanId();
      ThreadContext &TC = threadContext();
      SavedParent = TC.CurrentSpan;
      E.ParentSpan = TC.CurrentSpan;
      if (!E.ParentSpan)
        E.RemoteParent = TC.RemoteParent;
      E.TraceId = TC.TraceId;
      TC.CurrentSpan = E.SpanId;
      E.StartUs = Recorder::global().nowUs();
    }
  }
  ~TraceSpan() {
    if (Active) {
      threadContext().CurrentSpan = SavedParent;
      E.DurUs = Recorder::global().nowUs() - E.StartUs;
      Recorder::global().add(std::move(E));
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a key/value argument (shown in the trace viewer's detail
  /// pane). No-op when tracing is off.
  void arg(const char *Key, std::string Value) {
    if (Active)
      E.Args.emplace_back(Key, std::move(Value));
  }

  /// This span's process-unique id (0 when tracing is off) and fleet-wide
  /// reference, for stamping parent_span on outbound protocol frames.
  uint64_t spanId() const { return Active ? E.SpanId : 0; }

private:
  bool Active;
  uint64_t SavedParent = 0;
  Recorder::Event E;
};

} // namespace trace
} // namespace terracpp

#endif // TERRACPP_SUPPORT_TRACE_H
