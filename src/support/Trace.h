//===- Trace.h - Hierarchical phase tracing (Chrome trace format) -*- C++ -*-===//
//
// A thread-safe span recorder for the staged-compilation pipeline
// (DESIGN.md §8). Every stage boundary — parse, specialize, typecheck,
// codegen, the cc subprocess, dlopen/link, terrad request execution —
// opens an RAII TraceSpan; completed spans become Chrome trace-event
// "X" (complete) events, so the emitted JSON loads directly in
// chrome://tracing or Perfetto. Nesting is implicit: events on the same
// thread whose intervals contain each other render as a flame graph.
//
// Recording is off by default and costs one relaxed atomic load per span
// when disabled. Enable programmatically (terracpp --trace=out.json), or
// with the TERRACPP_TRACE environment variable, which also registers an
// at-exit flush so any process in the tree (tests, benches, terrad) can
// be traced without code changes.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_TRACE_H
#define TERRACPP_SUPPORT_TRACE_H

#include "support/Json.h"

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace terracpp {
namespace trace {

class Recorder {
public:
  Recorder();

  struct Event {
    std::string Name;
    std::string Category;
    uint64_t StartUs = 0; ///< Relative to the recorder's time base.
    uint64_t DurUs = 0;
    uint32_t Tid = 0;
    std::vector<std::pair<std::string, std::string>> Args;
  };

  /// Starts recording. \p OutPath may be empty (in-memory only, written by
  /// an explicit write() call); when set, flush() and the process-exit
  /// hook write there.
  void enable(std::string OutPath);
  void disable() { Enabled.store(false, std::memory_order_release); }
  bool enabled() const { return Enabled.load(std::memory_order_acquire); }

  /// Microseconds since the recorder's time base (process start).
  uint64_t nowUs() const;

  void add(Event E);
  void clear();
  size_t eventCount() const;

  /// {"traceEvents":[{"name":...,"ph":"X","ts":...,"dur":...,...}]}
  json::Value toJson() const;

  /// Serializes to \p Path; false on I/O failure.
  bool write(const std::string &Path) const;

  /// write() to the enable()-time path, if any. Safe to call repeatedly.
  bool flush() const;

  const std::string &outPath() const { return OutPath; }

  /// The process-wide recorder. Its first use honours TERRACPP_TRACE.
  static Recorder &global();

private:
  std::atomic<bool> Enabled{false};
  mutable std::mutex M;
  std::vector<Event> Events;
  std::string OutPath;
  uint64_t BaseUs; ///< Fixed at construction; nowUs() reads it lock-free.
};

/// RAII span: captures the interval from construction to destruction and
/// records it on the global recorder. Near-free when tracing is off.
class TraceSpan {
public:
  explicit TraceSpan(const char *Name, const char *Category = "terracpp")
      : Active(Recorder::global().enabled()) {
    if (Active) {
      E.Name = Name;
      E.Category = Category;
      E.StartUs = Recorder::global().nowUs();
    }
  }
  ~TraceSpan() {
    if (Active) {
      E.DurUs = Recorder::global().nowUs() - E.StartUs;
      Recorder::global().add(std::move(E));
    }
  }
  TraceSpan(const TraceSpan &) = delete;
  TraceSpan &operator=(const TraceSpan &) = delete;

  /// Attaches a key/value argument (shown in the trace viewer's detail
  /// pane). No-op when tracing is off.
  void arg(const char *Key, std::string Value) {
    if (Active)
      E.Args.emplace_back(Key, std::move(Value));
  }

private:
  bool Active;
  Recorder::Event E;
};

} // namespace trace
} // namespace terracpp

#endif // TERRACPP_SUPPORT_TRACE_H
