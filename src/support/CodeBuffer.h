//===- CodeBuffer.h - W^X executable code memory --------------------------===//
//
// Owns the executable memory backing the baseline JIT. Pages are mapped
// read-write, filled exactly once, then flipped to read-execute; no page is
// ever writable and executable at the same time, and no page ever goes back
// from RX to RW. Each published function starts on a fresh page so a later
// publish never needs to re-open an already-executable page.
//
// Publication order (the memory-ordering half of the tier-switch argument,
// DESIGN.md §11): publish() completes the mprotect(PROT_READ|PROT_EXEC)
// syscall — a full barrier on every architecture we target — before the
// caller release-stores the entry pointer. A thread that acquire-loads the
// entry therefore observes fully written, executable code.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_CODEBUFFER_H
#define TERRACPP_SUPPORT_CODEBUFFER_H

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace terracpp {

/// Bump allocator over mmap'd regions with a strict W^X lifecycle.
class CodeBuffer {
public:
  CodeBuffer() = default;
  ~CodeBuffer();
  CodeBuffer(const CodeBuffer &) = delete;
  CodeBuffer &operator=(const CodeBuffer &) = delete;

  /// Copies \p Code into fresh pages and makes them executable. Returns the
  /// entry address, or null if mapping/protecting failed (caller falls back
  /// to the interpreter). Thread-safe.
  void *publish(const uint8_t *Code, size_t Size);

  /// Total bytes of machine code published (live gauge for telemetry).
  size_t bytesPublished() const;

private:
  struct Region {
    uint8_t *Base = nullptr;
    size_t Size = 0;   ///< Mapped bytes.
    size_t Used = 0;   ///< Bump offset; page-aligned after every publish.
  };

  Region *regionFor(size_t Size); ///< Requires Mutex held.

  mutable std::mutex Mutex;
  std::vector<Region> Regions;
  size_t Published = 0;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_CODEBUFFER_H
