//===- Backoff.h - Bounded retry with exponential backoff -------*- C++ -*-===//
//
// Shared retry helper for everything in the serving stack that races a
// resource coming up: a client connecting to a terrad socket that the
// daemon has not bound yet, the fleet router re-attaching to a shard that
// died and is being respawned, a health check waiting for a subprocess to
// start listening. One policy type keeps the knobs (attempts, delays,
// growth factor) consistent across call sites instead of every subsystem
// inventing its own sleep loop.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_BACKOFF_H
#define TERRACPP_SUPPORT_BACKOFF_H

#include <atomic>
#include <functional>

namespace terracpp {
namespace backoff {

/// Exponential backoff schedule: attempt N sleeps
/// min(InitialDelayMs * Multiplier^N, MaxDelayMs) before retrying, for at
/// most MaxAttempts total tries.
struct Policy {
  unsigned MaxAttempts = 1;  ///< Total tries (1 = no retry).
  int InitialDelayMs = 20;
  int MaxDelayMs = 1000;
  double Multiplier = 2.0;

  /// Delay to sleep after failed attempt \p Attempt (0-based), clamped to
  /// [0, MaxDelayMs].
  int delayForAttempt(unsigned Attempt) const;

  /// Sum of every inter-attempt delay: the worst-case time retry() can
  /// spend sleeping.
  int totalBudgetMs() const;
};

/// Runs \p Try up to Policy::MaxAttempts times, sleeping the schedule
/// between failures. Returns true as soon as \p Try does. \p Cancel, when
/// non-null, is polled between attempts (and in 10 ms slices during the
/// sleeps) so a shutting-down owner does not wait out the full schedule.
bool retry(const Policy &P, const std::function<bool()> &Try,
           const std::atomic<bool> *Cancel = nullptr);

} // namespace backoff
} // namespace terracpp

#endif // TERRACPP_SUPPORT_BACKOFF_H
