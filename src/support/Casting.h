//===- Casting.h - isa/cast/dyn_cast templates ------------------*- C++ -*-===//
//
// LLVM-style casting machinery for terracpp. Class hierarchies in this
// project do not use C++ RTTI; instead each polymorphic hierarchy exposes a
// kind enumeration and a static `classof(const Base *)` predicate on every
// subclass. These templates provide checked downcasts in terms of `classof`.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_CASTING_H
#define TERRACPP_SUPPORT_CASTING_H

#include <cassert>
#include <type_traits>

namespace terracpp {

/// Returns true if \p Val is an instance of type To.
template <typename To, typename From> bool isa(const From *Val) {
  assert(Val && "isa<> used on a null pointer");
  return To::classof(Val);
}

/// Checked downcast: asserts that \p Val is an instance of To.
template <typename To, typename From> To *cast(From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<To *>(Val);
}

template <typename To, typename From> const To *cast(const From *Val) {
  assert(isa<To>(Val) && "cast<> argument of incompatible type");
  return static_cast<const To *>(Val);
}

/// Downcast that returns null when \p Val is not an instance of To.
template <typename To, typename From> To *dyn_cast(From *Val) {
  return isa<To>(Val) ? static_cast<To *>(Val) : nullptr;
}

template <typename To, typename From> const To *dyn_cast(const From *Val) {
  return isa<To>(Val) ? static_cast<const To *>(Val) : nullptr;
}

/// dyn_cast that tolerates null inputs.
template <typename To, typename From> To *dyn_cast_or_null(From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

template <typename To, typename From>
const To *dyn_cast_or_null(const From *Val) {
  return Val ? dyn_cast<To>(Val) : nullptr;
}

} // namespace terracpp

#endif // TERRACPP_SUPPORT_CASTING_H
