#include "support/Diagnostics.h"

#include <cstdio>
#include <sstream>

using namespace terracpp;

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  report(DiagKind::Error, Loc, std::move(Message));
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  report(DiagKind::Warning, Loc, std::move(Message));
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  report(DiagKind::Note, Loc, std::move(Message));
}

void DiagnosticEngine::error(const char *Code, SourceLoc Loc,
                             std::string Message) {
  report(DiagKind::Error, Loc, std::move(Message), Code);
}

void DiagnosticEngine::warning(const char *Code, SourceLoc Loc,
                               std::string Message) {
  report(DiagKind::Warning, Loc, std::move(Message), Code);
}

std::string DiagnosticEngine::dedupKey(const std::string &Code,
                                       SourceLoc Loc) {
  return Code + "@" + std::to_string(Loc.BufferId) + ":" +
         std::to_string(Loc.Line) + ":" + std::to_string(Loc.Column);
}

void DiagnosticEngine::report(DiagKind Kind, SourceLoc Loc,
                              std::string Message, const char *Code) {
  if (Code && !SeenCoded.insert(dedupKey(Code, Loc)).second)
    return; // Same coded finding at the same location was already reported.

  if (Kind == DiagKind::Error) {
    ++NumErrors;
    if (MaxErrors && NumErrors > MaxErrors) {
      if (!ErrorLimitNoted) {
        ErrorLimitNoted = true;
        Diags.push_back({DiagKind::Note, SourceLoc(),
                         "too many errors emitted; further errors "
                         "suppressed",
                         ""});
      }
      if (Code)
        SeenCoded.erase(dedupKey(Code, Loc));
      return;
    }
  } else if (Kind == DiagKind::Warning) {
    ++NumWarnings;
    if (MaxWarnings && NumWarnings > MaxWarnings) {
      if (!WarningLimitNoted) {
        WarningLimitNoted = true;
        Diags.push_back({DiagKind::Note, SourceLoc(),
                         "too many warnings emitted; further warnings "
                         "suppressed",
                         ""});
      }
      if (Code)
        SeenCoded.erase(dedupKey(Code, Loc));
      return;
    }
  }

  Diags.push_back({Kind, Loc, std::move(Message), Code ? Code : ""});
  if (PrintToStderr)
    fprintf(stderr, "%s\n", render(Diags.back()).c_str());
}

std::string DiagnosticEngine::render(const Diagnostic &D) const {
  std::ostringstream OS;
  if (D.Loc.isValid() && SM) {
    OS << SM->bufferName(D.Loc.BufferId) << ":" << D.Loc.Line << ":"
       << D.Loc.Column << ": ";
  } else if (D.Loc.isValid()) {
    OS << "<buffer " << D.Loc.BufferId << ">:" << D.Loc.Line << ":"
       << D.Loc.Column << ": ";
  }
  switch (D.Kind) {
  case DiagKind::Error:
    OS << "error: ";
    break;
  case DiagKind::Warning:
    OS << "warning: ";
    break;
  case DiagKind::Note:
    OS << "note: ";
    break;
  }
  OS << D.Message;
  if (!D.Code.empty())
    OS << " [" << D.Code << "]";
  if (D.Loc.isValid() && SM) {
    std::string Line = SM->lineText(D.Loc.BufferId, D.Loc.Line);
    if (!Line.empty()) {
      OS << "\n  " << Line << "\n  ";
      for (uint32_t I = 1; I < D.Loc.Column; ++I)
        OS << ' ';
      OS << '^';
    }
  }
  return OS.str();
}

std::string DiagnosticEngine::renderAll() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += render(D);
    Out += '\n';
  }
  return Out;
}
