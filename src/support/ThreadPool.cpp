#include "support/ThreadPool.h"

#include "support/Telemetry.h"

using namespace terracpp;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back({std::move(Task), telemetry::nowMicros()});
  }
  CV.notify_one();
}

size_t ThreadPool::queuedTasks() {
  std::lock_guard<std::mutex> Lock(M);
  return Queue.size();
}

void ThreadPool::workerLoop() {
  // Resolve the histograms once per worker; record() is lock-free.
  telemetry::Registry &Reg = telemetry::Registry::global();
  telemetry::Histogram &QueueWait = Reg.histogram("threadpool.queue_wait_us");
  telemetry::Histogram &TaskRun = Reg.histogram("threadpool.task_run_us");
  for (;;) {
    QueuedTask Task;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [&] { return Stop || !Queue.empty(); });
      if (Stop)
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    uint64_t StartUs = telemetry::nowMicros();
    QueueWait.record(StartUs - Task.EnqueuedUs);
    Task.Fn();
    TaskRun.record(telemetry::nowMicros() - StartUs);
  }
}
