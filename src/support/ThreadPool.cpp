#include "support/ThreadPool.h"

using namespace terracpp;

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = 1;
  Workers.reserve(Threads);
  for (unsigned I = 0; I != Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Stop = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::enqueue(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Lock(M);
    Queue.push_back(std::move(Task));
  }
  CV.notify_one();
}

size_t ThreadPool::queuedTasks() {
  std::lock_guard<std::mutex> Lock(M);
  return Queue.size();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(M);
      CV.wait(Lock, [&] { return Stop || !Queue.empty(); });
      if (Stop)
        return;
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task();
  }
}
