//===- StringInterner.h - Unique'd strings ----------------------*- C++ -*-===//
//
// Interns strings so identifiers can be compared by pointer. Interned
// strings live as long as the interner.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_STRINGINTERNER_H
#define TERRACPP_SUPPORT_STRINGINTERNER_H

#include <string>
#include <string_view>
#include <unordered_set>

namespace terracpp {

/// Pointer-comparable interned string handle.
class StringInterner {
public:
  /// Returns a stable pointer to a NUL-terminated copy of \p S; equal
  /// strings always return the same pointer.
  const std::string *intern(std::string_view S);

private:
  std::unordered_set<std::string> Pool;
};

} // namespace terracpp

#endif // TERRACPP_SUPPORT_STRINGINTERNER_H
