//===- CodeBuffer.cpp - W^X executable code memory ------------------------===//

#include "support/CodeBuffer.h"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define TERRACPP_HAVE_MMAP 1
#endif

using namespace terracpp;

namespace {

size_t pageSize() {
#if TERRACPP_HAVE_MMAP
  static const size_t PS = static_cast<size_t>(sysconf(_SC_PAGESIZE));
  return PS;
#else
  return 4096;
#endif
}

size_t roundUp(size_t N, size_t Align) { return (N + Align - 1) & ~(Align - 1); }

} // namespace

CodeBuffer::~CodeBuffer() {
#if TERRACPP_HAVE_MMAP
  for (Region &R : Regions)
    if (R.Base)
      munmap(R.Base, R.Size);
#endif
}

CodeBuffer::Region *CodeBuffer::regionFor(size_t Size) {
#if TERRACPP_HAVE_MMAP
  for (Region &R : Regions)
    if (R.Size - R.Used >= Size)
      return &R;
  // 1 MiB regions amortize mmap calls; oversized functions get their own.
  size_t MapSize = roundUp(Size < (1u << 20) ? (1u << 20) : Size, pageSize());
  void *P = mmap(nullptr, MapSize, PROT_READ | PROT_WRITE,
                 MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (P == MAP_FAILED)
    return nullptr;
  Regions.push_back(Region{static_cast<uint8_t *>(P), MapSize, 0});
  return &Regions.back();
#else
  (void)Size;
  return nullptr;
#endif
}

void *CodeBuffer::publish(const uint8_t *Code, size_t Size) {
#if TERRACPP_HAVE_MMAP
  if (!Size)
    return nullptr;
  std::lock_guard<std::mutex> Lock(Mutex);
  Region *R = regionFor(roundUp(Size, pageSize()));
  if (!R)
    return nullptr;
  uint8_t *Dst = R->Base + R->Used;
  std::memcpy(Dst, Code, Size);
  // Bump to the next page boundary: the tail of this function's last page is
  // dead, so the next publish opens a page that was never executable.
  R->Used += roundUp(Size, pageSize());
  if (mprotect(Dst, roundUp(Size, pageSize()), PROT_READ | PROT_EXEC) != 0)
    return nullptr; // Pages stay RW but unreferenced; caller interprets.
  Published += Size;
  return Dst;
#else
  (void)Code;
  (void)Size;
  return nullptr;
#endif
}

size_t CodeBuffer::bytesPublished() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Published;
}
