//===- Json.h - Minimal JSON value, parser, and writer ----------*- C++ -*-===//
//
// JSON support for the terrad wire protocol (src/server): a small immutable
// value tree, a recursive-descent parser, and a writer with full string
// escaping. Exception-free (the project builds with -fno-exceptions):
// parsing reports failure through a bool + error string, and accessors
// return fallback values on kind mismatch.
//
// Deliberately scoped to protocol needs: UTF-8 passes through verbatim
// (\uXXXX escapes decode to UTF-8), numbers are doubles, and object keys
// keep insertion order.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_JSON_H
#define TERRACPP_SUPPORT_JSON_H

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace terracpp {
namespace json {

class Value {
public:
  enum Kind { K_Null, K_Bool, K_Number, K_String, K_Array, K_Object };

  Value() : K(K_Null) {}

  static Value null() { return Value(); }
  static Value boolean(bool B) {
    Value V;
    V.K = K_Bool;
    V.Bool = B;
    return V;
  }
  static Value number(double N) {
    Value V;
    V.K = K_Number;
    V.Num = N;
    return V;
  }
  static Value string(std::string S) {
    Value V;
    V.K = K_String;
    V.Str = std::move(S);
    return V;
  }
  static Value array() {
    Value V;
    V.K = K_Array;
    return V;
  }
  static Value object() {
    Value V;
    V.K = K_Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == K_Null; }
  bool isBool() const { return K == K_Bool; }
  bool isNumber() const { return K == K_Number; }
  bool isString() const { return K == K_String; }
  bool isArray() const { return K == K_Array; }
  bool isObject() const { return K == K_Object; }

  bool asBool(bool Fallback = false) const { return isBool() ? Bool : Fallback; }
  double asNumber(double Fallback = 0) const { return isNumber() ? Num : Fallback; }
  const std::string &asString() const {
    static const std::string Empty;
    return isString() ? Str : Empty;
  }

  /// Array element access; null value reference when out of range.
  size_t size() const { return isArray() ? Arr.size() : 0; }
  const Value &at(size_t I) const {
    static const Value Null;
    return (isArray() && I < Arr.size()) ? Arr[I] : Null;
  }
  const std::vector<Value> &elements() const { return Arr; }

  /// Object member lookup; null pointer when absent or not an object.
  const Value *get(const std::string &Key) const {
    if (isObject())
      for (const auto &M : Members)
        if (M.first == Key)
          return &M.second;
    return nullptr;
  }
  /// Typed member shortcuts used all over the protocol code.
  std::string getString(const std::string &Key,
                        const std::string &Fallback = "") const {
    const Value *V = get(Key);
    return V && V->isString() ? V->Str : Fallback;
  }
  double getNumber(const std::string &Key, double Fallback = 0) const {
    const Value *V = get(Key);
    return V && V->isNumber() ? V->Num : Fallback;
  }
  bool getBool(const std::string &Key, bool Fallback = false) const {
    const Value *V = get(Key);
    return V && V->isBool() ? V->Bool : Fallback;
  }
  const std::vector<std::pair<std::string, Value>> &members() const {
    return Members;
  }

  /// Builder mutators (no-ops on the wrong kind).
  Value &push(Value V) {
    if (isArray())
      Arr.push_back(std::move(V));
    return *this;
  }
  Value &set(std::string Key, Value V) {
    if (isObject()) {
      for (auto &M : Members)
        if (M.first == Key) {
          M.second = std::move(V);
          return *this;
        }
      Members.emplace_back(std::move(Key), std::move(V));
    }
    return *this;
  }
  /// Removes a member; true if it was present. Used by the fleet router to
  /// strip its internal mux id before relaying a shard response.
  bool remove(const std::string &Key) {
    if (isObject())
      for (auto It = Members.begin(); It != Members.end(); ++It)
        if (It->first == Key) {
          Members.erase(It);
          return true;
        }
    return false;
  }

  /// Serializes compactly (no whitespace). Strings are escaped per RFC 8259.
  std::string dump() const;

private:
  Kind K;
  bool Bool = false;
  double Num = 0;
  std::string Str;
  std::vector<Value> Arr;
  std::vector<std::pair<std::string, Value>> Members;
};

/// Parses \p Text into \p Out. On failure returns false and describes the
/// problem (with a byte offset) in \p Err. Trailing non-whitespace after the
/// top-level value is an error. Nesting is capped to keep recursion bounded
/// on adversarial input.
bool parse(const std::string &Text, Value &Out, std::string &Err);

/// Escapes \p S as the *contents* of a JSON string literal (no quotes).
std::string escape(const std::string &S);

} // namespace json
} // namespace terracpp

#endif // TERRACPP_SUPPORT_JSON_H
