//===- EnvParse.h - Validated environment-variable configuration ----------===//
//
// Configuration knobs (tier thresholds, compile-job counts, feature toggles)
// arrive as environment variables. strtol-style parsing silently turns typos
// into zero — which for a threshold means "promote on every call" and for a
// job count means "no parallelism" — so every numeric knob goes through this
// module instead: malformed or out-of-range values fall back to the
// documented default and emit a one-time warning naming the variable.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_ENVPARSE_H
#define TERRACPP_SUPPORT_ENVPARSE_H

#include <cstdint>

namespace terracpp {
namespace envcfg {

/// Reads an unsigned integer knob. Unset returns \p Default. A value that is
/// not a clean decimal number, or that falls outside [Min, Max], returns
/// \p Default and warns once per variable name for the process lifetime.
uint64_t parseUInt(const char *Name, uint64_t Default, uint64_t Min = 0,
                   uint64_t Max = UINT64_MAX);

/// Reads a boolean knob: "1"/"true"/"on"/"yes" are true, "0"/"false"/"off"/
/// "no" are false (case-insensitive). Unset returns \p Default; anything
/// else returns \p Default with a one-time warning.
bool parseBool(const char *Name, bool Default);

} // namespace envcfg
} // namespace terracpp

#endif // TERRACPP_SUPPORT_ENVPARSE_H
