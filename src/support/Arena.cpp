#include "support/Arena.h"

#include <cassert>

using namespace terracpp;

void *Arena::allocate(size_t Size, size_t Align) {
  assert(Align != 0 && (Align & (Align - 1)) == 0 &&
         "alignment must be a power of two");
  uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
  uintptr_t Aligned = (P + Align - 1) & ~(Align - 1);
  if (!Cur || Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
    addSlab(Size + Align);
    P = reinterpret_cast<uintptr_t>(Cur);
    Aligned = (P + Align - 1) & ~(Align - 1);
  }
  Cur = reinterpret_cast<char *>(Aligned + Size);
  BytesAllocated += Size;
  return reinterpret_cast<void *>(Aligned);
}

void Arena::addSlab(size_t MinSize) {
  size_t SlabSize = NextSlabSize;
  if (SlabSize < MinSize)
    SlabSize = MinSize;
  Slabs.push_back(std::make_unique<char[]>(SlabSize));
  Cur = Slabs.back().get();
  End = Cur + SlabSize;
  // Grow slabs geometrically, but cap growth to keep worst-case waste low.
  if (NextSlabSize < 4 * 1024 * 1024)
    NextSlabSize *= 2;
}
