//===- Telemetry.h - Metrics registry: counters/gauges/histograms -*- C++ -*-===//
//
// Built-in performance introspection for the staged-compilation pipeline
// (DESIGN.md §8). Three metric kinds, all safe for concurrent update with
// no lock on the hot path:
//
//  * Counter   — monotonic uint64 (relaxed atomic increment);
//  * Gauge     — last-written int64, plus a max() combinator for
//                high-water marks;
//  * Histogram — log-bucketed latency histogram (4 sub-buckets per power
//                of two, 256 buckets covering the full uint64 range) with
//                p50/p90/p95/p99 estimation by in-bucket interpolation.
//                The relative quantile error is bounded by the bucket
//                width: ≤ 25% of the value.
//
// A Registry is a named collection of metrics. Lookup interns by name
// under a mutex; the returned references stay valid for the registry's
// lifetime, so callers resolve once and update lock-free afterwards.
// `Registry::global()` is the process-wide instance used by the frontend
// (parse/specialize/typecheck/codegen) and the worker pool; subsystems
// with per-instance stats() APIs (JITEngine, terrad's Server) own private
// registries so concurrent instances do not pollute each other's counts.
//
// Snapshots serialize through support/Json, so the terrad `metrics` op and
// the BENCH_*.json telemetry blocks share one representation.
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_SUPPORT_TELEMETRY_H
#define TERRACPP_SUPPORT_TELEMETRY_H

#include "support/Json.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace terracpp {
namespace telemetry {

/// Microseconds on the steady clock (shared time base for histograms and
/// the trace recorder).
uint64_t nowMicros();

class Counter {
public:
  void inc(uint64_t N = 1) { V.fetch_add(N, std::memory_order_relaxed); }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t X) { V.fetch_add(X, std::memory_order_relaxed); }
  /// Raises the gauge to \p X if it is higher (high-water marks).
  void max(int64_t X) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (X > Cur &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

class Histogram {
public:
  /// 4 sub-buckets per power of two over the uint64 range, values 0..3
  /// exact.
  static constexpr unsigned NumBuckets = 252;

  void record(uint64_t Value);

  /// Point-in-time copy with derived quantiles. Concurrent recorders make
  /// the copy approximate (fields may be torn across updates), which is
  /// fine for monitoring.
  struct Snapshot {
    uint64_t Count = 0;
    uint64_t Sum = 0;
    uint64_t Min = 0;
    uint64_t Max = 0;
    double Mean = 0;
    double P50 = 0, P90 = 0, P95 = 0, P99 = 0;
    json::Value toJson() const;
  };
  Snapshot snapshot() const;

  /// Non-empty buckets in Prometheus form: (inclusive upper bound,
  /// CUMULATIVE count of samples at or below it), ascending. The +Inf
  /// bucket is implicit — its cumulative count equals snapshot().Count.
  std::vector<std::pair<uint64_t, uint64_t>> cumulativeBuckets() const;

  /// Bucket boundaries (exposed for tests).
  static unsigned bucketIndex(uint64_t Value);
  static uint64_t bucketLowerBound(unsigned Index);

private:
  std::atomic<uint64_t> Buckets[NumBuckets] = {};
  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> MinV{UINT64_MAX};
  std::atomic<uint64_t> MaxV{0};
};

/// Named metric collection. Metric references remain valid for the life of
/// the registry; metrics are never removed.
class Registry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,...}}}
  json::Value toJson() const;

  template <typename Fn> void forEachHistogram(Fn F) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &E : Histograms)
      F(E.first, *E.second);
  }
  template <typename Fn> void forEachCounter(Fn F) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &E : Counters)
      F(E.first, *E.second);
  }
  template <typename Fn> void forEachGauge(Fn F) const {
    std::lock_guard<std::mutex> Lock(M);
    for (const auto &E : Gauges)
      F(E.first, *E.second);
  }

  /// The process-wide registry (frontend phases, worker pool).
  static Registry &global();

private:
  mutable std::mutex M;
  std::map<std::string, std::unique_ptr<Counter>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
};

/// One exposition label ("process","terrad"). Values are escaped per the
/// Prometheus text format (backslash, double quote, newline).
using PromLabel = std::pair<std::string, std::string>;

/// Renders \p R in the Prometheus text exposition format (version 0.0.4):
/// a `# TYPE` line per family, then one sample line per metric, every
/// sample carrying \p Labels. Metric names are prefixed with \p Prefix and
/// sanitized (characters outside [a-zA-Z0-9_:] become '_', so
/// "server.op.call.latency_us" renders as
/// "terracpp_server_op_call_latency_us"). Histograms export cumulative
/// `_bucket{le="..."}` series (non-empty buckets plus "+Inf"), `_sum`, and
/// `_count`. This is what the terrad `metrics_text` op returns.
std::string toPrometheusText(const Registry &R,
                             const std::vector<PromLabel> &Labels = {},
                             const std::string &Prefix = "terracpp_");

/// Merges several exposition documents into one valid document: blocks for
/// the same family (identified by its `# TYPE` line) are grouped together
/// and the TYPE line is emitted once — required when concatenating shard
/// outputs that expose the same families under different label sets.
std::string mergeExpositions(const std::vector<std::string> &Parts);

/// RAII: records elapsed microseconds into a histogram on destruction.
class ScopedTimerUs {
public:
  explicit ScopedTimerUs(Histogram &H) : H(H), StartUs(nowMicros()) {}
  ~ScopedTimerUs() { H.record(nowMicros() - StartUs); }
  ScopedTimerUs(const ScopedTimerUs &) = delete;
  ScopedTimerUs &operator=(const ScopedTimerUs &) = delete;

private:
  Histogram &H;
  uint64_t StartUs;
};

} // namespace telemetry
} // namespace terracpp

#endif // TERRACPP_SUPPORT_TELEMETRY_H
