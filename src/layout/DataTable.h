//===- DataTable.h - AoS/SoA data layout library (paper §6.3.2) -*- C++ -*-===//
//
// Reimplements the paper's DataTable: a type constructor that generates a
// record container stored either as an array of structs (AoS: all fields of
// a record contiguous) or a struct of arrays (SoA: each field contiguous),
// behind one layout-independent interface. Changing the layout is a
// one-argument change — the paper's point is that this can be generated
// dynamically (e.g. from runtime feedback), which ahead-of-time templates
// cannot do.
//
// Interface installed on the generated container type (all Terra methods):
//   t:init(n)          allocate storage for n rows
//   t:free()
//   t:row(i)           returns a row accessor r
//   r:<field>()        read a field of the row
//   r:set<field>(v)    write a field of the row
//   t:get_<field>(i) / t:set_<field>(i, v)   direct element access
//
//===----------------------------------------------------------------------===//

#ifndef TERRACPP_LAYOUT_DATATABLE_H
#define TERRACPP_LAYOUT_DATATABLE_H

#include "core/Engine.h"
#include "core/TerraType.h"

#include <string>
#include <vector>

namespace terracpp {
namespace layout {

enum class LayoutKind { AoS, SoA };

class DataTable {
public:
  /// Builds the container type and its methods. Field types must be
  /// sized (no functions/void).
  DataTable(Engine &E, const std::string &Name,
            std::vector<std::pair<std::string, Type *>> Fields,
            LayoutKind Layout);

  /// The generated container type (a Terra struct with methods installed);
  /// the interface is identical for both layouts.
  StructType *type() const { return Container; }
  /// The row-accessor type returned by t:row(i).
  StructType *rowType() const { return RowRef; }
  LayoutKind layout() const { return Layout; }
  bool valid() const { return Container != nullptr; }

private:
  LayoutKind Layout;
  StructType *Container = nullptr;
  StructType *RowRef = nullptr;
  StructType *ElemTy = nullptr; ///< AoS only.
};

} // namespace layout
} // namespace terracpp

#endif // TERRACPP_LAYOUT_DATATABLE_H
