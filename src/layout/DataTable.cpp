#include "layout/DataTable.h"

#include "core/LuaInterp.h"
#include "core/StagingAPI.h"

using namespace terracpp;
using namespace terracpp::layout;
using namespace terracpp::lua;
using stage::Builder;

DataTable::DataTable(Engine &E, const std::string &Name,
                     std::vector<std::pair<std::string, Type *>> Fields,
                     LayoutKind Layout)
    : Layout(Layout) {
  TypeContext &TC = E.context().types();
  Builder B(E.context());
  Type *I64 = TC.int64();

  // libc bindings used by init/free.
  TerraFunction *Malloc = E.compiler().createExtern(
      "malloc", TC.function({I64}, TC.opaquePtr()), "stdlib.h", nullptr);
  TerraFunction *Free = E.compiler().createExtern(
      "free", TC.function({TC.opaquePtr()}, TC.voidType()), "stdlib.h",
      nullptr);

  // Container layout.
  Container = TC.createStruct(Name);
  if (Layout == LayoutKind::AoS) {
    ElemTy = TC.createStruct(Name + "_row");
    for (const auto &F : Fields)
      ElemTy->addField(F.first, F.second);
    Container->addField("data", TC.pointer(ElemTy));
  } else {
    for (const auto &F : Fields)
      Container->addField(F.first, TC.pointer(F.second));
  }
  Container->addField("N", I64);

  // Row accessor: a (container, index) pair; layout-independent.
  RowRef = TC.createStruct(Name + "_ref");
  RowRef->addField("t", TC.pointer(Container));
  RowRef->addField("i", I64);

  Type *SelfTy = TC.pointer(Container);

  // Address of field F at row i (layout-specific — the only place the
  // choice appears).
  auto FieldAddr = [&](TerraExpr *Self, TerraExpr *Idx,
                       const std::string &FieldName) -> TerraExpr * {
    if (Layout == LayoutKind::AoS)
      return B.addrOf(B.select(
          B.index(B.select(B.deref(Self), "data"), Idx), FieldName));
    return B.addrOf(B.index(B.select(B.deref(Self), FieldName), Idx));
  };

  // t:init(n)
  {
    TerraSymbol *Self = B.sym(SelfTy, "self");
    TerraSymbol *N = B.sym(I64, "n");
    std::vector<TerraStmt *> Body;
    if (Layout == LayoutKind::AoS) {
      TerraExpr *Bytes = B.mul(B.var(N), B.cast(I64, B.sizeOf(ElemTy)));
      Body.push_back(B.assign(B.select(B.deref(B.var(Self)), "data"),
                              B.cast(TC.pointer(ElemTy),
                                     B.call(Malloc, {Bytes}))));
    } else {
      for (const auto &F : Fields) {
        TerraExpr *Bytes = B.mul(B.var(N), B.cast(I64, B.sizeOf(F.second)));
        Body.push_back(B.assign(B.select(B.deref(B.var(Self)), F.first),
                                B.cast(TC.pointer(F.second),
                                       B.call(Malloc, {Bytes}))));
      }
    }
    Body.push_back(B.assign(B.select(B.deref(B.var(Self)), "N"), B.var(N)));
    Body.push_back(B.ret());
    Container->methods()->setStr(
        "init", Value::terraFn(B.function(Name + "_init", {Self, N},
                                          TC.voidType(),
                                          B.block(std::move(Body)))));
  }

  // t:free()
  {
    TerraSymbol *Self = B.sym(SelfTy, "self");
    std::vector<TerraStmt *> Body;
    if (Layout == LayoutKind::AoS) {
      Body.push_back(B.exprStmt(B.call(
          Free,
          {B.cast(TC.opaquePtr(), B.select(B.deref(B.var(Self)), "data"))})));
    } else {
      for (const auto &F : Fields)
        Body.push_back(B.exprStmt(B.call(
            Free, {B.cast(TC.opaquePtr(),
                          B.select(B.deref(B.var(Self)), F.first))})));
    }
    Body.push_back(B.ret());
    Container->methods()->setStr(
        "free", Value::terraFn(B.function(Name + "_free", {Self},
                                          TC.voidType(),
                                          B.block(std::move(Body)))));
  }

  // t:row(i) -> RowRef
  {
    TerraSymbol *Self = B.sym(SelfTy, "self");
    TerraSymbol *I = B.sym(I64, "i");
    std::vector<TerraStmt *> Body;
    Body.push_back(B.ret(B.construct(RowRef, {B.var(Self), B.var(I)})));
    Container->methods()->setStr(
        "row", Value::terraFn(B.function(Name + "_row", {Self, I}, RowRef,
                                         B.block(std::move(Body)))));
  }

  // Per-field accessors: t:get_f(i), t:set_f(i, v), r:f(), r:setf(v).
  for (const auto &F : Fields) {
    const std::string &FN = F.first;
    Type *FT = F.second;
    {
      TerraSymbol *Self = B.sym(SelfTy, "self");
      TerraSymbol *I = B.sym(I64, "i");
      Container->methods()->setStr(
          "get_" + FN,
          Value::terraFn(B.function(
              Name + "_get_" + FN, {Self, I}, FT,
              B.block({B.ret(
                  B.deref(FieldAddr(B.var(Self), B.var(I), FN)))}))));
    }
    {
      TerraSymbol *Self = B.sym(SelfTy, "self");
      TerraSymbol *I = B.sym(I64, "i");
      TerraSymbol *V = B.sym(FT, "v");
      Container->methods()->setStr(
          "set_" + FN,
          Value::terraFn(B.function(
              Name + "_set_" + FN, {Self, I, V}, TC.voidType(),
              B.block({B.assign(B.deref(FieldAddr(B.var(Self), B.var(I), FN)),
                                B.var(V)),
                       B.ret()}))));
    }
    {
      TerraSymbol *Self = B.sym(TC.pointer(RowRef), "self");
      TerraExpr *T = B.select(B.deref(B.var(Self)), "t");
      TerraExpr *I = B.select(B.deref(B.var(Self)), "i");
      RowRef->methods()->setStr(
          FN, Value::terraFn(B.function(
                  Name + "_r_" + FN, {Self}, FT,
                  B.block({B.ret(B.deref(FieldAddr(T, I, FN)))}))));
    }
    {
      TerraSymbol *Self = B.sym(TC.pointer(RowRef), "self");
      TerraSymbol *V = B.sym(FT, "v");
      TerraExpr *T = B.select(B.deref(B.var(Self)), "t");
      TerraExpr *I = B.select(B.deref(B.var(Self)), "i");
      RowRef->methods()->setStr(
          "set" + FN,
          Value::terraFn(B.function(
              Name + "_r_set" + FN, {Self, V}, TC.voidType(),
              B.block({B.assign(B.deref(FieldAddr(T, I, FN)), B.var(V)),
                       B.ret()}))));
    }
  }
}
