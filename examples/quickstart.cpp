//===- quickstart.cpp - Hello terracpp ------------------------------------===//
//
// The five-minute tour: run a combined Lua/Terra program, stage a Terra
// function from host values, call it through the FFI, and grab a raw
// function pointer for zero-overhead calls from C++.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include <cstdio>

using namespace terracpp;

int main() {
  Engine E;

  // Host (Lua-like) code and Terra code live in one program. Host evaluation
  // stages the Terra function: `N` is looked up at *definition* time and
  // baked in (eager specialization, paper §4.1).
  const char *Program = R"LUA(
    local N = 100

    terra scaled_add(a: double, b: double): double
      return a + b * N
    end

    -- Staging with quotations: build an unrolled polynomial evaluator
    -- x^0 + x^1 + ... + x^4 at compile time.
    function unrolled_poly(terms)
      local x = symbol(double, "x")
      local acc = `1.0
      for i = 1, terms do
        local prev = acc
        acc = `[prev] * [x] + 1.0
      end
      return terra([x]): double
        return [acc]
      end
    end
    poly = unrolled_poly(4)

    print("scaled_add(2, 3) =", scaled_add(2, 3))
    print("poly(2) =", poly(2.0))
  )LUA";

  if (!E.run(Program, "quickstart.t")) {
    fprintf(stderr, "error:\n%s\n", E.errors().c_str());
    return 1;
  }

  // Terra functions are real native code: grab the pointer and call it with
  // no interpreter in the loop (paper: Terra runs independently of Lua).
  auto *ScaledAdd =
      reinterpret_cast<double (*)(double, double)>(E.rawPointer("scaled_add"));
  if (ScaledAdd)
    printf("raw native call: scaled_add(1.5, 0.25) = %g\n",
           ScaledAdd(1.5, 0.25));

  return 0;
}
