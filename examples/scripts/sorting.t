-- sorting.t — staged sorting networks: a Lua generator emits a fully
-- unrolled compare-and-swap network for any small fixed size, a classic
-- partial-evaluation exercise. Run with:  terracpp examples/scripts/sorting.t

std = terralib.includec("stdlib.h")

-- Builds the list of (i, j) compare-exchange pairs of a Batcher
-- odd-even mergesort network for size n (n a power of two).
local function batcher_pairs(n)
  local pairs_ = {}
  local function addpair(i, j)
    table.insert(pairs_, { i, j })
  end
  local function merge(lo, cnt, r)
    local step = r * 2
    if step < cnt then
      merge(lo, cnt, step)
      merge(lo + r, cnt, step)
      local i = lo + r
      while i + r < lo + cnt do
        addpair(i, i + r)
        i = i + step
      end
    else
      addpair(lo, lo + r)
    end
  end
  local function sortrange(lo, cnt)
    if cnt > 1 then
      local m = cnt / 2
      sortrange(lo, m)
      sortrange(lo + m, m)
      merge(lo, cnt, 1)
    end
  end
  sortrange(0, n)
  return pairs_
end

-- Stages one sorting network: data[i], data[j] sorted with no loops,
-- no branches on indices — everything unrolled at compile time.
function sorting_network(n)
  local net = batcher_pairs(n)
  local data = symbol(&double, "data")
  local body = terralib.newlist()
  for _, p in ipairs(net) do
    local i, j = p[1], p[2]
    body:insert(quote
      var a = [data][i]
      var b = [data][j]
      if b < a then
        [data][i] = b
        [data][j] = a
      end
    end)
  end
  return terra([data]): {}
    [body]
  end
end

sort8 = sorting_network(8)
sort16 = sorting_network(16)

terra is_sorted(p: &double, n: int): bool
  for i = 0, n - 1 do
    if p[i] > p[i + 1] then return false end
  end
  return true
end

terra fill_and_sort16(seed: int): bool
  var a: double[16]
  var s = seed
  for i = 0, 16 do
    s = (s * 1103515245 + 12345) % 2147483647
    a[i] = [double](s % 1000)
  end
  sort16(&a[0])
  return is_sorted(&a[0], 16)
end

for seed = 1, 20 do
  assert(fill_and_sort16(seed), "network failed for seed " .. seed)
end
print("sorting networks (8- and 16-wide, fully unrolled): ok")
result = 1
