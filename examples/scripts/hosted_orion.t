-- hosted_orion.t — the Orion stencil DSL used from the hosted language, as
-- the paper implements it (§6.2: "operator overloading on Lua tables").
-- Run with:  terracpp examples/scripts/hosted_orion.t
-- (requires the embedding application to call installHostedOrion; the
-- terracpp CLI and the test suite do.)

local W, H = 64, 64

local P = orion.pipeline()
local im = P:input("im")
local blurx = P:define("blurx", (im(-1, 0) + im(0, 0) + im(1, 0)) / 3)
blurx:setschedule("linebuffer")
local blury = P:define("blury",
                       (blurx(0, -1) + blurx(0, 0) + blurx(0, 1)) / 3)
P:output(blury)
local run = P:compile { vectorize = 8 }

-- Allocate images as cdata and fill the input.
local input = terralib.new(float[W * H])
local output = terralib.new(float[W * H])

terra fillimg(p: &float, n: int): {}
  for i = 0, n do
    p[i] = [float]((i * 37) % 255) / 255.f
  end
end

terra checksum(p: &float, n: int): double
  var s = 0.0
  for i = 0, n do s = s + p[i] end
  return s
end

fillimg(input, W * H)
run(input, output, W, H)
local sum = checksum(output, W * H)
print(string.format("hosted orion 3x3 blur: checksum = %.3f", sum))
assert(sum > 0, "blur produced an empty image")
result = sum
