-- mandelbrot.t — a complete hosted program exercising structs, methods,
-- staging, and libc interop. Run with:  terracpp examples/scripts/mandelbrot.t

std = terralib.includec("stdlib.h")
io_c = terralib.includec("stdio.h")

struct Complex { re : double; im : double }

terra Complex:abs2(): double
  return self.re * self.re + self.im * self.im
end

terra Complex:mulAdd(c: Complex): Complex
  -- self^2 + c
  return Complex { self.re * self.re - self.im * self.im + c.re,
                   2.0 * self.re * self.im + c.im }
end

-- Stage the iteration count so the inner loop is unrolled MAXITER times.
local MAXITER = 32

function unrolled_escape_count(z, c, count)
  -- Builds MAXITER iterations: z = z:mulAdd(c); bail when |z|^2 > 4.
  local stmts = terralib.newlist()
  for i = 1, MAXITER do
    stmts:insert(quote
      -- The first unrolled copy sees count == 0, so the analyzer proves
      -- this guard false there; that is the point of the staging.
      -- terracheck: disable=TA008
      if [count] < 0 then
      else
        [z] = [z]:mulAdd([c])
        if [z]:abs2() > 4.0 then
          [count] = -([count] + 1)
        else
          [count] = [count] + 1
        end
      end
    end)
  end
  return stmts
end

terra escape_count(cre: double, cim: double): int
  var c = Complex { cre, cim }
  var z = Complex { 0.0, 0.0 }
  var count = 0
  [ unrolled_escape_count(z, c, count) ]
  if count < 0 then return -count - 1 end
  return [MAXITER]
end

terra render(w: int, h: int): int
  var inside = 0
  for y = 0, h do
    for x = 0, w do
      var cre = 3.0 * x / w - 2.25
      var cim = 2.5 * y / h - 1.25
      if escape_count(cre, cim) == [MAXITER] then
        inside = inside + 1
      end
    end
  end
  return inside
end

local w, h = 64, 48
local inside = render(w, h)
print(string.format("mandelbrot %dx%d: %d interior points", w, h, inside))
assert(inside > 0 and inside < w * h, "implausible mandelbrot result")
result = inside
