//===- image_laplace.cpp - The paper's §2 walkthrough ---------------------===//
//
// Reproduces the paper's running example: a generic Image type built by a
// Lua function (a "runtime template"), Terra methods allocated with
// std.malloc, a Laplacian filter, and the blockedloop generator that emits
// multi-level cache-blocked loop nests from Lua.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include <cstdio>

using namespace terracpp;

int main() {
  Engine E;

  const char *Program = R"LUA(
    std = terralib.includec("stdlib.h")

    -- The paper's Image "template": a Lua function that creates a new Terra
    -- type for any pixel type (§2).
    function Image(PixelType)
      struct ImageImpl {
        data : &PixelType;
        N : int;
      }
      terra ImageImpl:init(N: int): {}
        self.data = [&PixelType](std.malloc(N * N * sizeof(PixelType)))
        self.N = N
      end
      terra ImageImpl:get(x: int, y: int): PixelType
        return self.data[x * self.N + y]
      end
      terra ImageImpl:set(x: int, y: int, v: PixelType): {}
        self.data[x * self.N + y] = v
      end
      terra ImageImpl:free(): {}
        std.free([&opaque](self.data))
      end
      return ImageImpl
    end

    GreyscaleImage = Image(float)

    terra min(a: int, b: int): int
      if a < b then return a else return b end
    end

    -- The paper's blockedloop generator (§2): a Lua function that emits a
    -- loop nest with a parameterizable number of blocking levels.
    function blockedloop(N, blocksizes, bodyfn)
      local function generatelevel(n, ii, jj, bb)
        if n > #blocksizes then
          return bodyfn(ii, jj)
        end
        local blocksize = blocksizes[n]
        return quote
          for i = [ii], min([ii] + [bb], [N]), blocksize do
            for j = [jj], min([jj] + [bb], [N]), blocksize do
              [ generatelevel(n + 1, i, j, blocksize) ]
            end
          end
        end
      end
      return generatelevel(1, 0, 0, N)
    end

    terra laplace(img: &GreyscaleImage, out: &GreyscaleImage): {}
      var newN = img.N - 2
      out:init(newN)
      [ blockedloop(newN, {64, 1}, function(i, j)
          return quote
            var v = img:get([i] + 0, [j] + 1) + img:get([i] + 2, [j] + 1)
                  + img:get([i] + 1, [j] + 2) + img:get([i] + 1, [j] + 0)
                  - 4 * img:get([i] + 1, [j] + 1)
            out:set([i], [j], v)
          end
        end) ]
    end

    terra runlaplace(N: int): float
      var i = GreyscaleImage {}
      var o = GreyscaleImage {}
      i:init(N)
      for x = 0, N do
        for y = 0, N do
          i:set(x, y, [float](x * y % 31))
        end
      end
      laplace(&i, &o)
      var checksum = 0.f
      for x = 0, N - 2 do
        for y = 0, N - 2 do
          checksum = checksum + o:get(x, y)
        end
      end
      i:free()
      o:free()
      return checksum
    end

    print("laplace checksum (N=256):", runlaplace(256))
  )LUA";

  if (!E.run(Program, "image_laplace.t")) {
    fprintf(stderr, "error:\n%s\n", E.errors().c_str());
    return 1;
  }
  printf("image_laplace: ok\n");
  return 0;
}
