//===- save_object.cpp - saveobj: ahead-of-time output (§2) ---------------===//
//
// Demonstrates the paper's saveobj path: Terra functions compiled in-process
// can also be written out as a C source file, a relocatable object, or a
// shared library that links into ordinary C programs — "Terra code can run
// independently of Lua".
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"

#include <cstdio>
#include <cstdlib>

using namespace terracpp;

int main() {
  Engine E;
  const char *Program = R"LUA(
    terra fib(n: int): int
      if n < 2 then return n end
      return fib(n - 1) + fib(n - 2)
    end
    terra double_it(x: double): double
      return x * 2.0
    end
    terralib.saveobj("/tmp/terracpp_demo.c",
                     { fib = fib, double_it = double_it })
    terralib.saveobj("/tmp/terracpp_demo.so",
                     { fib = fib, double_it = double_it })
    print("fib(12) =", fib(12))
  )LUA";

  if (!E.run(Program, "save_object.t")) {
    fprintf(stderr, "error:\n%s\n", E.errors().c_str());
    return 1;
  }
  printf("wrote /tmp/terracpp_demo.c and /tmp/terracpp_demo.so\n");
  printf("the exported symbols link like any C library:\n");
  if (system("nm -D --defined-only /tmp/terracpp_demo.so | grep -E ' (fib|double_it)$' || true") != 0)
    return 0;
  return 0;
}
