//===- gemm_autotune.cpp - The §6.1 auto-tuner, end to end ----------------===//
//
// Runs the staged DGEMM auto-tuner: generates the Fig. 5 kernel for a grid
// of (NB, RM, RN, V) parameters, JIT-compiles each candidate, times it, and
// reports the search results and the winner — the paper's ATLAS-in-200-lines
// demonstration.
//
//===----------------------------------------------------------------------===//

#include "autotuner/Baselines.h"
#include "autotuner/Gemm.h"
#include "core/Engine.h"
#include "core/TerraType.h"
#include "support/Timer.h"

#include <cstdio>
#include <vector>

using namespace terracpp;
using namespace terracpp::autotuner;

int main() {
  Engine E;
  const int64_t TuneN = 384;

  printf("auto-tuning DGEMM on a %lldx%lld test multiply...\n",
         (long long)TuneN, (long long)TuneN);
  TuneResult R = tuneGemm(E, E.context().types().float64(), TuneN);
  if (!R.RawFn) {
    fprintf(stderr, "tuning failed:\n%s\n", E.errors().c_str());
    return 1;
  }

  printf("\n%-28s %10s\n", "configuration", "GFLOPS");
  for (const auto &Trial : R.Trials)
    printf("%-28s %10.2f%s\n", Trial.first.str().c_str(), Trial.second,
           Trial.first.str() == R.Best.str() ? "   <-- best" : "");

  // Compare the winner against the native baselines at a larger size.
  const int64_t N = 768;
  std::vector<double> A(N * N), B(N * N), C(N * N);
  for (int64_t I = 0; I != N * N; ++I) {
    A[I] = (I * 37 % 97) / 97.0;
    B[I] = (I * 71 % 89) / 89.0;
  }
  auto GFlops = [&](double Sec) { return 2.0 * N * N * N / Sec / 1e9; };
  auto *Terra = reinterpret_cast<void (*)(const double *, const double *,
                                          double *, int64_t)>(R.RawFn);

  Timer T1;
  Terra(A.data(), B.data(), C.data(), N);
  double TerraSec = T1.seconds();

  std::fill(C.begin(), C.end(), 0.0);
  Timer T2;
  tunedGemm(A.data(), B.data(), C.data(), N);
  double TunedCSec = T2.seconds();

  std::fill(C.begin(), C.end(), 0.0);
  Timer T3;
  blockedGemm(A.data(), B.data(), C.data(), N);
  double BlockedSec = T3.seconds();

  printf("\nat N=%lld:\n", (long long)N);
  printf("  staged Terra kernel : %7.2f GFLOPS\n", GFlops(TerraSec));
  printf("  hand-tuned C        : %7.2f GFLOPS\n", GFlops(TunedCSec));
  printf("  blocked C           : %7.2f GFLOPS\n", GFlops(BlockedSec));
  return 0;
}
