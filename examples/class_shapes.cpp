//===- class_shapes.cpp - Class system + DataTable demo (§6.3) ------------===//
//
// Demonstrates the reflection-based libraries: a Shape/Square/Circle class
// hierarchy with an interface, dispatched virtually from Terra code, and a
// DataTable whose layout flips between AoS and SoA with one argument.
//
//===----------------------------------------------------------------------===//

#include "classes/ClassSystem.h"
#include "core/Engine.h"
#include "core/StagingAPI.h"
#include "core/TerraType.h"
#include "layout/DataTable.h"

#include <cstdio>

using namespace terracpp;
using namespace terracpp::classes;
using namespace terracpp::layout;
using stage::Builder;

static void addArea(ClassSystem &J, Engine &E, StructType *Class, double K,
                    const char *Name) {
  Builder B(E.context());
  TypeContext &TC = E.context().types();
  TerraSymbol *Self = B.sym(TC.pointer(Class), "self");
  TerraExpr *W1 = B.select(B.deref(B.var(Self)), "w");
  TerraExpr *W2 = B.select(B.deref(B.var(Self)), "w");
  J.method(Class, "area",
           B.function(Name, {Self}, TC.float64(),
                      B.block({B.ret(B.mul(B.litFloat(K), B.mul(W1, W2)))})));
}

int main() {
  Engine E;
  TypeContext &TC = E.context().types();
  Builder B(E.context());

  // Class hierarchy (paper §6.3.1).
  ClassSystem J(E);
  Interface *Areal = J.interface("Areal", {{"area", TC.function({}, TC.float64())}});
  StructType *Shape = J.newClass("Shape");
  J.field(Shape, "w", TC.float64());
  J.implements(Shape, Areal);
  addArea(J, E, Shape, 0.0, "Shape_area");
  StructType *Square = J.newClass("Square");
  J.extends(Square, Shape);
  addArea(J, E, Square, 1.0, "Square_area");
  StructType *Circle = J.newClass("Circle");
  J.extends(Circle, Shape);
  addArea(J, E, Circle, 3.14159, "Circle_area");

  // A Terra function that builds one of each and sums areas through the
  // base-class vtable.
  TerraFunction *Demo;
  {
    TerraSymbol *Sq = B.sym(Square, "sq");
    TerraSymbol *Ci = B.sym(Circle, "ci");
    TerraSymbol *P = B.sym(TC.pointer(Shape), "p");
    std::vector<TerraStmt *> Body;
    Body.push_back(B.varDecl(Sq));
    Body.push_back(B.varDecl(Ci));
    Body.push_back(B.exprStmt(B.methodCall(B.addrOf(B.var(Sq)), "initvtable", {})));
    Body.push_back(B.exprStmt(B.methodCall(B.addrOf(B.var(Ci)), "initvtable", {})));
    Body.push_back(B.assign(B.select(B.var(Sq), "w"), B.litFloat(2.0)));
    Body.push_back(B.assign(B.select(B.var(Ci), "w"), B.litFloat(1.0)));
    Body.push_back(B.varDecl(P, B.addrOf(B.var(Sq)))); // Upcast via __cast.
    TerraSymbol *Sum = B.sym(TC.float64(), "sum");
    Body.push_back(B.varDecl(Sum, B.methodCall(B.var(P), "area", {})));
    Body.push_back(B.assign(B.var(P), B.addrOf(B.var(Ci))));
    Body.push_back(B.assign(
        B.var(Sum), B.add(B.var(Sum), B.methodCall(B.var(P), "area", {}))));
    Body.push_back(B.ret(B.var(Sum)));
    Demo = B.function("shape_demo", {}, TC.float64(), B.block(std::move(Body)));
  }
  if (!E.compiler().ensureCompiled(Demo)) {
    fprintf(stderr, "error:\n%s\n", E.errors().c_str());
    return 1;
  }
  auto *DemoFn = reinterpret_cast<double (*)()>(Demo->RawPtr);
  printf("square(2) + circle(1) area via vtables = %.5f (expect 7.14159)\n",
         DemoFn());

  // Data layout (paper §6.3.2): same interface, different layout.
  for (LayoutKind L : {LayoutKind::AoS, LayoutKind::SoA}) {
    DataTable DT(E, L == LayoutKind::AoS ? "PtsA" : "PtsS",
                 {{"x", TC.float64()}, {"y", TC.float64()}}, L);
    TerraSymbol *T = B.sym(DT.type(), "t");
    TerraSymbol *I = B.sym(TC.int64(), "i");
    TerraSymbol *Sum = B.sym(TC.float64(), "sum");
    std::vector<TerraStmt *> Fill;
    Fill.push_back(B.exprStmt(B.methodCall(B.addrOf(B.var(T)), "set_x",
                                           {B.var(I), B.cast(TC.float64(), B.var(I))})));
    Fill.push_back(B.exprStmt(B.methodCall(
        B.addrOf(B.var(T)), "set_y",
        {B.var(I), B.mul(B.cast(TC.float64(), B.var(I)), B.litFloat(0.5))})));
    std::vector<TerraStmt *> Body;
    Body.push_back(B.varDecl(T));
    Body.push_back(B.exprStmt(
        B.methodCall(B.addrOf(B.var(T)), "init", {B.litI64(100)})));
    Body.push_back(B.forNum(I, B.litI64(0), B.litI64(100),
                            B.block(std::move(Fill))));
    Body.push_back(B.varDecl(Sum, B.litFloat(0.0)));
    TerraSymbol *I2 = B.sym(TC.int64(), "i");
    std::vector<TerraStmt *> Acc2;
    Acc2.push_back(B.assign(
        B.var(Sum),
        B.add(B.var(Sum),
              B.add(B.methodCall(B.addrOf(B.var(T)), "get_x", {B.var(I2)}),
                    B.methodCall(B.addrOf(B.var(T)), "get_y", {B.var(I2)})))));
    Body.push_back(B.forNum(I2, B.litI64(0), B.litI64(100),
                            B.block(std::move(Acc2))));
    Body.push_back(B.exprStmt(B.methodCall(B.addrOf(B.var(T)), "free", {})));
    Body.push_back(B.ret(B.var(Sum)));
    TerraFunction *Fn = B.function(
        L == LayoutKind::AoS ? "sum_aos" : "sum_soa", {}, TC.float64(),
        B.block(std::move(Body)));
    if (!E.compiler().ensureCompiled(Fn)) {
      fprintf(stderr, "error:\n%s\n", E.errors().c_str());
      return 1;
    }
    printf("%s sum = %.1f (expect 7425.0)\n",
           L == LayoutKind::AoS ? "AoS" : "SoA",
           reinterpret_cast<double (*)()>(Fn->RawPtr)());
  }
  return 0;
}
