//===- orion_pipeline.cpp - Orion stencil DSL demo (§6.2) -----------------===//
//
// Builds the paper's separable area filter in the Orion DSL, compiles it
// under three schedules (materialize / inline producers / line-buffer), and
// prints per-schedule timings — "being able to easily change the schedule
// is a powerful abstraction".
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "orion/Orion.h"
#include "support/Timer.h"

#include <cstdio>
#include <vector>

using namespace terracpp;
using namespace terracpp::orion;

int main() {
  const int64_t W = 1024, H = 1024;
  std::vector<float> In(W * H), Out(W * H);
  for (int64_t I = 0; I != W * H; ++I)
    In[I] = static_cast<float>((I * 13 % 251) / 251.0);

  struct Variant {
    const char *Name;
    Schedule Sched;
    int Vec;
  };
  const Variant Variants[] = {
      {"materialize (matches C)", Schedule::Materialize, 1},
      {"materialize + vectorize", Schedule::Materialize, 8},
      {"line-buffer + vectorize", Schedule::LineBuffer, 8},
  };

  printf("5x5 separable area filter on %lldx%lld:\n", (long long)W,
         (long long)H);
  for (const Variant &V : Variants) {
    Engine E;
    Pipeline P;
    Func Img = P.input("img");
    Func BlurY = P.define(
        "blury",
        (Img(0, -2) + Img(0, -1) + Img(0, 0) + Img(0, 1) + Img(0, 2)) / 5.0f);
    BlurY.setSchedule(V.Sched);
    Func BlurX = P.define("blurx",
                          (BlurY(-2, 0) + BlurY(-1, 0) + BlurY(0, 0) +
                           BlurY(1, 0) + BlurY(2, 0)) /
                              5.0f);
    P.setOutput(BlurX);

    CompiledPipeline CP = P.compile(E, {V.Vec});
    if (!CP.valid()) {
      fprintf(stderr, "compile failed:\n%s\n", E.errors().c_str());
      return 1;
    }
    if (!CP.prepare({In.data()}, W, H))
      return 1;
    CP.runPrepared(); // Warm up.
    Timer T;
    const int Reps = 20;
    for (int R = 0; R != Reps; ++R)
      CP.runPrepared();
    double Ms = T.milliseconds() / Reps;
    CP.readOutput(Out.data());
    printf("  %-26s %8.3f ms/frame   (out[centre]=%.4f)\n", V.Name, Ms,
           Out[(H / 2) * W + W / 2]);
  }
  return 0;
}
