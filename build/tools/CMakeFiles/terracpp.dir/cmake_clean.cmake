file(REMOVE_RECURSE
  "CMakeFiles/terracpp.dir/terracpp.cpp.o"
  "CMakeFiles/terracpp.dir/terracpp.cpp.o.d"
  "terracpp"
  "terracpp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terracpp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
