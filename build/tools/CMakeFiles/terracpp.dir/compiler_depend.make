# Empty compiler generated dependencies file for terracpp.
# This may be replaced when dependencies are built.
