
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/terracpp.cpp" "tools/CMakeFiles/terracpp.dir/terracpp.cpp.o" "gcc" "tools/CMakeFiles/terracpp.dir/terracpp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/terra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/orion/CMakeFiles/terra_orion.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
