# Empty dependencies file for terracpp_tests.
# This may be replaced when dependencies are built.
