
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_backends.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_backends.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_backends.cpp.o.d"
  "/root/repo/tests/test_classes.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_classes.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_classes.cpp.o.d"
  "/root/repo/tests/test_ffi.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_ffi.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_ffi.cpp.o.d"
  "/root/repo/tests/test_fuzz.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_fuzz.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_fuzz.cpp.o.d"
  "/root/repo/tests/test_gemm.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_gemm.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_gemm.cpp.o.d"
  "/root/repo/tests/test_layout.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_layout.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_layout.cpp.o.d"
  "/root/repo/tests/test_lua.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_lua.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_lua.cpp.o.d"
  "/root/repo/tests/test_orion.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_orion.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_orion.cpp.o.d"
  "/root/repo/tests/test_parser.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_parser.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_parser.cpp.o.d"
  "/root/repo/tests/test_print.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_print.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_print.cpp.o.d"
  "/root/repo/tests/test_scripts.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_scripts.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_scripts.cpp.o.d"
  "/root/repo/tests/test_semantics.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_semantics.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_semantics.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_support.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_support.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_support.cpp.o.d"
  "/root/repo/tests/test_typecheck.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_typecheck.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_typecheck.cpp.o.d"
  "/root/repo/tests/test_types.cpp" "tests/CMakeFiles/terracpp_tests.dir/test_types.cpp.o" "gcc" "tests/CMakeFiles/terracpp_tests.dir/test_types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/terra_core.dir/DependInfo.cmake"
  "/root/repo/build/src/autotuner/CMakeFiles/terra_autotuner.dir/DependInfo.cmake"
  "/root/repo/build/src/orion/CMakeFiles/terra_orion.dir/DependInfo.cmake"
  "/root/repo/build/src/classes/CMakeFiles/terra_classes.dir/DependInfo.cmake"
  "/root/repo/build/src/layout/CMakeFiles/terra_layout.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/terra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
