# Empty dependencies file for orion_pipeline.
# This may be replaced when dependencies are built.
