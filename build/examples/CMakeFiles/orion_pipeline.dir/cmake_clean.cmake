file(REMOVE_RECURSE
  "CMakeFiles/orion_pipeline.dir/orion_pipeline.cpp.o"
  "CMakeFiles/orion_pipeline.dir/orion_pipeline.cpp.o.d"
  "orion_pipeline"
  "orion_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orion_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
