# Empty dependencies file for image_laplace.
# This may be replaced when dependencies are built.
