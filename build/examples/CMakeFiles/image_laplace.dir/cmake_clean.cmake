file(REMOVE_RECURSE
  "CMakeFiles/image_laplace.dir/image_laplace.cpp.o"
  "CMakeFiles/image_laplace.dir/image_laplace.cpp.o.d"
  "image_laplace"
  "image_laplace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/image_laplace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
