# Empty compiler generated dependencies file for save_object.
# This may be replaced when dependencies are built.
