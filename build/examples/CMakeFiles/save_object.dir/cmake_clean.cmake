file(REMOVE_RECURSE
  "CMakeFiles/save_object.dir/save_object.cpp.o"
  "CMakeFiles/save_object.dir/save_object.cpp.o.d"
  "save_object"
  "save_object.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/save_object.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
