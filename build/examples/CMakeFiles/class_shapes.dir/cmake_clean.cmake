file(REMOVE_RECURSE
  "CMakeFiles/class_shapes.dir/class_shapes.cpp.o"
  "CMakeFiles/class_shapes.dir/class_shapes.cpp.o.d"
  "class_shapes"
  "class_shapes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/class_shapes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
