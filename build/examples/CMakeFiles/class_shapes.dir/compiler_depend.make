# Empty compiler generated dependencies file for class_shapes.
# This may be replaced when dependencies are built.
