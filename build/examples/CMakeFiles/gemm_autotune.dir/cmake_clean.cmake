file(REMOVE_RECURSE
  "CMakeFiles/gemm_autotune.dir/gemm_autotune.cpp.o"
  "CMakeFiles/gemm_autotune.dir/gemm_autotune.cpp.o.d"
  "gemm_autotune"
  "gemm_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemm_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
