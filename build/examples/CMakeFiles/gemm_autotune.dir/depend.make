# Empty dependencies file for gemm_autotune.
# This may be replaced when dependencies are built.
