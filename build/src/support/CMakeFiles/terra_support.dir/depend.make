# Empty dependencies file for terra_support.
# This may be replaced when dependencies are built.
