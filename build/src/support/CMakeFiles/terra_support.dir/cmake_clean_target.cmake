file(REMOVE_RECURSE
  "libterra_support.a"
)
