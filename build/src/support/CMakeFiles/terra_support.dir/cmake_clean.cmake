file(REMOVE_RECURSE
  "CMakeFiles/terra_support.dir/Arena.cpp.o"
  "CMakeFiles/terra_support.dir/Arena.cpp.o.d"
  "CMakeFiles/terra_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/terra_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/terra_support.dir/SourceLoc.cpp.o"
  "CMakeFiles/terra_support.dir/SourceLoc.cpp.o.d"
  "CMakeFiles/terra_support.dir/StringInterner.cpp.o"
  "CMakeFiles/terra_support.dir/StringInterner.cpp.o.d"
  "libterra_support.a"
  "libterra_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terra_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
