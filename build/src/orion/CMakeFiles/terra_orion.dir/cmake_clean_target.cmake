file(REMOVE_RECURSE
  "libterra_orion.a"
)
