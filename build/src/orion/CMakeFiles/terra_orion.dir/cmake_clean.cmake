file(REMOVE_RECURSE
  "CMakeFiles/terra_orion.dir/OrionCompile.cpp.o"
  "CMakeFiles/terra_orion.dir/OrionCompile.cpp.o.d"
  "CMakeFiles/terra_orion.dir/OrionHosted.cpp.o"
  "CMakeFiles/terra_orion.dir/OrionHosted.cpp.o.d"
  "libterra_orion.a"
  "libterra_orion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terra_orion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
