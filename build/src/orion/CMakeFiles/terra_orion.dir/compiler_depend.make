# Empty compiler generated dependencies file for terra_orion.
# This may be replaced when dependencies are built.
