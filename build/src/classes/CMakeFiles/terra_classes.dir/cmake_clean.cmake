file(REMOVE_RECURSE
  "CMakeFiles/terra_classes.dir/ClassSystem.cpp.o"
  "CMakeFiles/terra_classes.dir/ClassSystem.cpp.o.d"
  "libterra_classes.a"
  "libterra_classes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terra_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
