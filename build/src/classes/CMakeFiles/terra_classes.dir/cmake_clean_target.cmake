file(REMOVE_RECURSE
  "libterra_classes.a"
)
