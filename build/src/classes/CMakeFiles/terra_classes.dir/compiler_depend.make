# Empty compiler generated dependencies file for terra_classes.
# This may be replaced when dependencies are built.
