file(REMOVE_RECURSE
  "CMakeFiles/terra_autotuner.dir/Gemm.cpp.o"
  "CMakeFiles/terra_autotuner.dir/Gemm.cpp.o.d"
  "libterra_autotuner.a"
  "libterra_autotuner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terra_autotuner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
