file(REMOVE_RECURSE
  "libterra_autotuner.a"
)
