# Empty dependencies file for terra_autotuner.
# This may be replaced when dependencies are built.
