file(REMOVE_RECURSE
  "libterra_core.a"
)
