
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/CBackend.cpp" "src/core/CMakeFiles/terra_core.dir/CBackend.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/CBackend.cpp.o.d"
  "/root/repo/src/core/Engine.cpp" "src/core/CMakeFiles/terra_core.dir/Engine.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/Engine.cpp.o.d"
  "/root/repo/src/core/Lexer.cpp" "src/core/CMakeFiles/terra_core.dir/Lexer.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/Lexer.cpp.o.d"
  "/root/repo/src/core/LuaInterp.cpp" "src/core/CMakeFiles/terra_core.dir/LuaInterp.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/LuaInterp.cpp.o.d"
  "/root/repo/src/core/LuaStdlib.cpp" "src/core/CMakeFiles/terra_core.dir/LuaStdlib.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/LuaStdlib.cpp.o.d"
  "/root/repo/src/core/LuaValue.cpp" "src/core/CMakeFiles/terra_core.dir/LuaValue.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/LuaValue.cpp.o.d"
  "/root/repo/src/core/Parser.cpp" "src/core/CMakeFiles/terra_core.dir/Parser.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/Parser.cpp.o.d"
  "/root/repo/src/core/StagingAPI.cpp" "src/core/CMakeFiles/terra_core.dir/StagingAPI.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/StagingAPI.cpp.o.d"
  "/root/repo/src/core/TerraAST.cpp" "src/core/CMakeFiles/terra_core.dir/TerraAST.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraAST.cpp.o.d"
  "/root/repo/src/core/TerraCompiler.cpp" "src/core/CMakeFiles/terra_core.dir/TerraCompiler.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraCompiler.cpp.o.d"
  "/root/repo/src/core/TerraInterpBackend.cpp" "src/core/CMakeFiles/terra_core.dir/TerraInterpBackend.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraInterpBackend.cpp.o.d"
  "/root/repo/src/core/TerraJIT.cpp" "src/core/CMakeFiles/terra_core.dir/TerraJIT.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraJIT.cpp.o.d"
  "/root/repo/src/core/TerraPasses.cpp" "src/core/CMakeFiles/terra_core.dir/TerraPasses.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraPasses.cpp.o.d"
  "/root/repo/src/core/TerraPrint.cpp" "src/core/CMakeFiles/terra_core.dir/TerraPrint.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraPrint.cpp.o.d"
  "/root/repo/src/core/TerraSpecialize.cpp" "src/core/CMakeFiles/terra_core.dir/TerraSpecialize.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraSpecialize.cpp.o.d"
  "/root/repo/src/core/TerraType.cpp" "src/core/CMakeFiles/terra_core.dir/TerraType.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraType.cpp.o.d"
  "/root/repo/src/core/TerraTypecheck.cpp" "src/core/CMakeFiles/terra_core.dir/TerraTypecheck.cpp.o" "gcc" "src/core/CMakeFiles/terra_core.dir/TerraTypecheck.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/terra_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
