# Empty compiler generated dependencies file for terra_layout.
# This may be replaced when dependencies are built.
