file(REMOVE_RECURSE
  "libterra_layout.a"
)
