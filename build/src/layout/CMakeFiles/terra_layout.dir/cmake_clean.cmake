file(REMOVE_RECURSE
  "CMakeFiles/terra_layout.dir/DataTable.cpp.o"
  "CMakeFiles/terra_layout.dir/DataTable.cpp.o.d"
  "libterra_layout.a"
  "libterra_layout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/terra_layout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
