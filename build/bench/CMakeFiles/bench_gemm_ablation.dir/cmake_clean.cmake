file(REMOVE_RECURSE
  "CMakeFiles/bench_gemm_ablation.dir/bench_gemm_ablation.cpp.o"
  "CMakeFiles/bench_gemm_ablation.dir/bench_gemm_ablation.cpp.o.d"
  "bench_gemm_ablation"
  "bench_gemm_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gemm_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
