# Empty dependencies file for bench_gemm_ablation.
# This may be replaced when dependencies are built.
