file(REMOVE_RECURSE
  "CMakeFiles/bench_stencil_blocking.dir/bench_stencil_blocking.cpp.o"
  "CMakeFiles/bench_stencil_blocking.dir/bench_stencil_blocking.cpp.o.d"
  "bench_stencil_blocking"
  "bench_stencil_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stencil_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
