# Empty dependencies file for bench_stencil_blocking.
# This may be replaced when dependencies are built.
