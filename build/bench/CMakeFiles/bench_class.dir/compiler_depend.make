# Empty compiler generated dependencies file for bench_class.
# This may be replaced when dependencies are built.
