file(REMOVE_RECURSE
  "CMakeFiles/bench_class.dir/bench_class.cpp.o"
  "CMakeFiles/bench_class.dir/bench_class.cpp.o.d"
  "bench_class"
  "bench_class.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_class.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
